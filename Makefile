# Developer entry points.  `make check` is the gate every change must
# pass: the tier-1 test suite plus lint (when ruff is installed).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
PYTEST := PYTHONPATH=$(PYTHONPATH) python -m pytest

.PHONY: check test fast bench bench-smoke bench-trend trace-diff profile lint detlint detlint-report

## The tier-1 gate: full unit suite + lint + determinism linter.
check: test lint detlint

## Full unit test suite (tier-1 command).
test:
	$(PYTEST) -x -q

## Fast loop: unit tests without anything marked slow.
fast:
	$(PYTEST) -x -q -m "not slow"

## Paper-figure benchmark sweeps (slow; writes benchmarks/results/).
## Knobs (also honored as plain environment variables):
##   make bench WORKERS=8              # worker process count
##   make bench CACHE_DIR=.bench-cache # persistent spec-hash result cache,
##                                     # reused across invocations
WORKERS ?= $(WHITEFI_BENCH_WORKERS)
CACHE_DIR ?= $(WHITEFI_BENCH_CACHE_DIR)
bench:
	WHITEFI_BENCH_WORKERS="$(WORKERS)" \
	WHITEFI_BENCH_CACHE_DIR="$(CACHE_DIR)" \
	$(PYTEST) -q benchmarks

## Smoke-run the wsdb benchmark drivers with tiny parameters (CI runs
## this so sweep drivers cannot silently rot between full `make bench`
## invocations; paper-scale assertions are skipped).
bench-smoke:
	WHITEFI_BENCH_SMOKE=1 \
	WHITEFI_BENCH_WORKERS="$(WORKERS)" \
	$(PYTEST) -q benchmarks/bench_citywide_wsdb.py \
	    benchmarks/bench_roaming_wsdb.py benchmarks/bench_wsdb_cluster.py \
	    benchmarks/bench_scale.py benchmarks/bench_trace_replay.py
	PYTHONPATH=$(PYTHONPATH) python scripts/profile_run.py \
	    --kind querystorm --clients 300 --duration-us 20e6 \
	    --out benchmarks/results/telemetry-smoke
	python scripts/metrics_report.py \
	    benchmarks/results/telemetry-smoke.metrics.json
	python scripts/span_report.py \
	    benchmarks/results/telemetry-smoke.spans.jsonl

## Profile a 10k-client vector roaming run: per-phase wall-clock
## breakdown (JSON + Chrome trace-event timeline), the sim-clock
## metrics snapshot (JSON + Prometheus), and the span table
## (JSONL + Chrome trace events), written under
## benchmarks/results/profile.*.
profile:
	PYTHONPATH=$(PYTHONPATH) python scripts/profile_run.py \
	    --kind roaming --clients 10000 --out benchmarks/results/profile

## Compare the last two comparable BENCH_scale.json entries; fails on a
## >20% clients/sec regression (no-op with nothing to compare).
bench-trend:
	python scripts/bench_trend.py

## Diff two recorded run traces event-by-event (exit 1 on any delta):
##   make trace-diff A=path/to/a.jsonl.gz B=path/to/b.jsonl.gz
trace-diff:
	PYTHONPATH=$(PYTHONPATH) python scripts/trace_diff.py $(A) $(B)

## Determinism & clock-discipline linter (repro.detlint): fails on any
## unsuppressed finding against detlint.toml + detlint.baseline.json.
## Stdlib-only, so it runs in a bare container.  Also writes the JSON
## findings artifact CI uploads.
detlint:
	PYTHONPATH=$(PYTHONPATH) python -m repro.detlint \
	    --out benchmarks/results/detlint.json

## Per-rule / per-package suppression-debt tables (never gates).
detlint-report:
	python scripts/detlint_report.py

## Lint src and tests.  The container may not ship ruff; skip with a
## notice rather than fail, so `make check` works everywhere.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif python -c "import ruff" >/dev/null 2>&1; then \
		python -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi
