"""The shared benchmark sweep runner, configured from the environment.

Every ``ParallelRunner``-based benchmark builds its runner here, so one
pair of knobs steers the whole `make bench` sweep:

* ``WHITEFI_BENCH_WORKERS`` — worker process count (default: the CPU
  count; ``1`` forces the byte-identical sequential path).
* ``WHITEFI_BENCH_CACHE_DIR`` — a persistent spec-hash result cache;
  re-running the benchmarks only executes cells whose specs changed.
  The cache is versioned by the ``repro`` package version, so stale
  simulator output is never served.
* ``WHITEFI_BENCH_SMOKE`` — when set (and not ``0``), benchmarks that
  support it shrink to tiny sweeps: the drivers, spec wiring, and
  result plumbing are exercised end to end (so CI catches rot) while
  the paper-scale physics assertions — meaningless at toy sizes — are
  skipped.  ``make bench-smoke`` is the entry point.

All are also reachable as ``make bench WORKERS=N CACHE_DIR=path``.
"""

from __future__ import annotations

import os

from repro.experiments import ParallelRunner, ResultCache

WORKERS_ENV = "WHITEFI_BENCH_WORKERS"
CACHE_DIR_ENV = "WHITEFI_BENCH_CACHE_DIR"
SMOKE_ENV = "WHITEFI_BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when the smoke-bench knob is set: tiny parameters, no
    paper-scale assertions."""
    return os.environ.get(SMOKE_ENV, "") not in ("", "0")


def bench_runner() -> ParallelRunner:
    """A ``ParallelRunner`` honoring the benchmark environment knobs."""
    workers = os.environ.get(WORKERS_ENV) or None
    cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return ParallelRunner(
        max_workers=int(workers) if workers is not None else None,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
    )
