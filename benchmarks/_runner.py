"""The shared benchmark sweep runner, configured from the environment.

Every ``ParallelRunner``-based benchmark builds its runner here, so one
pair of knobs steers the whole `make bench` sweep:

* ``WHITEFI_BENCH_WORKERS`` — worker process count (default: the CPU
  count; ``1`` forces the byte-identical sequential path).
* ``WHITEFI_BENCH_CACHE_DIR`` — a persistent spec-hash result cache;
  re-running the benchmarks only executes cells whose specs changed.
  The cache is versioned by the ``repro`` package version, so stale
  simulator output is never served.

Both are also reachable as ``make bench WORKERS=N CACHE_DIR=path``.
"""

from __future__ import annotations

import os

from repro.experiments import ParallelRunner, ResultCache

WORKERS_ENV = "WHITEFI_BENCH_WORKERS"
CACHE_DIR_ENV = "WHITEFI_BENCH_CACHE_DIR"


def bench_runner() -> ParallelRunner:
    """A ``ParallelRunner`` honoring the benchmark environment knobs."""
    workers = os.environ.get(WORKERS_ENV) or None
    cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return ParallelRunner(
        max_workers=int(workers) if workers is not None else None,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
    )
