"""Shared scenario constants for the Section 5.4 benchmarks.

The large-scale simulation map (Section 5.4.1): "There are 17 free UHF
channels, and the widest contiguous white space is 36 MHz."
"""

from __future__ import annotations

from repro import constants

#: Free usable-channel indices of the Section 5.4.1 map.
SEVENTEEN_FREE = tuple(range(2, 8)) + tuple(range(10, 13)) + tuple(
    range(15, 19)
) + (21, 22, 25, 28)

#: Per-width OPT baseline names, matching run_opt_baselines's keys.
BASELINE_NAMES = tuple(
    f"opt-{width:g}mhz" for width in sorted(constants.CHANNEL_WIDTHS_MHZ, reverse=True)
)
