"""Compatibility shim: the SIFT accuracy workloads moved into the library.

The Table 1 / Figure 6 iperf-capture builders now live in
:mod:`repro.sift.workloads` so the ``"sift"`` run kind can synthesize
them inside worker processes; import from there in new code.
"""

from __future__ import annotations

from repro.sift.workloads import (  # noqa: F401
    FADING_SIGMA_DB,
    MEDIAN_AMPLITUDE,
    PACKETS_PER_RUN,
    PAYLOAD_BYTES,
    iperf_bursts,
    run_sift_on_iperf,
    sift_workload_metrics,
    synthesize_iperf_capture,
)

__all__ = [
    "FADING_SIGMA_DB",
    "MEDIAN_AMPLITUDE",
    "PACKETS_PER_RUN",
    "PAYLOAD_BYTES",
    "iperf_bursts",
    "run_sift_on_iperf",
    "sift_workload_metrics",
    "synthesize_iperf_capture",
]
