"""Ablation: the AP's N-times weighting in channel selection.

Section 4.1: "Since most traffic in today's wireless networks is on
the downlink, the AP weights its own MCham proportionally higher ...
the AP selects a channel that maximizes N*MCham_AP + sum_n MCham_n."

Scenario: interference visible only at the AP (e.g. a neighbouring AP
close to it but hidden from the clients).  Downlink-dominated traffic
means the AP's view should dominate: with the paper's weighting the
BSS flees the channel that is busy at the AP; unweighted averaging can
be out-voted by many clients that see it clean.
"""

from __future__ import annotations

from repro.core.mcham import network_score
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel

NUM_CLIENTS = 8


def _observations():
    """AP sees channel 7 busy; the clients all see it clean."""
    ap = AirtimeObservation.from_mappings({7: 0.85}, {7: 1}, 30)
    # Clients observe mild noise on the alternative instead.
    clients = [
        AirtimeObservation.from_mappings({14: 0.25}, {14: 1}, 30)
        for _ in range(NUM_CLIENTS)
    ]
    return ap, clients


def weighting_ablation() -> dict[str, dict[str, float]]:
    """Scores of the AP-busy channel vs the clean alternative."""
    ap, clients = _observations()
    busy_at_ap = WhiteFiChannel(7, 5.0)
    clean_at_ap = WhiteFiChannel(14, 5.0)
    out: dict[str, dict[str, float]] = {}
    for label, weight in (("paper (N. weighting)", None), ("unweighted", 1.0)):
        out[label] = {
            "busy-at-ap": network_score(busy_at_ap, ap, clients, ap_weight=weight),
            "clean-at-ap": network_score(
                clean_at_ap, ap, clients, ap_weight=weight
            ),
        }
    return out


def test_ablation_ap_weighting(benchmark, record_table):
    scores = benchmark.pedantic(weighting_ablation, rounds=1, iterations=1)

    lines = [
        "Ablation: AP weighting with AP-local interference "
        f"({NUM_CLIENTS} clients see it clean)"
    ]
    for label, row in scores.items():
        choice = max(row, key=row.get)
        lines.append(
            f"{label:>20}: busy-at-ap={row['busy-at-ap']:6.2f}  "
            f"clean-at-ap={row['clean-at-ap']:6.2f}  -> picks {choice}"
        )
    record_table("ablation_ap_weighting", lines)

    paper = scores["paper (N. weighting)"]
    unweighted = scores["unweighted"]
    # With the paper's weighting, the downlink-critical AP view wins:
    # the BSS avoids the channel that is busy at the AP.
    assert paper["clean-at-ap"] > paper["busy-at-ap"]
    # Without weighting, the many clean client views out-vote the AP.
    assert unweighted["busy-at-ap"] > unweighted["clean-at-ap"]
