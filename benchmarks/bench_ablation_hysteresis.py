"""Ablation: hysteresis against channel ping-ponging (Section 4.1).

"To prevent frequent changes in the channel or ping-ponging across two
channels, we also add hysteresis to our system as done in [19]."

With two near-equivalent channel options and sensing noise, a zero-
margin assigner flips between them; the default margin holds steady.
"""

from __future__ import annotations

import random

from repro.core.assignment import ChannelAssigner, SwitchReason
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.spectrum_map import SpectrumMap

#: Two disjoint 10 MHz-capable fragments with near-identical load.
BASE_MAP = SpectrumMap.from_free([5, 6, 7, 12, 13, 14], 30)
EVALUATIONS = 40


def _noisy_observation(rng: random.Random) -> AirtimeObservation:
    """Both fragments moderately loaded, with small sensing noise."""
    busy = {}
    aps = {}
    for channel in (5, 6, 7, 12, 13, 14):
        busy[channel] = min(1.0, max(0.0, 0.30 + rng.gauss(0.0, 0.02)))
        aps[channel] = 1
    return AirtimeObservation.from_mappings(busy, aps, 30)


def count_switches(margin: float, seed: int = 9) -> int:
    """Voluntary switches over a sequence of noisy re-evaluations."""
    rng = random.Random(seed)
    assigner = ChannelAssigner(hysteresis_margin=margin)
    assigner.evaluate(
        BASE_MAP, _noisy_observation(rng), reason=SwitchReason.BOOT
    )
    switches = 0
    for _ in range(EVALUATIONS):
        decision = assigner.evaluate(
            BASE_MAP, _noisy_observation(rng), reason=SwitchReason.PERIODIC
        )
        switches += decision.switched
    return switches


def hysteresis_ablation() -> dict[float, float]:
    """Mean switch count per margin across seeds."""
    margins = (0.0, 0.05, 0.10, 0.25)
    return {
        margin: sum(count_switches(margin, seed) for seed in range(5)) / 5.0
        for margin in margins
    }


def test_ablation_hysteresis(benchmark, record_table):
    switch_counts = benchmark.pedantic(
        hysteresis_ablation, rounds=1, iterations=1
    )

    lines = [
        "Ablation: hysteresis margin vs voluntary switches "
        f"({EVALUATIONS} noisy re-evaluations)"
    ]
    for margin, switches in switch_counts.items():
        lines.append(f"margin {margin:4.2f}: {switches:5.1f} switches")
    record_table("ablation_hysteresis", lines)

    # No hysteresis: the assigner ping-pongs on sensing noise.
    assert switch_counts[0.0] >= 5.0
    # The default margin suppresses the bulk of it.
    assert switch_counts[0.10] <= 0.35 * switch_counts[0.0]
    assert switch_counts[0.25] <= 0.15 * switch_counts[0.0]
    # More margin, fewer switches (monotone).
    ordered = [switch_counts[m] for m in (0.0, 0.05, 0.10, 0.25)]
    assert all(b <= a + 0.5 for a, b in zip(ordered, ordered[1:]))
