"""Ablation: MCham's product vs min/max aggregation (Section 4.1).

"We note that simply taking the minimum or the maximum across all
channels, instead of the product, will be an underestimate since the
traffic on a narrower channel contends with trafic on an overlapping
wider channel."

The ablation runs the Figure 10 microbenchmark and counts how often
each aggregation picks the width that actually measured best.
"""

from __future__ import annotations

from repro.core.mcham import mcham
from repro.experiments import (
    BackgroundSpec,
    ScenarioBuilder,
    ScenarioConfig,
    run_static,
)
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

FRAGMENT = SpectrumMap.from_free(range(5, 10), 30)
CENTER = 7
DELAYS_MS = (50.0, 30.0, 18.0, 12.0, 8.0, 4.0)
WIDTHS = (5.0, 10.0, 20.0)
AGGREGATIONS = ("product", "min", "max")


def _config(delay_ms: float) -> ScenarioConfig:
    return ScenarioConfig(
        base_map=FRAGMENT,
        num_clients=1,
        backgrounds=[BackgroundSpec(i, delay_ms * 1000.0) for i in range(5, 10)],
        duration_us=2_500_000.0,
        seed=3,
        uplink=False,
    )


def aggregation_ablation() -> dict[str, object]:
    """Winner-agreement score per aggregation across intensities."""
    agreement = {agg: 0 for agg in AGGREGATIONS}
    rows = []
    for delay in DELAYS_MS:
        config = _config(delay)
        throughput = {
            w: run_static(config, WhiteFiChannel(CENTER, w)).aggregate_mbps
            for w in WIDTHS
        }
        best_width = max(throughput, key=throughput.get)
        world = ScenarioBuilder(config).build_world()
        world.engine.run_until(2_000_000.0)
        observation = world.sensor.observe("whitefi")
        picks = {}
        for agg in AGGREGATIONS:
            scores = {
                w: mcham(WhiteFiChannel(CENTER, w), observation, aggregation=agg)
                for w in WIDTHS
            }
            picks[agg] = max(scores, key=scores.get)
            agreement[agg] += picks[agg] == best_width
        rows.append((delay, best_width, picks))
    return {"agreement": agreement, "rows": rows}


def test_ablation_mcham_aggregation(benchmark, record_table):
    result = benchmark.pedantic(aggregation_ablation, rounds=1, iterations=1)
    agreement = result["agreement"]

    lines = ["Ablation: MCham aggregation (winner prediction accuracy)"]
    lines.append(f"{'delay ms':>9} | {'measured best':>13} | product | min | max")
    for delay, best, picks in result["rows"]:
        lines.append(
            f"{delay:>9g} | {best:>12g}M | {picks['product']:>6g}M | "
            f"{picks['min']:>3g}M | {picks['max']:>3g}M"
        )
    lines.append(
        "agreement: "
        + ", ".join(f"{agg}={agreement[agg]}/{len(DELAYS_MS)}" for agg in AGGREGATIONS)
    )
    record_table("ablation_mcham_aggregation", lines)

    # min/max ignore cross-channel contention and always favour the
    # widest channel (capacity factor dominates), so they mispredict the
    # heavy-load regime; the product must do at least as well overall.
    assert agreement["product"] >= agreement["min"]
    assert agreement["product"] >= agreement["max"]
    heavy_rows = [r for r in result["rows"] if r[0] <= 8.0]
    for _, best, picks in heavy_rows:
        if best == 5.0:
            # min/max still predict a wide channel under saturation.
            assert picks["max"] != 5.0 or picks["min"] != 5.0 or picks["product"] == 5.0
