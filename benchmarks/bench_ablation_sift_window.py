"""Ablation: SIFT's moving-average window size (Section 4.2.1).

"we limit the size of the sliding window to less than the minimum
possible SIFS value in our system ... the lowest SIFS value in our
system is for a 20 MHz transmission, which is 10 us or 10 samples.
Hence, we choose a window size of 5 samples."

The trade-off: a window of 1 (instantaneous values) fragments packets
on amplitude dips; a window larger than the minimum SIFS bridges the
Data-to-ACK gap and destroys the width signature.
"""

from __future__ import annotations

from statistics import median

import numpy as np

from repro.phy.waveform import synthesize_bursts, traffic_bursts
from repro.sift.classifier import classify_exchanges, count_matching_packets
from repro.sift.detector import detect_bursts

WINDOWS = (1, 3, 5, 9, 15, 21)
WIDTH_MHZ = 20.0  # the width whose SIFS sets the constraint
PACKETS = 40
RUNS = 3


def _detection_rates(window: int, seed: int) -> tuple[float, float]:
    """(verified detection rate, spurious exchanges per packet)."""
    rng = np.random.default_rng(seed)
    bursts = traffic_bursts(
        WIDTH_MHZ, 1000, PACKETS, 1500.0, start_us=400.0, rng=rng
    )
    trace = synthesize_bursts(bursts, bursts[-1].end_us + 500.0, rng=rng)
    detected = detect_bursts(trace, window=window, min_burst_samples=1)
    exchanges = classify_exchanges(detected)
    verified = count_matching_packets(exchanges, WIDTH_MHZ, 1000)
    spurious = max(0, len(exchanges) - verified)
    return verified / PACKETS, spurious / PACKETS


def window_ablation() -> dict[int, dict[str, float]]:
    """Median verified/spurious rates per window size."""
    out: dict[int, dict[str, float]] = {}
    for window in WINDOWS:
        runs = [_detection_rates(window, seed=100 + s) for s in range(RUNS)]
        out[window] = {
            "verified": median(r[0] for r in runs),
            "spurious": median(r[1] for r in runs),
        }
    return out


def test_ablation_sift_window(benchmark, record_table):
    rates = benchmark.pedantic(window_ablation, rounds=1, iterations=1)

    lines = [
        "Ablation: SIFT window size vs Data-ACK detection at 20 MHz "
        "(SIFS = 10 samples)"
    ]
    for window, row in rates.items():
        note = " <- paper's choice" if window == 5 else ""
        if window >= 10:
            note = " (window >= SIFS: gap bridged)"
        lines.append(
            f"window {window:>2}: verified {row['verified']:5.2f}  "
            f"spurious/pkt {row['spurious']:5.2f}{note}"
        )
    record_table("ablation_sift_window", lines)

    # The paper's window detects essentially everything, cleanly.
    assert rates[5]["verified"] >= 0.95
    assert rates[5]["spurious"] <= 0.1
    # Windows at or beyond the minimum SIFS destroy the signature.
    assert rates[15]["verified"] <= 0.3
    assert rates[21]["verified"] <= 0.2
    # Instantaneous thresholds fragment packets: verified detections
    # drop and fragment pairs masquerade as spurious exchanges.
    assert rates[1]["verified"] < rates[5]["verified"]
    assert rates[1]["spurious"] > rates[5]["spurious"]
