"""Citywide wsdb sweep: AP count x locale setting on one metro database.

The post-WhiteFi regime ("Optimizing City-Wide White-Fi Networks in TV
White Spaces"): hundreds of APs share a metro spectrum pool through a
geolocation database instead of sensing.  Each cell of the sweep drops
``N`` APs on a metro whose dial follows one Figure 2 locale setting,
lets them assign channels off wsdb responses via MCham, perturbs the
session with microphone registrations, and reports per-AP throughput,
availability disagreement, and the database's cache behavior.

Every cell is a declarative ``ExperimentSpec`` (kind "citywide") fanned
out by ``ParallelRunner`` — byte-identical under the sequential
fallback, cacheable by spec hash like every other sweep.  Under
``WHITEFI_BENCH_SMOKE`` the sweep shrinks to a driver-rot check.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, ScenarioSpec, summarize
from repro.spectrum.geodata import SETTINGS, generate_locales

from _runner import bench_runner, smoke_mode

SMOKE = smoke_mode()
AP_COUNTS = (5, 10) if SMOKE else (50, 100, 200)
SEEDS_PER_CELL = 1 if SMOKE else 3
MIC_EVENTS = 2 if SMOKE else 8
DURATION_US = 120e6 if SMOKE else 600e6


def citywide_table(seed: int = 2009) -> dict[str, dict[int, dict[str, float]]]:
    """Sweep AP count x setting; mean metrics per cell across seeds."""
    jobs: list[ExperimentSpec] = []
    for setting_index, setting in enumerate(SETTINGS):
        locale = generate_locales(setting, count=1, seed=seed)[0]
        for num_aps in AP_COUNTS:
            scenario = ScenarioSpec(
                free_indices=locale.spectrum_map.free_indices(),
                num_channels=30,
                duration_us=DURATION_US,
                seed=seed + 1000 * setting_index,
            )
            spec = ExperimentSpec(
                scenario,
                kind="citywide",
                citywide_aps=num_aps,
                citywide_mic_events=MIC_EVENTS,
            )
            jobs.extend(
                spec.with_seed(scenario.seed + run)
                for run in range(SEEDS_PER_CELL)
            )
    results = bench_runner().run_grid(jobs)

    table: dict[str, dict[int, dict[str, float]]] = {}
    cursor = 0
    for setting in SETTINGS:
        table[setting] = {}
        for num_aps in AP_COUNTS:
            cell = results[cursor : cursor + SEEDS_PER_CELL]
            cursor += SEEDS_PER_CELL
            table[setting][num_aps] = {
                metric: summarize(cell, metric=metric).mean
                for metric in (
                    "per_client_mbps",
                    "availability_disagreement",
                    "displaced_aps",
                    "db_hit_rate",
                    "db_queries",
                    "db_cache_hits",
                    "db_cache_misses",
                )
            }
    return table


def test_citywide_wsdb_sweep(benchmark, record_table):
    results = benchmark.pedantic(citywide_table, rounds=1, iterations=1)

    lines = [
        "Citywide wsdb sweep: mean per-AP throughput (Mbps) and database",
        f"behavior over {SEEDS_PER_CELL} seeds, {MIC_EVENTS} mic events/run"
        + (" [SMOKE]" if SMOKE else ""),
        f"{'setting':>9} | {'APs':>4} | {'Mbps/AP':>8} | {'disagree':>8} | "
        f"{'displaced':>9} | {'hit rate':>8}",
    ]
    for setting in SETTINGS:
        for num_aps in AP_COUNTS:
            row = results[setting][num_aps]
            lines.append(
                f"{setting:>9} | {num_aps:>4} | {row['per_client_mbps']:8.2f} | "
                f"{row['availability_disagreement']:8.3f} | "
                f"{row['displaced_aps']:9.1f} | {row['db_hit_rate']:8.2f}"
            )
    lines.append(
        "expectation: rural metros (sparser dials) sustain higher per-AP "
        "throughput than urban; density raises contention"
    )
    record_table("citywide_wsdb", lines, data={"cells": results})

    for setting in SETTINGS:
        for num_aps in AP_COUNTS:
            row = results[setting][num_aps]
            # Honest cache accounting (the double-query sweep bug used
            # to fabricate one guaranteed hit per AP): every AP is
            # queried at boot and once more by the compliance sweep,
            # and hits + misses must explain every query.
            assert row["db_queries"] >= 2 * num_aps
            assert row["db_cache_hits"] + row["db_cache_misses"] == (
                pytest.approx(row["db_queries"])
            )

    if SMOKE:
        return
    for setting in SETTINGS:
        # Denser cities contend harder on the same dial.
        assert (
            results[setting][AP_COUNTS[-1]]["per_client_mbps"]
            <= results[setting][AP_COUNTS[0]]["per_client_mbps"]
        )
    # More free spectrum per AP in rural dials than urban ones.
    for num_aps in AP_COUNTS:
        assert (
            results["rural"][num_aps]["per_client_mbps"]
            > results["urban"][num_aps]["per_client_mbps"]
        )
