"""Figure 2: expected spectrum fragmentation after the DTV transition.

Histogram of contiguous fragment widths across 10 locales per setting
(urban / suburban / rural).  Paper claims to reproduce:

* every setting has at least one locale with a 4-channel (24 MHz)
  contiguous fragment;
* rural locales show fragments up to 16 channels;
* urban fragmentation is dominated by narrow fragments.
"""

from __future__ import annotations

from repro.spectrum.fragmentation import fragment_histogram, max_fragment_width
from repro.spectrum.geodata import SETTINGS, generate_study, iter_maps


def fragmentation_histograms(seed: int = 2009) -> dict[str, dict[int, int]]:
    """Fragment-width histogram per setting (10 locales each)."""
    study = generate_study(count_per_setting=10, seed=seed)
    return {
        setting: dict(sorted(fragment_histogram(iter_maps(locales)).items()))
        for setting, locales in study.items()
    }


def test_fig02_fragmentation(benchmark, record_table):
    histograms = benchmark.pedantic(
        fragmentation_histograms, rounds=1, iterations=1
    )
    study = generate_study(count_per_setting=10, seed=2009)

    lines = ["Figure 2: contiguous fragment width histogram (10 locales/setting)"]
    lines.append(f"{'width (ch)':>10} | " + " | ".join(f"{s:>8}" for s in SETTINGS))
    all_widths = sorted({w for h in histograms.values() for w in h})
    for width in all_widths:
        row = " | ".join(
            f"{histograms[s].get(width, 0):>8}" for s in SETTINGS
        )
        lines.append(f"{width:>10} | {row}")
    for setting in SETTINGS:
        widest = max_fragment_width(list(iter_maps(study[setting])))
        lines.append(f"max fragment in {setting}: {widest} channels")
    record_table("fig02_fragmentation", lines)

    # Paper-shape assertions.
    for setting in SETTINGS:
        assert max_fragment_width(list(iter_maps(study[setting]))) >= 4
    assert max_fragment_width(list(iter_maps(study["rural"]))) >= 10
    urban = histograms["urban"]
    narrow = urban.get(1, 0) + urban.get(2, 0)
    wide = sum(count for width, count in urban.items() if width >= 5)
    assert narrow > wide
