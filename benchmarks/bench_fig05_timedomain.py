"""Figure 5: time-domain view of Data-ACK frames at 5/10/20 MHz.

Regenerates the three amplitude traces (132-byte data at 6 Mbps OFDM
plus its ACK) and reports the measured burst layout.  The defining
property: every duration and the SIFS gap double when the width halves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.timing import timing_for_width
from repro.phy.waveform import data_ack_bursts, synthesize_bursts
from repro.sift.detector import detect_bursts

#: Figure 5 uses 132-byte frames; our data builder adds the MAC header.
PAYLOAD_BYTES = 132 - 28


def time_domain_traces() -> dict[float, dict[str, float]]:
    """Data/ACK durations and gap per width, measured from synthetic IQ."""
    rng = np.random.default_rng(5)
    out: dict[float, dict[str, float]] = {}
    for width in (20.0, 10.0, 5.0):
        data, ack = data_ack_bursts(width, PAYLOAD_BYTES, 200.0)
        trace = synthesize_bursts([data, ack], ack.end_us + 400.0, rng=rng)
        bursts = detect_bursts(trace)
        assert len(bursts) == 2, f"expected 2 bursts at {width} MHz"
        out[width] = {
            "data_us": bursts[0].duration_us,
            "gap_us": bursts[0].gap_to(bursts[1]),
            "ack_us": bursts[1].duration_us,
            "window_us": trace.duration_us,
            "peak_amplitude": max(b.peak_amplitude for b in bursts),
        }
    return out


def test_fig05_time_domain(benchmark, record_table):
    measured = benchmark.pedantic(time_domain_traces, rounds=1, iterations=1)
    lines = [
        "Figure 5: 132-byte Data-ACK at 6 Mbps OFDM, time domain",
        f"{'width':>7} | {'data us':>8} | {'SIFS us':>8} | {'ack us':>7} | {'nominal SIFS':>12}",
    ]
    for width in (20.0, 10.0, 5.0):
        m = measured[width]
        nominal = timing_for_width(width).sifs_us
        lines.append(
            f"{width:>5g}MHz | {m['data_us']:>8.1f} | {m['gap_us']:>8.1f} | "
            f"{m['ack_us']:>7.1f} | {nominal:>12.1f}"
        )
    record_table("fig05_timedomain", lines)

    # Scale law: halving width doubles the data burst duration (within
    # detector edge jitter).
    ratio_10 = measured[10.0]["data_us"] / measured[20.0]["data_us"]
    ratio_5 = measured[5.0]["data_us"] / measured[20.0]["data_us"]
    assert ratio_10 == pytest.approx(2.0, rel=0.1)
    assert ratio_5 == pytest.approx(4.0, rel=0.1)
