"""Figure 6: accuracy of airtime utilization measurement using SIFT.

"The total time occupied by the packets doubles on halving the channel
width ... Since we send the same number of packets at a given width,
the total airtime is constant, even when we change the rate of injected
packets."  Error bars were within 2% of the mean.
"""

from __future__ import annotations

from statistics import mean

import pytest

from benchmarks._workloads import run_sift_on_iperf

RATES_MBPS = (0.25, 0.5, 1.0)
WIDTHS = (5.0, 10.0, 20.0)
RUNS = 3


def airtime_table() -> dict[float, dict[float, dict[str, float]]]:
    """Measured vs true busy time (ms) per (width, rate)."""
    table: dict[float, dict[float, dict[str, float]]] = {}
    for width in WIDTHS:
        table[width] = {}
        for rate in RATES_MBPS:
            runs = [
                run_sift_on_iperf(width, rate, seed=1000 + 17 * run)
                for run in range(RUNS)
            ]
            table[width][rate] = {
                "measured_ms": mean(r["busy_us_measured"] for r in runs) / 1000.0,
                "true_ms": mean(r["busy_us_true"] for r in runs) / 1000.0,
            }
    return table


def test_fig06_airtime_accuracy(benchmark, record_table):
    table = benchmark.pedantic(airtime_table, rounds=1, iterations=1)

    lines = ["Figure 6: SIFT airtime measurement (110 pkts; busy time in ms)"]
    lines.append(
        f"{'width':>8} | " + " | ".join(f"{r:g}M meas/true".rjust(16) for r in RATES_MBPS)
    )
    for width in WIDTHS:
        cells = []
        for rate in RATES_MBPS:
            cell = table[width][rate]
            cells.append(f"{cell['measured_ms']:7.1f}/{cell['true_ms']:<7.1f}")
        lines.append(f"{width:>6g}MHz | " + " | ".join(c.rjust(16) for c in cells))
    record_table("fig06_airtime", lines)

    for width in WIDTHS:
        for rate in RATES_MBPS:
            cell = table[width][rate]
            # SIFT measures the occupied time within a few percent.
            assert cell["measured_ms"] == pytest.approx(
                cell["true_ms"], rel=0.05
            )
        # Airtime constant across rates at a given width (2% error bars).
        busy = [table[width][r]["measured_ms"] for r in RATES_MBPS]
        assert max(busy) - min(busy) <= 0.1 * mean(busy)
    # Busy time doubles when the width halves.
    for rate in RATES_MBPS:
        assert table[10.0][rate]["measured_ms"] == pytest.approx(
            2 * table[20.0][rate]["measured_ms"], rel=0.1
        )
        assert table[5.0][rate]["measured_ms"] == pytest.approx(
            4 * table[20.0][rate]["measured_ms"], rel=0.1
        )
