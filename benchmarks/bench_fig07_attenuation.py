"""Figure 7: SIFT vs packet-sniffer detection under attenuation.

"At low attenuation, both SIFT and the packet sniffer perform very
well.  However, SIFT outperforms the packet sniffer, as it is even able
to detect corrupted packets.  At higher attenuation, SIFT continues to
detect more packets than the sniffer until 96 dB attenuation.  Beyond
96 dB we see a very sharp drop ... the reception ratio of the packet
sniffer falls off more smoothly, and performs better than SIFT beyond
98 dB attenuation.  However, at this attenuation the capture ratio is
extremely low at around 35%."

The tunable attenuator sits between two bench devices: the received
amplitude is ``A0 * 10^(-attenuation/20)``.  A0 is calibrated so SIFT's
threshold cliff lands near the paper's 96 dB; the sniffer's decode
model (smooth BER waterfall) is anchored so its 50% point falls just
beyond the cliff.
"""

from __future__ import annotations

import numpy as np

from repro.phy.noise import decode_success_probability, snr_db
from repro.phy.timing import timing_for_width
from repro.phy.waveform import BurstSpec, synthesize_bursts
from repro.sift.analyzer import SiftAnalyzer
from repro.sift.classifier import count_matching_packets

#: Un-attenuated amplitude: calibrated so the SIFT cliff sits at ~96 dB
#: (the amplitude where burst fragmentation spoils the length match).
A0 = 2.4e7

#: Receiver sensitivity anchor for the sniffer (SNR of 50% decode for a
#: 1000-byte frame) and BER waterfall slope; together they place the
#: sniffer's smooth falloff so it crosses SIFT near 98 dB at a ~40%
#: capture ratio, as in the paper.
SNIFFER_SNR_50_DB = 23.0
SNIFFER_BER_SLOPE = 0.32

ATTENUATIONS_DB = (80, 86, 90, 93, 95, 96, 97, 98, 99, 100, 102, 105)
WIDTH_MHZ = 20.0
PAYLOAD = 1000
PACKETS = 60
NOISE_RMS = 20.0


def attenuation_sweep(seed: int = 7) -> dict[int, dict[str, float]]:
    """Fraction of packets seen by SIFT and by the sniffer vs attenuation."""
    rng = np.random.default_rng(seed)
    timing = timing_for_width(WIDTH_MHZ)
    out: dict[int, dict[str, float]] = {}
    for attenuation in ATTENUATIONS_DB:
        amplitude = A0 * 10.0 ** (-attenuation / 20.0)
        bursts = []
        t = 300.0
        for _ in range(PACKETS):
            data = BurstSpec(
                t, timing.data_duration_us(PAYLOAD), amplitude, label="data"
            )
            ack = BurstSpec(
                data.end_us + timing.sifs_us,
                timing.ack_duration_us,
                amplitude,
                label="ack",
            )
            bursts.extend((data, ack))
            t = ack.end_us + 800.0
        trace = synthesize_bursts(bursts, t + 300.0, rng=rng, noise_rms=NOISE_RMS)
        result = SiftAnalyzer().scan(trace)
        sift_detected = count_matching_packets(
            list(result.exchanges), WIDTH_MHZ, PAYLOAD
        )
        # The sniffer: per-packet probabilistic decode from the SNR.
        snr = snr_db(max(amplitude, 1e-9), NOISE_RMS)
        p_decode = decode_success_probability(
            snr,
            PAYLOAD,
            snr_50_db=SNIFFER_SNR_50_DB,
            ber_slope_per_db=SNIFFER_BER_SLOPE,
        )
        sniffed = int(rng.binomial(PACKETS, p_decode))
        out[attenuation] = {
            "sift": sift_detected / PACKETS,
            "sniffer": sniffed / PACKETS,
        }
    return out


def test_fig07_attenuation(benchmark, record_table):
    sweep = benchmark.pedantic(attenuation_sweep, rounds=1, iterations=1)

    lines = ["Figure 7: detection vs attenuation (fraction of 60 packets)"]
    lines.append(f"{'atten dB':>9} | {'SIFT':>6} | {'sniffer':>8}")
    for attenuation in ATTENUATIONS_DB:
        row = sweep[attenuation]
        lines.append(
            f"{attenuation:>9} | {row['sift']:6.2f} | {row['sniffer']:8.2f}"
        )
    record_table("fig07_attenuation", lines)

    # Low attenuation: both near-perfect, SIFT at least as good.
    assert sweep[80]["sift"] >= 0.97
    assert sweep[80]["sniffer"] >= 0.9
    assert sweep[80]["sift"] >= sweep[80]["sniffer"] - 0.02
    # SIFT holds up through the mid-90s then collapses sharply: the
    # whole transition from >90% to ~0% fits within ~5 dB.
    assert sweep[95]["sift"] >= 0.9
    assert sweep[96]["sift"] >= 0.75
    assert sweep[100]["sift"] <= 0.2
    cliff_drop = sweep[95]["sift"] - sweep[100]["sift"]
    assert cliff_drop >= 0.6  # "a very sharp drop"
    # The sniffer falls smoothly and overtakes SIFT past the cliff, with
    # a low capture ratio there.
    past_cliff = [a for a in ATTENUATIONS_DB if a >= 99]
    assert any(
        sweep[a]["sniffer"] > sweep[a]["sift"] for a in past_cliff
    )
    crossover = [
        a
        for a in past_cliff
        if sweep[a]["sniffer"] > sweep[a]["sift"] and sweep[a]["sniffer"] > 0
    ]
    assert all(sweep[a]["sniffer"] <= 0.7 for a in crossover)
