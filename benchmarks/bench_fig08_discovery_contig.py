"""Figure 8: discovery-time reduction vs contiguous white-space width.

"we set the spectrum map to have only one available fragment.  We
varied the number of UHF channels in the fragment from 1 to 30 ...  we
plot the total time taken by L-SIFT and J-SIFT to discover the AP as a
fraction of the total time taken by the non-SIFT baseline."

Paper shape: at one channel all algorithms tie; the SIFT algorithms'
fraction falls as the fragment widens; L-SIFT wins for narrow white
spaces, J-SIFT overtakes beyond ~10 channels (60 MHz).
"""

from __future__ import annotations

import numpy as np

from repro.core.discovery import (
    BaselineDiscovery,
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
)
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio import Scanner, Transceiver
from repro.spectrum.channels import valid_channels
from repro.spectrum.fragmentation import single_fragment_map

FRAGMENT_WIDTHS = (1, 2, 4, 6, 8, 10, 14, 18, 24, 30)
REPEATS = 5


def _one_run(algorithm_cls, fragment_width: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    client_map = single_fragment_map(fragment_width, 30, start=0)
    candidates = valid_channels(range(fragment_width), 30)
    ap_channel = candidates[int(rng.integers(len(candidates)))]
    env = RfEnvironment(seed=seed)
    env.add_transmitter(
        BeaconingAp(ap_channel, phase_us=float(rng.uniform(0, 100_000)))
    )
    session = DiscoverySession(
        Scanner(env), Transceiver(env, rng=rng), client_map
    )
    outcome = algorithm_cls().discover(session)
    assert outcome.succeeded, (algorithm_cls.name, fragment_width, ap_channel)
    return outcome.elapsed_us


def discovery_fraction_curve() -> dict[int, dict[str, float]]:
    """Mean discovery time per algorithm, as a fraction of baseline."""
    curve: dict[int, dict[str, float]] = {}
    for width in FRAGMENT_WIDTHS:
        times = {"baseline": [], "l-sift": [], "j-sift": []}
        for repeat in range(REPEATS):
            seed = 1000 * width + repeat
            for cls in (BaselineDiscovery, LSiftDiscovery, JSiftDiscovery):
                times[cls.name].append(_one_run(cls, width, seed))
        base = sum(times["baseline"]) / REPEATS
        curve[width] = {
            "l-sift": (sum(times["l-sift"]) / REPEATS) / base,
            "j-sift": (sum(times["j-sift"]) / REPEATS) / base,
            "baseline_s": base / 1e6,
        }
    return curve


def test_fig08_discovery_vs_fragment(benchmark, record_table):
    curve = benchmark.pedantic(discovery_fraction_curve, rounds=1, iterations=1)

    lines = ["Figure 8: discovery time as fraction of non-SIFT baseline"]
    lines.append(
        f"{'fragment':>9} | {'L-SIFT':>7} | {'J-SIFT':>7} | {'baseline s':>10}"
    )
    for width in FRAGMENT_WIDTHS:
        row = curve[width]
        lines.append(
            f"{width:>9} | {row['l-sift']:7.2f} | {row['j-sift']:7.2f} | "
            f"{row['baseline_s']:10.2f}"
        )
    record_table("fig08_discovery_contig", lines)

    # One channel: everything costs about the same (degenerate case).
    assert 0.9 <= curve[1]["l-sift"] <= 1.1
    assert 0.9 <= curve[1]["j-sift"] <= 1.1
    # Wide spectrum: both SIFT algorithms far below the baseline, and
    # J-SIFT beats L-SIFT (crossover near 10 channels).
    assert curve[30]["l-sift"] < 0.6
    wide_l = sum(curve[w]["l-sift"] for w in (18, 24, 30))
    wide_j = sum(curve[w]["j-sift"] for w in (18, 24, 30))
    assert wide_j < wide_l
    # Narrow spectrum: L-SIFT at least as good as J-SIFT on average.
    narrow_l = sum(curve[w]["l-sift"] for w in (2, 4, 6))
    narrow_j = sum(curve[w]["j-sift"] for w in (2, 4, 6))
    assert narrow_l <= narrow_j + 0.15
