"""Figure 8: discovery-time reduction vs contiguous white-space width.

"we set the spectrum map to have only one available fragment.  We
varied the number of UHF channels in the fragment from 1 to 30 ...  we
plot the total time taken by L-SIFT and J-SIFT to discover the AP as a
fraction of the total time taken by the non-SIFT baseline."

Paper shape: at one channel all algorithms tie; the SIFT algorithms'
fraction falls as the fragment widens; L-SIFT wins for narrow white
spaces, J-SIFT overtakes beyond ~10 channels (60 MHz).

The race grid is declarative: one ``ExperimentSpec`` per (fragment
width, seed, algorithm) cell, fanned out by ``ParallelRunner`` with
spec-hash caching — the same scenario seed hides the same AP from all
three algorithms.
"""

from __future__ import annotations

from repro.experiments import ExperimentSpec, ScenarioSpec

from _runner import bench_runner

FRAGMENT_WIDTHS = (1, 2, 4, 6, 8, 10, 14, 18, 24, 30)
REPEATS = 5
ALGORITHMS = ("baseline", "l-sift", "j-sift")


def _scenario(fragment_width: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=tuple(range(fragment_width)),
        num_channels=30,
        seed=seed,
    )


def discovery_fraction_curve() -> dict[int, dict[str, float]]:
    """Mean discovery time per algorithm, as a fraction of baseline."""
    jobs = [
        ExperimentSpec(
            _scenario(width, seed=1000 * width + repeat),
            kind="discovery",
            discovery_algorithm=algorithm,
        )
        for width in FRAGMENT_WIDTHS
        for repeat in range(REPEATS)
        for algorithm in ALGORITHMS
    ]
    results = iter(bench_runner().run_grid(jobs))

    curve: dict[int, dict[str, float]] = {}
    for width in FRAGMENT_WIDTHS:
        times: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
        for _ in range(REPEATS):
            for algorithm in ALGORITHMS:
                result = next(results)
                assert result.metric("discovery_succeeded"), (algorithm, width)
                times[algorithm].append(result.metric("discovery_us"))
        base = sum(times["baseline"]) / REPEATS
        curve[width] = {
            "l-sift": (sum(times["l-sift"]) / REPEATS) / base,
            "j-sift": (sum(times["j-sift"]) / REPEATS) / base,
            "baseline_s": base / 1e6,
        }
    return curve


def test_fig08_discovery_vs_fragment(benchmark, record_table):
    curve = benchmark.pedantic(discovery_fraction_curve, rounds=1, iterations=1)

    lines = ["Figure 8: discovery time as fraction of non-SIFT baseline"]
    lines.append(
        f"{'fragment':>9} | {'L-SIFT':>7} | {'J-SIFT':>7} | {'baseline s':>10}"
    )
    for width in FRAGMENT_WIDTHS:
        row = curve[width]
        lines.append(
            f"{width:>9} | {row['l-sift']:7.2f} | {row['j-sift']:7.2f} | "
            f"{row['baseline_s']:10.2f}"
        )
    record_table(
        "fig08_discovery_contig",
        lines,
        data={"fraction_of_baseline": {str(w): curve[w] for w in FRAGMENT_WIDTHS}},
    )

    # One channel: everything costs about the same (degenerate case).
    assert 0.9 <= curve[1]["l-sift"] <= 1.1
    assert 0.9 <= curve[1]["j-sift"] <= 1.1
    # Wide spectrum: both SIFT algorithms far below the baseline, and
    # J-SIFT beats L-SIFT (crossover near 10 channels).
    assert curve[30]["l-sift"] < 0.6
    wide_l = sum(curve[w]["l-sift"] for w in (18, 24, 30))
    wide_j = sum(curve[w]["j-sift"] for w in (18, 24, 30))
    assert wide_j < wide_l
    # Narrow spectrum: L-SIFT at least as good as J-SIFT on average.
    narrow_l = sum(curve[w]["l-sift"] for w in (2, 4, 6))
    narrow_j = sum(curve[w]["j-sift"] for w in (2, 4, 6))
    assert narrow_l <= narrow_j + 0.15
