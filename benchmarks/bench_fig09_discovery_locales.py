"""Figure 9: time to discover one AP in metro/suburban/rural settings.

"We randomly placed the AP on an available channel and width and
repeated the experiment 10 times for every locale.  ...  in metro
areas, where there are fewer contiguous channels, J-SIFT is 34% faster
than the baseline.  In rural areas (more contiguous channels), we see
that J-SIFT can discover APs in less than one-third the time taken by
the baseline algorithm."

Each (locale, run, algorithm) cell is a declarative ``ExperimentSpec``
over the locale's spectrum map, fanned out by ``ParallelRunner`` —
the scenario seed places the AP, so every algorithm races toward the
same hidden channel.
"""

from __future__ import annotations

from repro.experiments import ExperimentSpec, ScenarioSpec
from repro.spectrum.channels import valid_channels
from repro.spectrum.geodata import SETTINGS, generate_study

from _runner import bench_runner

RUNS_PER_SETTING = 10
ALGORITHMS = ("baseline", "l-sift", "j-sift")


def locale_discovery_times(seed: int = 2009) -> dict[str, dict[str, float]]:
    """Mean discovery time (seconds) per algorithm per setting."""
    study = generate_study(count_per_setting=10, seed=seed)
    jobs: list[ExperimentSpec] = []
    for setting_index, setting in enumerate(SETTINGS):
        # Only locales whose map admits at least one (F, W) candidate
        # can hide an AP ("the client did not scan these channels").
        locale_cycle = [
            locale
            for locale in study[setting]
            if valid_channels(locale.spectrum_map.free_indices(), 30)
        ]
        for run in range(RUNS_PER_SETTING):
            locale = locale_cycle[run % len(locale_cycle)]
            scenario = ScenarioSpec(
                free_indices=locale.spectrum_map.free_indices(),
                num_channels=30,
                seed=seed + 1000 * setting_index + run,
            )
            jobs.extend(
                ExperimentSpec(
                    scenario, kind="discovery", discovery_algorithm=algorithm
                )
                for algorithm in ALGORITHMS
            )
    results = iter(bench_runner().run_grid(jobs))

    table: dict[str, dict[str, float]] = {}
    for setting in SETTINGS:
        times: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
        for _ in range(RUNS_PER_SETTING):
            for algorithm in ALGORITHMS:
                result = next(results)
                assert result.metric("discovery_succeeded"), (setting, algorithm)
                times[algorithm].append(result.metric("discovery_us"))
        table[setting] = {
            name: sum(values) / len(values) / 1e6
            for name, values in times.items()
        }
    return table


def test_fig09_discovery_by_locale(benchmark, record_table):
    results = benchmark.pedantic(
        locale_discovery_times, rounds=1, iterations=1
    )

    lines = ["Figure 9: mean time to discover one AP (seconds)"]
    lines.append(
        f"{'setting':>9} | {'baseline':>9} | {'L-SIFT':>7} | {'J-SIFT':>7} | "
        f"{'J/baseline':>10}"
    )
    for setting in SETTINGS:
        row = results[setting]
        ratio = row["j-sift"] / row["baseline"]
        lines.append(
            f"{setting:>9} | {row['baseline']:9.2f} | {row['l-sift']:7.2f} | "
            f"{row['j-sift']:7.2f} | {ratio:10.2f}"
        )
    lines.append("paper: metro J-SIFT ~34% faster; rural < 1/3 of baseline")
    record_table(
        "fig09_discovery_locales",
        lines,
        data={"mean_seconds": results},
    )

    # Urban (metro): J-SIFT meaningfully faster than the baseline.
    urban_ratio = results["urban"]["j-sift"] / results["urban"]["baseline"]
    assert urban_ratio <= 0.8
    # Rural: less than ~40% of baseline (paper: under one third).
    rural_ratio = results["rural"]["j-sift"] / results["rural"]["baseline"]
    assert rural_ratio <= 0.45
    # More contiguous spectrum -> bigger J-SIFT advantage.
    assert rural_ratio < urban_ratio
