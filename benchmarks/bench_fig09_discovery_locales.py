"""Figure 9: time to discover one AP in metro/suburban/rural settings.

"We randomly placed the AP on an available channel and width and
repeated the experiment 10 times for every locale.  ...  in metro
areas, where there are fewer contiguous channels, J-SIFT is 34% faster
than the baseline.  In rural areas (more contiguous channels), we see
that J-SIFT can discover APs in less than one-third the time taken by
the baseline algorithm."
"""

from __future__ import annotations

import numpy as np

from repro.core.discovery import (
    BaselineDiscovery,
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
)
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio import Scanner, Transceiver
from repro.spectrum.channels import valid_channels
from repro.spectrum.geodata import SETTINGS, generate_study

RUNS_PER_SETTING = 10


def locale_discovery_times(seed: int = 2009) -> dict[str, dict[str, float]]:
    """Mean discovery time (seconds) per algorithm per setting."""
    study = generate_study(count_per_setting=10, seed=seed)
    results: dict[str, dict[str, float]] = {}
    for setting, locales in study.items():
        times = {"baseline": [], "l-sift": [], "j-sift": []}
        rng = np.random.default_rng(seed + hash(setting) % 1000)
        run = 0
        locale_cycle = [l for l in locales if l.spectrum_map.num_free() > 0]
        while run < RUNS_PER_SETTING:
            locale = locale_cycle[run % len(locale_cycle)]
            candidates = valid_channels(
                locale.spectrum_map.free_indices(), 30
            )
            if not candidates:
                run += 1
                continue
            ap_channel = candidates[int(rng.integers(len(candidates)))]
            for cls in (BaselineDiscovery, LSiftDiscovery, JSiftDiscovery):
                env = RfEnvironment(seed=seed + run)
                env.add_transmitter(
                    BeaconingAp(
                        ap_channel, phase_us=float(rng.uniform(0, 100_000))
                    )
                )
                session = DiscoverySession(
                    Scanner(env),
                    Transceiver(env, rng=np.random.default_rng(seed + run)),
                    locale.spectrum_map,
                )
                outcome = cls().discover(session)
                assert outcome.succeeded
                times[cls.name].append(outcome.elapsed_us)
            run += 1
        results[setting] = {
            name: sum(values) / len(values) / 1e6
            for name, values in times.items()
        }
    return results


def test_fig09_discovery_by_locale(benchmark, record_table):
    results = benchmark.pedantic(
        locale_discovery_times, rounds=1, iterations=1
    )

    lines = ["Figure 9: mean time to discover one AP (seconds)"]
    lines.append(
        f"{'setting':>9} | {'baseline':>9} | {'L-SIFT':>7} | {'J-SIFT':>7} | "
        f"{'J/baseline':>10}"
    )
    for setting in SETTINGS:
        row = results[setting]
        ratio = row["j-sift"] / row["baseline"]
        lines.append(
            f"{setting:>9} | {row['baseline']:9.2f} | {row['l-sift']:7.2f} | "
            f"{row['j-sift']:7.2f} | {ratio:10.2f}"
        )
    lines.append("paper: metro J-SIFT ~34% faster; rural < 1/3 of baseline")
    record_table("fig09_discovery_locales", lines)

    # Urban (metro): J-SIFT meaningfully faster than the baseline.
    urban_ratio = results["urban"]["j-sift"] / results["urban"]["baseline"]
    assert urban_ratio <= 0.8
    # Rural: less than ~40% of baseline (paper: under one third).
    rural_ratio = results["rural"]["j-sift"] / results["rural"]["baseline"]
    assert rural_ratio <= 0.45
    # More contiguous spectrum -> bigger J-SIFT advantage.
    assert rural_ratio < urban_ratio
