"""Figure 10: MCham microbenchmark — metric vs measured throughput.

"we simulate a spectrum fragment of 5 adjacent UHF channels (26-30),
each having one background client/AP-pair.  There is one AP with one
associated client, transmitting a link-saturating UDP flow.  We vary
the traffic intensity of the background nodes (from 0 to 50 ms
inter-packet delay) and measure the effect on the MCham metric and
client throughput when transmitting on the 5, 10, and 20 MHz channels
centered at channel 28."

Shape to reproduce: at light background the 20 MHz channel wins both
the metric and the measured throughput; as background intensifies the
winner walks down to 10 MHz and then 5 MHz, and MCham's predicted
ordering tracks the measured ordering through the crossover region.
"""

from __future__ import annotations

from repro.core.mcham import mcham
from repro.experiments import (
    BackgroundSpec,
    ScenarioBuilder,
    ScenarioConfig,
    run_static,
)
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

#: TV channels 26-30 map to usable indices 5..9.
FRAGMENT = SpectrumMap.from_free(range(5, 10), 30)
CENTER = 7  # "channel 28"
DELAYS_MS = (50.0, 40.0, 30.0, 24.0, 18.0, 14.0, 10.0, 6.0, 3.0)
WIDTHS = (5.0, 10.0, 20.0)


def _config(delay_ms: float, seed: int = 1) -> ScenarioConfig:
    return ScenarioConfig(
        base_map=FRAGMENT,
        num_clients=1,
        backgrounds=[
            BackgroundSpec(i, delay_ms * 1000.0) for i in range(5, 10)
        ],
        duration_us=3_000_000.0,
        seed=seed,
        uplink=False,  # "a link-saturating UDP flow" (downstream)
    )


def _measure_mcham(delay_ms: float, seed: int = 1) -> dict[float, float]:
    """Measure the MCham value per width from a background-only warmup."""
    world = ScenarioBuilder(_config(delay_ms, seed)).build_world()
    world.engine.run_until(2_000_000.0)
    observation = world.sensor.observe("whitefi")
    return {
        width: mcham(WhiteFiChannel(CENTER, width), observation)
        for width in WIDTHS
    }


def microbenchmark() -> dict[float, dict[str, dict[float, float]]]:
    """Throughput and MCham per width across background intensities."""
    results: dict[float, dict[str, dict[float, float]]] = {}
    for delay in DELAYS_MS:
        config = _config(delay)
        throughput = {
            width: run_static(config, WhiteFiChannel(CENTER, width)).aggregate_mbps
            for width in WIDTHS
        }
        results[delay] = {
            "throughput": throughput,
            "mcham": _measure_mcham(delay),
        }
    return results


def test_fig10_mcham_microbenchmark(benchmark, record_table):
    results = benchmark.pedantic(microbenchmark, rounds=1, iterations=1)

    lines = ["Figure 10: MCham vs throughput at (28, W); bg on all 5 channels"]
    lines.append(
        f"{'delay ms':>9} | {'thr 5/10/20 Mbps':>22} | {'MCham 5/10/20':>20} | "
        f"{'best thr':>8} | {'best MCham':>10}"
    )
    agreements = 0
    for delay in DELAYS_MS:
        row = results[delay]
        thr, met = row["throughput"], row["mcham"]
        best_thr = max(thr, key=thr.get)
        best_met = max(met, key=met.get)
        agreements += best_thr == best_met
        lines.append(
            f"{delay:>9g} | "
            f"{thr[5.0]:6.2f}/{thr[10.0]:6.2f}/{thr[20.0]:6.2f} | "
            f"{met[5.0]:5.2f}/{met[10.0]:5.2f}/{met[20.0]:5.2f} | "
            f"{best_thr:>7g}M | {best_met:>9g}M"
        )
    lines.append(
        f"metric/throughput winner agreement: {agreements}/{len(DELAYS_MS)}"
    )
    record_table("fig10_mcham_microbench", lines)

    # Light background: 20 MHz wins both measures.
    light = results[50.0]
    assert max(light["throughput"], key=light["throughput"].get) == 20.0
    assert max(light["mcham"], key=light["mcham"].get) == 20.0
    # Heavy background: 5 MHz wins both measures.
    heavy = results[3.0]
    assert max(heavy["throughput"], key=heavy["throughput"].get) == 5.0
    assert max(heavy["mcham"], key=heavy["mcham"].get) == 5.0
    # The measured-throughput winner walks 20 -> 10 -> 5 as background
    # intensifies (each width wins somewhere, in order).
    winners = [
        max(results[d]["throughput"], key=results[d]["throughput"].get)
        for d in DELAYS_MS
    ]
    assert winners[0] == 20.0 and winners[-1] == 5.0
    assert 10.0 in winners, f"no 10 MHz band in {winners}"
    # No width re-appears after losing (monotone walk).
    filtered = [w for i, w in enumerate(winners) if i == 0 or winners[i - 1] != w]
    assert filtered in ([20.0, 10.0, 5.0], [20.0, 5.0])
    # The metric tracks the measured winner through the crossover: its
    # own winner walks down monotonically and never strays more than
    # one width step from the measured winner.  (The exact crossover
    # points are noisy — CBR phase luck — so an agreement *count* is
    # not a stable assertion; the recorded table keeps the number.)
    step = {5.0: 0, 10.0: 1, 20.0: 2}
    metric_winners = [
        max(results[d]["mcham"], key=results[d]["mcham"].get)
        for d in DELAYS_MS
    ]
    assert all(
        step[a] >= step[b]
        for a, b in zip(metric_winners, metric_winners[1:])
    ), metric_winners
    assert all(
        abs(step[m] - step[w]) <= 1
        for m, w in zip(metric_winners, winners)
    ), (metric_winners, winners)
