"""Figure 11: impact of background traffic on throughput.

"there are X background AP/client-pairs in the system, each being
randomly assigned to one of the free UHF channels, and each sending at
a packet interval delay of 30 ms.  ...  WhiteFi achieves close to
optimal performance for varying degree of background traffic.  With
little or no background traffic, WhiteFi performs as well as picking
the widest available channel (OPT 20 MHz).  As the traffic increases,
the throughput achieved by OPT 20 MHz drops ...  WhiteFi is always
within 14% of the optimal value throughput OPT."

The spectrum map is the Section 5.4.1 setup: 17 free UHF channels,
widest contiguous white space 36 MHz.
"""

from __future__ import annotations

import random

from repro.sim.runner import (
    BackgroundSpec,
    ScenarioConfig,
    run_opt_baselines,
    run_whitefi,
)
from repro.spectrum.spectrum_map import SpectrumMap

FREE = list(range(2, 8)) + list(range(10, 13)) + list(range(15, 19)) + [
    21,
    22,
    25,
    28,
]
SEVENTEEN_FREE = SpectrumMap.from_free(FREE, 30)
PAIR_COUNTS = (0, 5, 10, 15, 20, 25)
REPEATS = 2
DELAY_US = 30_000.0


def _config(num_pairs: int, seed: int) -> ScenarioConfig:
    rng = random.Random(seed)
    backgrounds = [
        BackgroundSpec(rng.choice(FREE), DELAY_US) for _ in range(num_pairs)
    ]
    return ScenarioConfig(
        base_map=SEVENTEEN_FREE,
        num_clients=2,
        backgrounds=backgrounds,
        duration_us=3_000_000.0,
        seed=seed,
        uplink=True,
    )


def background_sweep() -> dict[int, dict[str, float]]:
    """Per-client throughput of WhiteFi and the OPT baselines."""
    sweep: dict[int, dict[str, float]] = {}
    for num_pairs in PAIR_COUNTS:
        rows: dict[str, list[float]] = {}
        for repeat in range(REPEATS):
            config = _config(num_pairs, seed=100 * num_pairs + repeat)
            results = run_opt_baselines(config, probe_duration_us=800_000.0)
            results["whitefi"] = run_whitefi(config)
            for name, result in results.items():
                if result is not None:
                    rows.setdefault(name, []).append(result.per_client_mbps)
        sweep[num_pairs] = {
            name: sum(values) / len(values) for name, values in rows.items()
        }
    return sweep


def test_fig11_background_traffic(benchmark, record_table):
    sweep = benchmark.pedantic(background_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt", "opt-20mhz", "opt-10mhz", "opt-5mhz")
    lines = ["Figure 11: per-client throughput (Mbps) vs background pairs"]
    lines.append(
        f"{'pairs':>6} | " + " | ".join(f"{n:>10}" for n in names)
    )
    for num_pairs in PAIR_COUNTS:
        row = sweep[num_pairs]
        lines.append(
            f"{num_pairs:>6} | "
            + " | ".join(f"{row.get(n, float('nan')):10.2f}" for n in names)
        )
    worst_gap = max(
        1.0 - sweep[p]["whitefi"] / sweep[p]["opt"]
        for p in PAIR_COUNTS
        if sweep[p]["opt"] > 0
    )
    lines.append(f"worst WhiteFi-vs-OPT gap: {worst_gap:.0%} (paper: within 14%)")
    record_table("fig11_background", lines)

    # No background: WhiteFi matches the widest channel.
    clean = sweep[0]
    assert clean["whitefi"] >= 0.9 * clean["opt-20mhz"]
    # OPT 20 MHz degrades with load much faster than OPT 5 MHz.
    drop_20 = sweep[25]["opt-20mhz"] / sweep[0]["opt-20mhz"]
    drop_5 = sweep[25]["opt-5mhz"] / sweep[0]["opt-5mhz"]
    assert drop_20 < drop_5
    # WhiteFi tracks OPT across the sweep (allowing extra slack over the
    # paper's 14% for our shorter simulations).
    for num_pairs in PAIR_COUNTS:
        row = sweep[num_pairs]
        assert row["whitefi"] >= 0.6 * row["opt"], (num_pairs, row)
