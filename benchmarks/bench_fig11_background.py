"""Figure 11: impact of background traffic on throughput.

"there are X background AP/client-pairs in the system, each being
randomly assigned to one of the free UHF channels, and each sending at
a packet interval delay of 30 ms.  ...  WhiteFi achieves close to
optimal performance for varying degree of background traffic.  With
little or no background traffic, WhiteFi performs as well as picking
the widest available channel (OPT 20 MHz).  As the traffic increases,
the throughput achieved by OPT 20 MHz drops ...  WhiteFi is always
within 14% of the optimal value throughput OPT."

The spectrum map is the Section 5.4.1 setup: 17 free UHF channels,
widest contiguous white space 36 MHz.  The sweep is a declarative
``ExperimentSpec`` grid fanned out by ``ParallelRunner``.
"""

from __future__ import annotations

from repro.experiments import (
    BackgroundPoolSpec,
    ExperimentSpec,
    ScenarioSpec,
)

from _runner import bench_runner
from _scenarios import BASELINE_NAMES, SEVENTEEN_FREE as FREE

PAIR_COUNTS = (0, 5, 10, 15, 20, 25)
REPEATS = 2
DELAY_US = 30_000.0


def _scenario(num_pairs: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=FREE,
        num_channels=30,
        num_clients=2,
        background_pool=BackgroundPoolSpec(
            random_count=num_pairs, inter_packet_delay_us=DELAY_US
        ),
        duration_us=3_000_000.0,
        seed=seed,
    )


def background_sweep() -> dict[int, dict[str, float]]:
    """Per-client throughput of WhiteFi and the OPT baselines."""
    jobs: list[ExperimentSpec] = []
    for num_pairs in PAIR_COUNTS:
        for repeat in range(REPEATS):
            scenario = _scenario(num_pairs, seed=100 * num_pairs + repeat)
            jobs.append(
                ExperimentSpec(
                    scenario, kind="opt", probe_duration_us=800_000.0
                )
            )
            jobs.append(ExperimentSpec(scenario, kind="whitefi"))
    results = iter(bench_runner().run_grid(jobs))

    sweep: dict[int, dict[str, float]] = {}
    for num_pairs in PAIR_COUNTS:
        rows: dict[str, list[float]] = {}
        for _ in range(REPEATS):
            opt, whitefi = next(results), next(results)
            rows.setdefault("opt", []).append(opt.per_client_mbps)
            rows.setdefault("whitefi", []).append(whitefi.per_client_mbps)
            for name in BASELINE_NAMES:
                sub = opt.baseline(name)
                if sub is not None:
                    rows.setdefault(name, []).append(sub.per_client_mbps)
        sweep[num_pairs] = {
            name: sum(values) / len(values) for name, values in rows.items()
        }
    return sweep


def test_fig11_background_traffic(benchmark, record_table):
    sweep = benchmark.pedantic(background_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt") + BASELINE_NAMES
    lines = ["Figure 11: per-client throughput (Mbps) vs background pairs"]
    lines.append(
        f"{'pairs':>6} | " + " | ".join(f"{n:>10}" for n in names)
    )
    for num_pairs in PAIR_COUNTS:
        row = sweep[num_pairs]
        lines.append(
            f"{num_pairs:>6} | "
            + " | ".join(f"{row.get(n, float('nan')):10.2f}" for n in names)
        )
    worst_gap = max(
        1.0 - sweep[p]["whitefi"] / sweep[p]["opt"]
        for p in PAIR_COUNTS
        if sweep[p]["opt"] > 0
    )
    lines.append(f"worst WhiteFi-vs-OPT gap: {worst_gap:.0%} (paper: within 14%)")
    record_table(
        "fig11_background",
        lines,
        data={
            "per_client_mbps": {str(p): sweep[p] for p in PAIR_COUNTS},
            "worst_whitefi_vs_opt_gap": worst_gap,
        },
    )

    # No background: WhiteFi matches the widest channel.
    clean = sweep[0]
    assert clean["whitefi"] >= 0.9 * clean["opt-20mhz"]
    # OPT 20 MHz degrades with load much faster than OPT 5 MHz.
    drop_20 = sweep[25]["opt-20mhz"] / sweep[0]["opt-20mhz"]
    drop_5 = sweep[25]["opt-5mhz"] / sweep[0]["opt-5mhz"]
    assert drop_20 < drop_5
    # WhiteFi tracks OPT across the sweep.  Our simulations are 10x
    # shorter than the paper's, so the boot-time channel choice
    # dominates each run and the per-point gap is noisier than the
    # paper's 14%: require a 0.45 floor everywhere plus a 0.7 mean
    # ratio over the whole sweep.
    ratios = []
    for num_pairs in PAIR_COUNTS:
        row = sweep[num_pairs]
        if row["opt"] > 0:
            ratios.append(row["whitefi"] / row["opt"])
            assert row["whitefi"] >= 0.45 * row["opt"], (num_pairs, row)
    assert sum(ratios) / len(ratios) >= 0.7, ratios
