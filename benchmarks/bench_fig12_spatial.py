"""Figure 12: impact of spatial variation on throughput.

"there are 10 clients connected [to] the AP, and one background
client/AP-pair per UHF channel ... for each client (and AP) and for
each UHF channel i, we randomly flip the entry u_i with probability P.
In the experiment, we vary P from 0 (no spatial variation) to 0.14
(large spatial variation).  ...  spatial variation reduces achievable
aggregate throughput.  Because the AP needs to select a channel that is
free at all clients, no contiguous free spectrum parts remain available
for P > 0.1, and hence, the aggregate throughput reduces to the
throughput of a single UHF channel (5 MHz).  ...  WhiteFi is
near-optimal in all cases."
"""

from __future__ import annotations

from repro.sim.runner import (
    BackgroundSpec,
    ScenarioConfig,
    run_opt_baselines,
    run_whitefi,
)
from repro.spectrum.spectrum_map import SpectrumMap
from repro.spectrum.variation import per_node_maps

FREE = list(range(2, 8)) + list(range(10, 13)) + list(range(15, 19)) + [
    21,
    22,
    25,
    28,
]
SEVENTEEN_FREE = SpectrumMap.from_free(FREE, 30)
FLIP_PROBABILITIES = (0.0, 0.02, 0.05, 0.08, 0.11, 0.14)
NUM_CLIENTS = 10
DELAY_US = 30_000.0
REPEATS = 2


def _config(p: float, seed: int) -> ScenarioConfig:
    maps = per_node_maps(SEVENTEEN_FREE, NUM_CLIENTS + 1, p, seed=seed)
    # Background pairs live on channels free in the *base* map; their own
    # operation is independent of the foreground's perceived variation.
    backgrounds = [BackgroundSpec(i, DELAY_US) for i in FREE]
    return ScenarioConfig(
        base_map=SEVENTEEN_FREE,
        num_clients=NUM_CLIENTS,
        backgrounds=backgrounds,
        duration_us=2_500_000.0,
        seed=seed,
        ap_map=maps[0],
        client_maps=maps[1:],
        uplink=False,  # keep 11-node scenarios tractable
    )


def spatial_sweep() -> dict[float, dict[str, float]]:
    """Per-client throughput vs flip probability."""
    sweep: dict[float, dict[str, float]] = {}
    for p in FLIP_PROBABILITIES:
        rows: dict[str, list[float]] = {}
        for repeat in range(REPEATS):
            config = _config(p, seed=1000 + repeat)
            union_free = config.union_map().num_free()
            results = run_opt_baselines(config, probe_duration_us=700_000.0)
            results["whitefi"] = run_whitefi(config)
            for name, result in results.items():
                rows.setdefault(name, []).append(
                    result.per_client_mbps if result is not None else 0.0
                )
            rows.setdefault("union_free", []).append(float(union_free))
        sweep[p] = {
            name: sum(values) / len(values) for name, values in rows.items()
        }
    return sweep


def test_fig12_spatial_variation(benchmark, record_table):
    sweep = benchmark.pedantic(spatial_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt", "opt-20mhz", "opt-10mhz", "opt-5mhz")
    lines = [
        "Figure 12: per-client throughput (Mbps) vs flip probability P "
        "(10 clients)"
    ]
    lines.append(
        f"{'P':>5} | "
        + " | ".join(f"{n:>10}" for n in names)
        + f" | {'union free':>10}"
    )
    for p in FLIP_PROBABILITIES:
        row = sweep[p]
        lines.append(
            f"{p:>5.2f} | "
            + " | ".join(f"{row.get(n, 0.0):10.3f}" for n in names)
            + f" | {row['union_free']:10.0f}"
        )
    record_table("fig12_spatial", lines)

    # Spatial variation shrinks the union of free channels and the
    # achievable throughput.
    assert sweep[0.14]["union_free"] < sweep[0.0]["union_free"]
    assert sweep[0.14]["whitefi"] < sweep[0.0]["whitefi"]
    # With no variation the wide channel is available and WhiteFi uses it.
    assert sweep[0.0]["whitefi"] >= 0.85 * sweep[0.0]["opt"]
    # At large P, wide options disappear: OPT-20 collapses to (near) zero
    # while the 5 MHz baseline survives.
    assert sweep[0.14]["opt-20mhz"] <= sweep[0.14]["opt-5mhz"] + 0.05
    # WhiteFi stays near OPT throughout.
    for p in FLIP_PROBABILITIES:
        row = sweep[p]
        if row["opt"] > 0:
            assert row["whitefi"] >= 0.55 * row["opt"], (p, row)
