"""Figure 12: impact of spatial variation on throughput.

"there are 10 clients connected [to] the AP, and one background
client/AP-pair per UHF channel ... for each client (and AP) and for
each UHF channel i, we randomly flip the entry u_i with probability P.
In the experiment, we vary P from 0 (no spatial variation) to 0.14
(large spatial variation).  ...  spatial variation reduces achievable
aggregate throughput.  Because the AP needs to select a channel that is
free at all clients, no contiguous free spectrum parts remain available
for P > 0.1, and hence, the aggregate throughput reduces to the
throughput of a single UHF channel (5 MHz).  ...  WhiteFi is
near-optimal in all cases."
"""

from __future__ import annotations

from repro.experiments import (
    BackgroundPoolSpec,
    ExperimentSpec,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)

from _runner import bench_runner
from _scenarios import BASELINE_NAMES, SEVENTEEN_FREE as FREE
from repro.experiments.scenario import build_config

FLIP_PROBABILITIES = (0.0, 0.02, 0.05, 0.08, 0.11, 0.14)
NUM_CLIENTS = 10
DELAY_US = 30_000.0
REPEATS = 2


def _scenario(p: float, seed: int) -> ScenarioSpec:
    # Background pairs live on channels free in the *base* map; their own
    # operation is independent of the foreground's perceived variation.
    return ScenarioSpec(
        free_indices=FREE,
        num_channels=30,
        num_clients=NUM_CLIENTS,
        background_pool=BackgroundPoolSpec(
            per_free_channel=1, inter_packet_delay_us=DELAY_US
        ),
        spatial=SpatialSpec(flip_probability=p) if p > 0 else None,
        # keep 11-node scenarios tractable: downlink only
        traffic=TrafficSpec(uplink=False),
        duration_us=2_500_000.0,
        seed=seed,
    )


def spatial_sweep() -> dict[float, dict[str, float]]:
    """Per-client throughput vs flip probability."""
    jobs: list[ExperimentSpec] = []
    union_free: dict[float, list[float]] = {}
    for p in FLIP_PROBABILITIES:
        for repeat in range(REPEATS):
            scenario = _scenario(p, seed=1000 + repeat)
            union_free.setdefault(p, []).append(
                float(build_config(scenario).union_map().num_free())
            )
            jobs.append(
                ExperimentSpec(
                    scenario, kind="opt", probe_duration_us=700_000.0
                )
            )
            jobs.append(ExperimentSpec(scenario, kind="whitefi"))
    results = iter(bench_runner().run_grid(jobs))

    sweep: dict[float, dict[str, float]] = {}
    for p in FLIP_PROBABILITIES:
        rows: dict[str, list[float]] = {}
        for _ in range(REPEATS):
            opt, whitefi = next(results), next(results)
            rows.setdefault("opt", []).append(opt.per_client_mbps)
            rows.setdefault("whitefi", []).append(whitefi.per_client_mbps)
            for name in BASELINE_NAMES:
                sub = opt.baseline(name)
                rows.setdefault(name, []).append(
                    sub.per_client_mbps if sub is not None else 0.0
                )
        rows["union_free"] = union_free[p]
        sweep[p] = {
            name: sum(values) / len(values) for name, values in rows.items()
        }
    return sweep


def test_fig12_spatial_variation(benchmark, record_table):
    sweep = benchmark.pedantic(spatial_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt") + BASELINE_NAMES
    lines = [
        "Figure 12: per-client throughput (Mbps) vs flip probability P "
        "(10 clients)"
    ]
    lines.append(
        f"{'P':>5} | "
        + " | ".join(f"{n:>10}" for n in names)
        + f" | {'union free':>10}"
    )
    for p in FLIP_PROBABILITIES:
        row = sweep[p]
        lines.append(
            f"{p:>5.2f} | "
            + " | ".join(f"{row.get(n, 0.0):10.3f}" for n in names)
            + f" | {row['union_free']:10.0f}"
        )
    record_table(
        "fig12_spatial",
        lines,
        data={"per_client_mbps": {f"{p:.2f}": sweep[p] for p in FLIP_PROBABILITIES}},
    )

    # Spatial variation shrinks the union of free channels and the
    # achievable throughput.
    assert sweep[0.14]["union_free"] < sweep[0.0]["union_free"]
    assert sweep[0.14]["whitefi"] < sweep[0.0]["whitefi"]
    # With no variation the wide channel is available and WhiteFi uses it.
    assert sweep[0.0]["whitefi"] >= 0.85 * sweep[0.0]["opt"]
    # At large P, wide options disappear: OPT-20 collapses to (near) zero
    # while the 5 MHz baseline survives.
    assert sweep[0.14]["opt-20mhz"] <= sweep[0.14]["opt-5mhz"] + 0.05
    # WhiteFi stays near OPT throughout.
    for p in FLIP_PROBABILITIES:
        row = sweep[p]
        if row["opt"] > 0:
            assert row["whitefi"] >= 0.55 * row["opt"], (p, row)
