"""Figure 13: impact of background churn on throughput.

"There are a total of 34 background AP/client-pairs, two per free UHF
channel.  ...  we model background nodes using a simple discrete Markov
chain with two states (A=active, P=passive).  A background node in the
active state transmits CBR traffic with 60 ms inter-packet delay.  ...
The extreme cases are (i) all nodes are always in state P, (ii) nodes
are in each state with equal likelihood and they remain in their
current state for an average of 30 seconds, and (iii) all nodes are
always in state A.  ...  For high churn ... always picking the widest
channel (OPT 20 MHz) becomes the worst performing algorithm.  Instead,
WhiteFi is better than any static channel width choice.  In fact,
WhiteFi even outperforms OPT [the optimal *static* choice]."

Our map has 17 free channels; "two per free UHF channel" gives 34
pairs, exactly the paper's count.
"""

from __future__ import annotations

from repro.experiments import (
    BackgroundPoolSpec,
    ExperimentSpec,
    ScenarioSpec,
    TrafficSpec,
)

from _runner import bench_runner
from _scenarios import BASELINE_NAMES, SEVENTEEN_FREE as FREE


#: Active-state CBR inter-packet delay.  The paper uses 60 ms on QualNet's
#: contention model; our simulator's calibration needs a proportionally
#: heavier active load (20 ms) for the same qualitative effect — active
#: bursts that saturate a channel pair and starve wide overlapping
#: channels.  The churn *structure* (two-state Markov, 34 pairs) is
#: unchanged.
DELAY_US = 20_000.0

#: Churn grid: (label, mean_active_us, mean_passive_us).  The degenerate
#: extremes model always-passive / always-active backgrounds.
CHURN_POINTS = (
    ("all passive", 0.0, 1.0),
    ("1/3 active, 2 s states", 1_300_000.0, 2_700_000.0),
    ("1/2 active, 2 s states", 2_000_000.0, 2_000_000.0),
    ("2/3 active, 2 s states", 2_700_000.0, 1_300_000.0),
    ("all active", 1.0, 0.0),
)


def _scenario(mean_active: float, mean_passive: float, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=FREE,
        num_channels=30,
        num_clients=2,
        background_pool=BackgroundPoolSpec(
            per_free_channel=2,
            inter_packet_delay_us=DELAY_US,
            churn=(mean_active, mean_passive),
        ),
        traffic=TrafficSpec(uplink=False),
        duration_us=4_000_000.0,
        seed=seed,
    )


def churn_sweep() -> dict[str, dict[str, float]]:
    """Per-client throughput per churn configuration."""
    jobs: list[ExperimentSpec] = []
    for _, mean_active, mean_passive in CHURN_POINTS:
        scenario = _scenario(mean_active, mean_passive, seed=42)
        jobs.append(
            ExperimentSpec(scenario, kind="opt", probe_duration_us=1_000_000.0)
        )
        jobs.append(
            ExperimentSpec(
                scenario, kind="whitefi", reeval_interval_us=1_000_000.0
            )
        )
    results = iter(bench_runner().run_grid(jobs))

    sweep: dict[str, dict[str, float]] = {}
    for label, *_ in CHURN_POINTS:
        opt, whitefi = next(results), next(results)
        row = {"opt": opt.per_client_mbps, "whitefi": whitefi.per_client_mbps}
        for name in BASELINE_NAMES:
            sub = opt.baseline(name)
            row[name] = sub.per_client_mbps if sub is not None else 0.0
        sweep[label] = row
    return sweep


def test_fig13_churn(benchmark, record_table):
    sweep = benchmark.pedantic(churn_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt") + BASELINE_NAMES
    lines = ["Figure 13: per-client throughput (Mbps) under churn (34 bg pairs)"]
    lines.append(
        f"{'churn':>24} | " + " | ".join(f"{n:>10}" for n in names)
    )
    for label, *_ in CHURN_POINTS:
        row = sweep[label]
        lines.append(
            f"{label:>24} | "
            + " | ".join(f"{row.get(n, 0.0):10.2f}" for n in names)
        )
    lines.append(
        "paper shape: wide static choice collapses as activity grows; "
        "WhiteFi adapts"
    )
    record_table(
        "fig13_churn", lines, data={"per_client_mbps": sweep}
    )

    # No background at all: everyone matches the widest channel.
    passive = sweep["all passive"]
    assert passive["whitefi"] >= 0.85 * passive["opt-20mhz"]
    # Heavy activity degrades the static wide choice dramatically —
    # "always picking the widest channel becomes the worst performing".
    active = sweep["all active"]
    assert active["opt-20mhz"] < 0.45 * passive["opt-20mhz"]
    assert active["opt-20mhz"] <= max(active["opt-5mhz"], active["opt-10mhz"]) + 0.1
    # WhiteFi stays competitive with the static OPT at every point.
    for label, *_ in CHURN_POINTS:
        row = sweep[label]
        if row["opt"] > 0:
            assert row["whitefi"] >= 0.55 * row["opt"], (label, row)
    mixed = sweep["1/2 active, 2 s states"]
    static_best = max(mixed["opt-5mhz"], mixed["opt-10mhz"], mixed["opt-20mhz"])
    assert mixed["whitefi"] >= 0.6 * static_best
