"""Figure 13: impact of background churn on throughput.

"There are a total of 34 background AP/client-pairs, two per free UHF
channel.  ...  we model background nodes using a simple discrete Markov
chain with two states (A=active, P=passive).  A background node in the
active state transmits CBR traffic with 60 ms inter-packet delay.  ...
The extreme cases are (i) all nodes are always in state P, (ii) nodes
are in each state with equal likelihood and they remain in their
current state for an average of 30 seconds, and (iii) all nodes are
always in state A.  ...  For high churn ... always picking the widest
channel (OPT 20 MHz) becomes the worst performing algorithm.  Instead,
WhiteFi is better than any static channel width choice.  In fact,
WhiteFi even outperforms OPT [the optimal *static* choice]."

Our map has 17 free channels; "two per free UHF channel" gives 34
pairs, exactly the paper's count.
"""

from __future__ import annotations

from repro.sim.runner import (
    BackgroundSpec,
    ScenarioConfig,
    run_opt_baselines,
    run_whitefi,
)
from repro.spectrum.spectrum_map import SpectrumMap

FREE = list(range(2, 8)) + list(range(10, 13)) + list(range(15, 19)) + [
    21,
    22,
    25,
    28,
]
SEVENTEEN_FREE = SpectrumMap.from_free(FREE, 30)

#: Active-state CBR inter-packet delay.  The paper uses 60 ms on QualNet's
#: contention model; our simulator's calibration needs a proportionally
#: heavier active load (20 ms) for the same qualitative effect — active
#: bursts that saturate a channel pair and starve wide overlapping
#: channels.  The churn *structure* (two-state Markov, 34 pairs) is
#: unchanged.
DELAY_US = 20_000.0

#: Churn grid: (label, mean_active_us, mean_passive_us).  None means a
#: degenerate always-passive / always-active extreme.
CHURN_POINTS = (
    ("all passive", 0.0, 1.0),
    ("1/3 active, 2 s states", 1_300_000.0, 2_700_000.0),
    ("1/2 active, 2 s states", 2_000_000.0, 2_000_000.0),
    ("2/3 active, 2 s states", 2_700_000.0, 1_300_000.0),
    ("all active", 1.0, 0.0),
)


def _config(mean_active: float, mean_passive: float, seed: int) -> ScenarioConfig:
    backgrounds = [
        BackgroundSpec(channel, DELAY_US, churn=(mean_active, mean_passive))
        for channel in FREE
        for _ in range(2)
    ]
    return ScenarioConfig(
        base_map=SEVENTEEN_FREE,
        num_clients=2,
        backgrounds=backgrounds,
        duration_us=4_000_000.0,
        seed=seed,
        uplink=False,
    )


def churn_sweep() -> dict[str, dict[str, float]]:
    """Per-client throughput per churn configuration."""
    sweep: dict[str, dict[str, float]] = {}
    for label, mean_active, mean_passive in CHURN_POINTS:
        config = _config(mean_active, mean_passive, seed=42)
        results = run_opt_baselines(config, probe_duration_us=1_000_000.0)
        results["whitefi"] = run_whitefi(config, reeval_interval_us=1_000_000.0)
        sweep[label] = {
            name: (result.per_client_mbps if result is not None else 0.0)
            for name, result in results.items()
        }
    return sweep


def test_fig13_churn(benchmark, record_table):
    sweep = benchmark.pedantic(churn_sweep, rounds=1, iterations=1)

    names = ("whitefi", "opt", "opt-20mhz", "opt-10mhz", "opt-5mhz")
    lines = ["Figure 13: per-client throughput (Mbps) under churn (34 bg pairs)"]
    lines.append(
        f"{'churn':>24} | " + " | ".join(f"{n:>10}" for n in names)
    )
    for label, *_ in CHURN_POINTS:
        row = sweep[label]
        lines.append(
            f"{label:>24} | "
            + " | ".join(f"{row.get(n, 0.0):10.2f}" for n in names)
        )
    lines.append(
        "paper shape: wide static choice collapses as activity grows; "
        "WhiteFi adapts"
    )
    record_table("fig13_churn", lines)

    # No background at all: everyone matches the widest channel.
    passive = sweep["all passive"]
    assert passive["whitefi"] >= 0.85 * passive["opt-20mhz"]
    # Heavy activity degrades the static wide choice dramatically —
    # "always picking the widest channel becomes the worst performing".
    active = sweep["all active"]
    assert active["opt-20mhz"] < 0.45 * passive["opt-20mhz"]
    assert active["opt-20mhz"] <= max(active["opt-5mhz"], active["opt-10mhz"]) + 0.1
    # WhiteFi stays competitive with the static OPT at every point.
    for label, *_ in CHURN_POINTS:
        row = sweep[label]
        if row["opt"] > 0:
            assert row["whitefi"] >= 0.55 * row["opt"], (label, row)
    mixed = sweep["1/2 active, 2 s states"]
    static_best = max(mixed["opt-5mhz"], mixed["opt-10mhz"], mixed["opt-20mhz"])
    assert mixed["whitefi"] >= 0.6 * static_best
