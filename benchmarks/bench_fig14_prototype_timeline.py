"""Figure 14: prototype validation — adaptive switching over time.

Section 5.4.2 testbed: free UHF channels 26-30, 33-35, 39 and 48
(fragments of 20, 10, and two 5 MHz).  The scripted background:

* t =  50 s: background traffic on channels 26-29 -> move to the 10 MHz
  fragment (33-35);
* t = 100 s: background on 33-34 -> move to a 5 MHz channel (39);
* t = 150 s: background on 33-34 removed -> back to 10 MHz;
* t = 200 s: background on 26-29 removed -> back to 20 MHz.

The bench reproduces the same five phases (compressed 2x in time to
keep the benchmark quick; the control-loop period scales with it) and
reports the MCham-per-width timeline plus the channel history.
"""

from __future__ import annotations

from repro.experiments import (
    BackgroundSpec,
    ExperimentSpec,
    ScenarioSpec,
    TrafficSpec,
    run_experiment,
)

#: TV channels 26-30, 33-35, 39, 48 -> usable indices.
FREE = (5, 6, 7, 8, 9, 12, 13, 14, 18, 27)

#: Time compression relative to the paper's 250 s experiment.
SCALE = 0.5
PHASE_S = 50.0 * SCALE

#: Saturating-ish background during active windows.
BG_DELAY_US = 8_000.0


def _timeline_spec() -> ExperimentSpec:
    def window(start_s: float, end_s: float) -> tuple[tuple[float, float], ...]:
        return ((start_s * 1e6, end_s * 1e6),)

    backgrounds = tuple(
        # Channels 26-29 (indices 5-8) busy from t=50s to t=200s (scaled).
        BackgroundSpec(i, BG_DELAY_US, active_windows=window(PHASE_S, 4 * PHASE_S))
        for i in (5, 6, 7, 8)
    ) + tuple(
        # Channels 33-34 (indices 12-13) busy from t=100s to t=150s.
        BackgroundSpec(
            i, BG_DELAY_US, active_windows=window(2 * PHASE_S, 3 * PHASE_S)
        )
        for i in (12, 13)
    )
    scenario = ScenarioSpec(
        free_indices=FREE,
        num_channels=30,
        num_clients=1,
        backgrounds=backgrounds,
        traffic=TrafficSpec(uplink=False),
        duration_us=5 * PHASE_S * 1e6,
        warmup_us=1_000_000.0,
        seed=11,
    )
    return ExperimentSpec(
        scenario,
        kind="whitefi",
        reeval_interval_us=2_000_000.0,
        timeline_interval_us=5_000_000.0,
    )


def prototype_timeline():
    """Run the scripted experiment; returns the archived run result."""
    return run_experiment(_timeline_spec())


def _channel_at(result, t_us: float):
    current = None
    for switch_time, center, width in result.channel_history:
        if switch_time <= t_us:
            current = (center, width)
    return current


def test_fig14_prototype_timeline(benchmark, record_table):
    result = benchmark.pedantic(prototype_timeline, rounds=1, iterations=1)

    lines = ["Figure 14: adaptive switching timeline (time scale 0.5x paper)"]
    lines.append("channel history:")
    for t_us, center, width in result.channel_history:
        lines.append(f"  t={t_us / 1e6:7.1f}s -> (F=ch{center}, W={width:g}MHz)")
    lines.append("MCham per width (sampled at re-evaluations):")
    step = max(1, len(result.mcham_timeline) // 12)
    for t_us, scores in result.mcham_timeline[::step]:
        formatted = ", ".join(f"{w:g}MHz={v:.2f}" for w, v in scores)
        lines.append(f"  t={t_us / 1e6:7.1f}s: {formatted}")
    lines.append("throughput (5 s windows):")
    for t_us, mbps in result.throughput_timeline:
        lines.append(f"  t={t_us / 1e6:7.1f}s: {mbps:5.2f} Mbps")
    record_table(
        "fig14_prototype_timeline", lines, data=result.to_dict()
    )

    phase_us = PHASE_S * 1e6
    probe_points = {
        1: 0.6 * phase_us,  # quiet -> 20 MHz on 26-30
        2: 1.7 * phase_us,  # bg on 26-29 -> 10 MHz on 33-35
        3: 2.7 * phase_us,  # bg also on 33-34 -> 5 MHz (39 or 48)
        4: 3.7 * phase_us,  # 33-34 clear again -> 10 MHz
        5: 4.7 * phase_us,  # all clear -> 20 MHz
    }
    ch1 = _channel_at(result, probe_points[1])
    ch2 = _channel_at(result, probe_points[2])
    ch3 = _channel_at(result, probe_points[3])
    ch4 = _channel_at(result, probe_points[4])
    ch5 = _channel_at(result, probe_points[5])

    assert ch1 == (7, 20.0)
    assert ch2 == (13, 10.0)
    assert ch3[1] == 5.0 and ch3[0] in (18, 27, 9)
    assert ch4 == (13, 10.0)
    assert ch5 == (7, 20.0)
