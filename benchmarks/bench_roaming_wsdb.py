"""Roaming wsdb sweep: client count x speed on one dense metro database.

The portable-device workload of the FCC regime: mobile clients follow
waypoint paths across a 3 km metro, re-querying the geolocation
database only on crossing a quantization-square boundary (the 100 m
re-check rule) or on TTL expiry, handing off between APs and vacating
channels when a path enters a mic protection zone.  Each cell of the
sweep is a declarative ``ExperimentSpec`` (kind "roaming") fanned out
by ``ParallelRunner`` — byte-identical under the sequential fallback.

The headline number is the response cache's hit rate: the
cell-granular protocol serves every device in a quantization square
from one cached response, so the hit rate climbs with client density —
and collapses to ~zero under a per-coordinate baseline (resolution
shrunk toward zero), which the footer row demonstrates on the densest
cell.  Under ``WHITEFI_BENCH_SMOKE`` the sweep shrinks to a
driver-rot check.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, ScenarioSpec, summarize
from repro.wsdb.mobility import simulate_roaming
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase

from _runner import bench_runner, smoke_mode

SMOKE = smoke_mode()
CLIENT_COUNTS = (4, 8) if SMOKE else (10, 30, 60)
SPEEDS_MPS = (15.0,) if SMOKE else (5.0, 15.0, 30.0)
SEEDS_PER_CELL = 1 if SMOKE else 2
NUM_APS = 5 if SMOKE else 12
MIC_EVENTS = 1 if SMOKE else 4
DURATION_US = 60e6 if SMOKE else 300e6
EXTENT_KM = 3.0
FREE_INDICES = tuple(range(12, 30))  # dial: channels 0-11 carry TV sites


def roaming_table(
    seed: int = 2009,
) -> dict[int, dict[float, dict[str, float]]]:
    """Sweep clients x speed; mean metrics per cell across seeds."""
    jobs: list[ExperimentSpec] = []
    for num_clients in CLIENT_COUNTS:
        for speed in SPEEDS_MPS:
            scenario = ScenarioSpec(
                free_indices=FREE_INDICES,
                num_channels=30,
                duration_us=DURATION_US,
                seed=seed,
            )
            spec = ExperimentSpec(
                scenario,
                kind="roaming",
                citywide_aps=NUM_APS,
                citywide_extent_km=EXTENT_KM,
                citywide_mic_events=MIC_EVENTS,
                roaming_clients=num_clients,
                roaming_speed_mps=speed,
            )
            jobs.extend(
                spec.with_seed(seed + run) for run in range(SEEDS_PER_CELL)
            )
    results = bench_runner().run_grid(jobs)

    table: dict[int, dict[float, dict[str, float]]] = {}
    cursor = 0
    for num_clients in CLIENT_COUNTS:
        table[num_clients] = {}
        for speed in SPEEDS_MPS:
            cell = results[cursor : cursor + SEEDS_PER_CELL]
            cursor += SEEDS_PER_CELL
            table[num_clients][speed] = {
                metric: summarize(cell, metric=metric).mean
                for metric in (
                    "requeries_per_client",
                    "handoffs",
                    "vacations",
                    "connected_fraction",
                    "violation_free_fraction",
                    "db_hit_rate",
                    "db_queries",
                    "db_cache_hits",
                    "db_cache_misses",
                )
            }
    return table


def per_coordinate_baseline(seed: int = 2009) -> dict[str, float]:
    """A densest-scale A/B: cell-granular vs per-coordinate cache.

    One dense session (sweep-scale client count and speed, its own
    seeded metro — not byte-identical to a sweep cell, which derives
    its world through ``ScenarioBuilder``) run twice with identical
    paths and the same 100 m re-check rule; only the response protocol
    changes between the two runs.  Shrinking the cell edge toward zero
    gives every query point its own cache slot, the pre-cell-granular
    behavior.  Run directly (not via ``ParallelRunner``): it is one
    deterministic comparison whose only job is the footer row.
    """
    reports = {}
    for label, resolution_m in (("cell", 100.0), ("coord", 0.001)):
        metro = generate_metro(
            range(12),
            extent_m=EXTENT_KM * 1_000.0,
            seed=seed,
            num_channels=30,
        )
        db = WhiteSpaceDatabase(metro, cache_resolution_m=resolution_m)
        reports[label] = simulate_roaming(
            db,
            num_aps=NUM_APS,
            num_clients=CLIENT_COUNTS[-1],
            duration_us=DURATION_US,
            seed=seed,
            speed_mps=SPEEDS_MPS[-1],
            recheck_m=100.0,
            mic_events=MIC_EVENTS,
        )
    return {
        "cell_hit_rate": reports["cell"]["db"]["hit_rate"],
        "coord_hit_rate": reports["coord"]["db"]["hit_rate"],
        "queries": reports["cell"]["db"]["queries"],
    }


def test_roaming_wsdb_sweep(benchmark, record_table):
    def run():
        return roaming_table(), per_coordinate_baseline()

    results, baseline = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Roaming wsdb sweep: mobile clients under the 100 m re-check rule,"
        f" {NUM_APS} APs, {MIC_EVENTS} mic events, {SEEDS_PER_CELL} seeds"
        + (" [SMOKE]" if SMOKE else ""),
        f"{'clients':>7} | {'m/s':>5} | {'req/cl':>7} | {'handoff':>7} | "
        f"{'conn':>5} | {'viol-free':>9} | {'hit rate':>8}",
    ]
    for num_clients in CLIENT_COUNTS:
        for speed in SPEEDS_MPS:
            row = results[num_clients][speed]
            lines.append(
                f"{num_clients:>7} | {speed:>5.0f} | "
                f"{row['requeries_per_client']:7.1f} | "
                f"{row['handoffs']:7.1f} | {row['connected_fraction']:5.2f} | "
                f"{row['violation_free_fraction']:9.4f} | "
                f"{row['db_hit_rate']:8.2f}"
            )
    lines.append(
        f"cell-granular vs per-coordinate cache, one dense A/B session "
        f"({CLIENT_COUNTS[-1]} clients, {SPEEDS_MPS[-1]:.0f} m/s): "
        f"hit rate {baseline['cell_hit_rate']:.2f} vs "
        f"{baseline['coord_hit_rate']:.2f} over {baseline['queries']:.0f} "
        "identical queries"
    )
    record_table(
        "roaming_wsdb",
        lines,
        data={"cells": results, "baseline": baseline},
    )

    for num_clients in CLIENT_COUNTS:
        for speed in SPEEDS_MPS:
            row = results[num_clients][speed]
            # Driver-rot checks (smoke included): honest accounting.
            assert row["db_cache_hits"] + row["db_cache_misses"] == (
                pytest.approx(row["db_queries"])
            )
            assert 0.0 <= row["violation_free_fraction"] <= 1.0

    # The acceptance gate: cell-granular responses strictly beat the
    # per-coordinate baseline on the dense re-query workload.
    assert baseline["cell_hit_rate"] > baseline["coord_hit_rate"]

    if SMOKE:
        return
    for num_clients in CLIENT_COUNTS:
        # Faster clients cross more square boundaries per TTL window.
        assert (
            results[num_clients][SPEEDS_MPS[-1]]["requeries_per_client"]
            > results[num_clients][SPEEDS_MPS[0]]["requeries_per_client"]
        )
    for speed in SPEEDS_MPS:
        # Density is what the shared-cell protocol monetizes.
        assert (
            results[CLIENT_COUNTS[-1]][speed]["db_hit_rate"]
            > results[CLIENT_COUNTS[0]][speed]["db_hit_rate"]
        )
        # The re-check rule keeps clients compliant nearly always.
        for num_clients in CLIENT_COUNTS:
            assert (
                results[num_clients][speed]["violation_free_fraction"] >= 0.97
            )
