"""The scale trajectory: 10k -> 1M roaming clients on the vector engine.

Unlike the figure benchmarks, this one measures the *simulator itself*:
how many client-ticks per second the roaming engine sustains as the
fleet grows.  The scalar per-client loop anchors the comparison at the
smallest size (where it is still affordable) and the columnar vector
engine (:mod:`repro.wsdb.vector`) carries the sweep up to a million
clients, with each run on a fresh database so engines and sizes never
share cache state.

Two artifacts come out of a run:

* the usual ``benchmarks/results/bench_scale`` table via
  ``record_table``;
* an **append-only trajectory log**, ``BENCH_scale.json`` at the repo
  root: one entry per invocation with per-run clients/sec, ticks/sec,
  and peak RSS, plus the scalar-vs-vector speedup and a headline
  clients/sec figure.  ``scripts/bench_trend.py`` compares the last two
  comparable entries and fails CI on a >20% throughput regression, so
  the perf trajectory is tracked across PRs, not rediscovered.

Each entry also carries an ``observability`` A/B row: the anchor-size
vector run repeated with the full sim-clock observability stack
attached (metrics registry + span recorder) against the plain anchor
run, recording both wall times and the overhead ratio — so the cost of
"telemetry on" is a tracked number, not folklore.  The observed run's
report must stay byte-identical to the plain run's (minus its
``spans`` payload), re-asserting the observation-only contract at
bench scale.

The sweep is wall-clock-budget-capped: the two smallest sizes always
run; each larger size runs only if its projected wall time (linear
extrapolation from the last run) still fits the budget
(``WHITEFI_BENCH_SCALE_BUDGET_S``, default 300 s).  Sizes the budget
rejects are still *recorded* — as ``{"skipped": "budget"}`` run stubs —
so every entry states its full intended sweep and the trend tool can
refuse to compare entries whose realized coverage differs.  Under
``WHITEFI_BENCH_SMOKE`` everything shrinks to a driver-rot check and
the entry is flagged ``smoke`` so the trend tool never compares it
against a paper-scale entry.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import resource
import time

import pytest

import repro
from repro.telemetry import MetricsRegistry, PhaseProfiler, SpanRecorder
from repro.wsdb.mobility import simulate_roaming
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase

from _runner import smoke_mode

pytest.importorskip("numpy")

SMOKE = smoke_mode()
BENCH_LOG = pathlib.Path(__file__).parent.parent / "BENCH_scale.json"
# Smoke runs write under their own stem so they never clobber the
# checked-in paper-scale profile (same convention as record_table).
PROFILE_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / f"bench_scale-profile{'-smoke' if SMOKE else ''}.json"
)
BUDGET_ENV = "WHITEFI_BENCH_SCALE_BUDGET_S"

SEED = 2009
EXTENT_M = 3_000.0
NUM_APS = 12
MIC_EVENTS = 3
DURATION_US = 120e6  # 121 evaluated ticks at the default 1 s tick
FREE_INDICES = range(12, 30)  # dial: channels 0-11 carry TV sites

#: Vector-engine sweep sizes, ascending.  The first two always run;
#: the rest are admitted by the wall-clock budget.
VECTOR_SIZES = (200, 800) if SMOKE else (10_000, 100_000, 300_000, 1_000_000)
ALWAYS_RUN = 2
#: The scalar anchor (and the scalar-vs-vector equality check) runs at
#: the smallest vector size.
SCALAR_SIZE = VECTOR_SIZES[0]


def scale_budget_s() -> float:
    return float(os.environ.get(BUDGET_ENV) or 300.0)


def timed_run(engine: str, num_clients: int) -> tuple[dict, dict]:
    """One roaming run on a fresh database; returns (report, measurement).

    Vector runs carry a wall-clock :class:`PhaseProfiler`, so every
    measurement row states where its time went (``phases``: advance /
    recheck-detect / batch-lookup / associate / compliance seconds).
    Profiling never touches the report — the scalar-vs-vector equality
    assertion below runs against profiled vector output.
    """
    metro = generate_metro(FREE_INDICES, seed=SEED, extent_m=EXTENT_M)
    db = WhiteSpaceDatabase(metro)
    profiler = PhaseProfiler() if engine == "vector" else None
    t0 = time.perf_counter()
    report = simulate_roaming(
        db,
        num_aps=NUM_APS,
        num_clients=num_clients,
        duration_us=DURATION_US,
        seed=SEED,
        mic_events=MIC_EVENTS,
        engine=engine,
        profiler=profiler,
    )
    wall_s = time.perf_counter() - t0
    ticks = int(DURATION_US // report["tick_us"]) + 1
    client_ticks = num_clients * ticks
    measurement = {
        "engine": engine,
        "clients": num_clients,
        "ticks": ticks,
        "wall_s": wall_s,
        "client_ticks": client_ticks,
        "clients_per_sec": client_ticks / wall_s,
        "ticks_per_sec": ticks / wall_s,
        # Linux ru_maxrss is KB; a process-wide high-water mark, so
        # within one invocation it is attributable to the largest run
        # so far, not to each run independently.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if profiler is not None:
        measurement["phases"] = profiler.seconds()
    return report, measurement


def observed_run(num_clients: int) -> tuple[dict, dict]:
    """One vector run with the full sim-clock observability stack on.

    Metrics registry + span recorder attached (the ``telemetry="on"``
    + ``spans="on"`` configuration), timed the same way as
    :func:`timed_run` — the A/B counterpart to the plain anchor run.
    """
    metro = generate_metro(FREE_INDICES, seed=SEED, extent_m=EXTENT_M)
    db = WhiteSpaceDatabase(metro)
    spans = SpanRecorder()
    t0 = time.perf_counter()
    report = simulate_roaming(
        db,
        num_aps=NUM_APS,
        num_clients=num_clients,
        duration_us=DURATION_US,
        seed=SEED,
        mic_events=MIC_EVENTS,
        engine="vector",
        telemetry=MetricsRegistry(),
        spans=spans,
    )
    wall_s = time.perf_counter() - t0
    table = report["spans"]
    measurement = {
        "clients": num_clients,
        "observed_wall_s": wall_s,
        "traces": table["traces"],
        "spans": len(table["spans"]),
    }
    return report, measurement


def append_log_entry(entry: dict) -> None:
    """Append one invocation entry to the BENCH_scale.json trajectory."""
    if BENCH_LOG.exists():
        log = json.loads(BENCH_LOG.read_text())
    else:
        log = {"entries": []}
    log["entries"].append(entry)
    BENCH_LOG.write_text(json.dumps(log, indent=2) + "\n")


def test_scale_trajectory(record_table):
    budget_s = scale_budget_s()
    started = time.perf_counter()
    runs: list[dict] = []

    # The scalar anchor — and the cross-engine ground truth: the
    # vector run of the same size must reproduce its report exactly.
    scalar_report, scalar_meas = timed_run("scalar", SCALAR_SIZE)
    runs.append(scalar_meas)

    vector_reports: dict[int, dict] = {}
    for i, size in enumerate(VECTOR_SIZES):
        if i >= ALWAYS_RUN and runs[-1]["engine"] == "vector":
            projected = runs[-1]["wall_s"] * size / runs[-1]["clients"]
            elapsed = time.perf_counter() - started
            if elapsed + projected > budget_s:
                print(
                    f"budget: skipping {size} clients "
                    f"(elapsed {elapsed:.0f}s + projected {projected:.0f}s "
                    f"> {budget_s:.0f}s)"
                )
                # Record what was *not* measured: stub rows keep the
                # intended sweep visible so bench_trend only compares
                # entries with the same realized coverage.
                runs.extend(
                    {"engine": "vector", "clients": s, "skipped": "budget"}
                    for s in VECTOR_SIZES[i:]
                )
                break
        report, meas = timed_run("vector", size)
        vector_reports[size] = report
        runs.append(meas)

    assert vector_reports, "no vector run fit the budget"
    assert vector_reports[SCALAR_SIZE] == scalar_report, (
        "vector engine diverged from the scalar report at "
        f"{SCALAR_SIZE} clients"
    )
    if not SMOKE:
        # The acceptance bar: the sweep reaches 100k clients and the
        # vector engine is >= 10x the scalar loop at the anchor size.
        assert 100_000 in vector_reports
        anchor = next(
            r for r in runs if r["engine"] == "vector"
            if r["clients"] == SCALAR_SIZE
        )
        speedup = anchor["clients_per_sec"] / scalar_meas["clients_per_sec"]
        assert speedup >= 10.0, f"vector speedup only {speedup:.1f}x"
    else:
        anchor = next(r for r in runs if r["engine"] == "vector")
        speedup = anchor["clients_per_sec"] / scalar_meas["clients_per_sec"]

    # The observability A/B: the anchor-size vector run again with the
    # metrics registry + span recorder attached.  Overhead becomes a
    # tracked trajectory number, and the observation-only contract is
    # re-asserted: stripping the observability payloads must recover
    # the plain report byte-for-byte.
    anchor_meas = next(
        r
        for r in runs
        if r["engine"] == "vector" and r["clients"] == SCALAR_SIZE
    )
    observed_report, observed = observed_run(SCALAR_SIZE)
    stripped = {
        k: v
        for k, v in observed_report.items()
        if k not in ("telemetry", "spans")
    }
    assert stripped == vector_reports[SCALAR_SIZE], (
        "attaching telemetry+spans perturbed the report at "
        f"{SCALAR_SIZE} clients"
    )
    observability = {
        **observed,
        "plain_wall_s": anchor_meas["wall_s"],
        "overhead_ratio": observed["observed_wall_s"] / anchor_meas["wall_s"],
    }

    headline = max(
        (
            r
            for r in runs
            if r["engine"] == "vector" and not r.get("skipped")
        ),
        key=lambda r: r["clients"],
    )
    entry = {
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "version": repro.__version__,
        # Wall-clock throughput is only comparable on the same machine;
        # bench_trend never judges entries from different hosts.
        "host": platform.node() or "unknown",
        "smoke": SMOKE,
        "duration_us": DURATION_US,
        "runs": runs,
        "observability": observability,
        "speedup_vs_scalar": speedup,
        "headline_clients": headline["clients"],
        "headline_clients_per_sec": headline["clients_per_sec"],
    }
    append_log_entry(entry)

    # The standalone profile artifact: per-phase seconds for every
    # vector run, keyed by fleet size (CI uploads this next to the
    # bench table).
    PROFILE_PATH.parent.mkdir(parents=True, exist_ok=True)
    PROFILE_PATH.write_text(
        json.dumps(
            {
                "created": entry["created"],
                "version": repro.__version__,
                "smoke": SMOKE,
                "profiles": {
                    str(r["clients"]): r["phases"]
                    for r in runs
                    if r.get("engine") == "vector" and "phases" in r
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    lines = [
        f"{'engine':>8} {'clients':>9} {'wall_s':>8} "
        f"{'clients/s':>12} {'ticks/s':>8} {'rss_mb':>8}"
    ]
    for r in runs:
        if r.get("skipped"):
            lines.append(
                f"{r['engine']:>8} {r['clients']:>9} "
                f"{'skipped (' + r['skipped'] + ')':>39}"
            )
            continue
        lines.append(
            f"{r['engine']:>8} {r['clients']:>9} {r['wall_s']:>8.2f} "
            f"{r['clients_per_sec']:>12.0f} {r['ticks_per_sec']:>8.1f} "
            f"{r['peak_rss_kb'] / 1024:>8.0f}"
        )
    lines.append(
        f"vector speedup at {SCALAR_SIZE} clients: {speedup:.1f}x; "
        f"headline {headline['clients_per_sec']:.0f} clients/s "
        f"at {headline['clients']} clients"
    )
    lines.append(
        f"observability overhead at {SCALAR_SIZE} clients: "
        f"{observability['plain_wall_s']:.2f}s plain -> "
        f"{observability['observed_wall_s']:.2f}s observed "
        f"({observability['overhead_ratio']:.2f}x, "
        f"{observability['traces']} traces / "
        f"{observability['spans']} spans)"
    )
    record_table("bench_scale", lines, data=entry)
