"""Section 2.1: spatial variation across nine campus buildings.

"We computed the Hamming distance ... across all pairwise buildings.
Our results showed that the median number of channels available at one
point but unavailable at another is close to 7."
"""

from __future__ import annotations

from statistics import median

from repro.analysis.hamming import pairwise_hamming_matrix, upper_triangle
from repro.spectrum.variation import generate_building_campaign


def building_hamming_medians(num_campaigns: int = 10) -> list[float]:
    """Median pairwise Hamming distance for several synthetic campuses."""
    medians = []
    for seed in range(num_campaigns):
        campaign = generate_building_campaign(seed=seed)
        matrix = pairwise_hamming_matrix(list(campaign.buildings))
        medians.append(median(upper_triangle(matrix)))
    return medians


def test_sec21_building_hamming(benchmark, record_table):
    medians = benchmark.pedantic(
        building_hamming_medians, rounds=1, iterations=1
    )
    overall = median(medians)
    lines = [
        "Section 2.1: pairwise Hamming distance across 9 buildings",
        f"per-campaign medians: {[f'{m:.1f}' for m in medians]}",
        f"median of medians:    {overall:.1f}   (paper: ~7)",
    ]
    record_table("sec21_hamming", lines)
    assert 5.0 <= overall <= 9.0
