"""Section 2.3: data transmissions audibly corrupt wireless microphones.

"we sent 70-byte packets every 100 ms on the same UHF channel as the
mic ... The Mean Opinion Score (MOS) of the received audio, computed
using Perceptual Evaluation of Speech Quality (PESQ), decreased by 0.9
during the UHF packet transmissions.  ... a MOS reduction of only 0.1
is noticeable by the human ear."
"""

from __future__ import annotations

from repro.audio.interference import PacketBurstSchedule
from repro.audio.mic import FmMicrophoneLink
from repro.audio.pesq import mos_score
from repro.audio.speech import synthesize_speech


def mic_interference_experiment(duration_s: float = 4.0) -> dict[str, float]:
    """Clean vs interfered MOS for the paper's packet workload."""
    audio = synthesize_speech(duration_s, seed=1)
    link = FmMicrophoneLink(seed=2)
    clean = link.transmit(audio)
    rf_len = len(audio) * link.oversample
    schedule = PacketBurstSchedule(period_ms=100.0, packet_bytes=70, seed=3)
    interfered = link.transmit(audio, schedule.render(rf_len, link.rf_fs))
    clean_mos = mos_score(audio, clean, link.audio_fs)
    interfered_mos = mos_score(audio, interfered, link.audio_fs)
    return {
        "clean_mos": clean_mos,
        "interfered_mos": interfered_mos,
        "delta": clean_mos - interfered_mos,
    }


def test_sec23_mic_mos(benchmark, record_table):
    result = benchmark.pedantic(
        mic_interference_experiment, rounds=1, iterations=1
    )
    lines = [
        "Section 2.3: MOS of mic audio under 70 B / 100 ms UHF packets",
        f"MOS clean link:      {result['clean_mos']:.2f}",
        f"MOS with packets:    {result['interfered_mos']:.2f}",
        f"MOS drop:            {result['delta']:.2f}   (paper: ~0.9; >=0.1 audible)",
    ]
    record_table("sec23_mic_mos", lines)
    assert result["delta"] >= 0.5
    assert result["delta"] >= 0.1  # audible by the paper's criterion
