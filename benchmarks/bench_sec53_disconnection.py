"""Section 5.3: handling disconnections.

"We setup a client and an AP and started a data transfer between them.
Then we switched on a wireless microphone near the client.  This causes
the client to disconnect, and it starts chirping on the backup channel.
In our experimental setup, the AP switched to the backup channel once
every 3 seconds, and picks up the chirp in at most 3 seconds.
Immediately, the AP uses the spectrum assignment algorithm to determine
the best available channel ... the system is operational again after a
lag of at most 4 seconds."
"""

from __future__ import annotations

from repro import constants
from repro.core.network import WhiteFiBss
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.spectrum.incumbents import (
    IncumbentField,
    TvStation,
    WirelessMicrophone,
)
from repro.spectrum.spectrum_map import SpectrumMap

BASE_MAP = SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)
RUNS = 5


def _one_episode(seed: int, mic_onset_us: float) -> dict[str, float]:
    engine = Engine()
    medium = Medium(engine, 30)
    incumbents = IncumbentField(
        30, tv_stations=[TvStation(i) for i in BASE_MAP.occupied_indices()]
    )
    mic = WirelessMicrophone(7)  # lands inside the 20 MHz main channel
    mic.add_session(mic_onset_us, 1e12)
    incumbents.add_microphone(mic)
    bss = WhiteFiBss(
        engine, medium, incumbents, BASE_MAP, [BASE_MAP], seed=seed
    )
    bss.start()
    engine.run_until(mic_onset_us + 12_000_000.0)
    assert bss.disconnections, "mic never triggered a disconnection"
    episode = bss.disconnections[0]
    assert episode.reconnected_us is not None, "BSS never reconnected"
    return {
        "detect_s": (episode.vacated_us - episode.mic_onset_us) / 1e6,
        "chirp_pickup_s": (episode.chirp_heard_us - episode.mic_onset_us) / 1e6,
        "recovery_s": episode.recovery_time_us / 1e6,
        "new_channel": str(episode.new_channel),
    }


def disconnection_experiment() -> list[dict[str, float]]:
    """Run several disconnection episodes with varied mic onsets."""
    return [
        _one_episode(seed=seed, mic_onset_us=4_000_000.0 + 700_000.0 * seed)
        for seed in range(RUNS)
    ]


def test_sec53_disconnection(benchmark, record_table):
    episodes = benchmark.pedantic(
        disconnection_experiment, rounds=1, iterations=1
    )

    lines = ["Section 5.3: disconnection handling (mic on main channel)"]
    lines.append(
        f"{'run':>4} | {'detect s':>8} | {'chirp s':>8} | {'recover s':>9} | new channel"
    )
    for i, episode in enumerate(episodes):
        lines.append(
            f"{i:>4} | {episode['detect_s']:8.2f} | "
            f"{episode['chirp_pickup_s']:8.2f} | {episode['recovery_s']:9.2f} | "
            f"{episode['new_channel']}"
        )
    worst = max(e["recovery_s"] for e in episodes)
    lines.append(
        f"worst recovery: {worst:.2f} s "
        f"(paper: chirp pickup <= 3 s, operational <= 4 s)"
    )
    record_table("sec53_disconnection", lines)

    for episode in episodes:
        # Chirp picked up within the 3 s backup-scan period (+ detection).
        assert episode["chirp_pickup_s"] <= 3.5
        # System operational within the paper's 4 s budget.
        assert episode["recovery_s"] <= constants.RECONNECT_BUDGET_US / 1e6
