"""Section 5.3: handling disconnections.

"We setup a client and an AP and started a data transfer between them.
Then we switched on a wireless microphone near the client.  This causes
the client to disconnect, and it starts chirping on the backup channel.
In our experimental setup, the AP switched to the backup channel once
every 3 seconds, and picks up the chirp in at most 3 seconds.
Immediately, the AP uses the spectrum assignment algorithm to determine
the best available channel ... the system is operational again after a
lag of at most 4 seconds."

Each episode is a declarative protocol-kind ``ExperimentSpec``; the
grid of (seed, mic onset) runs through ``ParallelRunner``.
"""

from __future__ import annotations

from repro import constants
from repro.experiments import (
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
)

from _runner import bench_runner

FREE = (5, 6, 7, 8, 9, 12, 13, 14, 18, 27)
RUNS = 5


def _episode_spec(seed: int, mic_onset_us: float) -> ExperimentSpec:
    scenario = ScenarioSpec(
        free_indices=FREE,
        num_channels=30,
        num_clients=1,
        # Lands inside the 20 MHz main channel, and stays on.
        mics=(MicSpec(7, sessions=((mic_onset_us, 1e12),)),),
        seed=seed,
    )
    return ExperimentSpec(
        scenario, kind="protocol", run_until_us=mic_onset_us + 12_000_000.0
    )


def disconnection_experiment() -> list[dict[str, float]]:
    """Run several disconnection episodes with varied mic onsets."""
    specs = [
        _episode_spec(seed=seed, mic_onset_us=4_000_000.0 + 700_000.0 * seed)
        for seed in range(RUNS)
    ]
    episodes = []
    for result in bench_runner().run_grid(specs):
        assert result.disconnections, "mic never triggered a disconnection"
        episode = result.disconnections[0]
        assert episode.reconnected_us is not None, "BSS never reconnected"
        center, width = episode.new_channel
        episodes.append(
            {
                "detect_s": (episode.vacated_us - episode.mic_onset_us) / 1e6,
                "chirp_pickup_s": (episode.chirp_heard_us - episode.mic_onset_us)
                / 1e6,
                "recovery_s": episode.recovery_time_us / 1e6,
                "new_channel": f"(F=ch{center}, W={width:g}MHz)",
            }
        )
    return episodes


def test_sec53_disconnection(benchmark, record_table):
    episodes = benchmark.pedantic(
        disconnection_experiment, rounds=1, iterations=1
    )

    lines = ["Section 5.3: disconnection handling (mic on main channel)"]
    lines.append(
        f"{'run':>4} | {'detect s':>8} | {'chirp s':>8} | {'recover s':>9} | new channel"
    )
    for i, episode in enumerate(episodes):
        lines.append(
            f"{i:>4} | {episode['detect_s']:8.2f} | "
            f"{episode['chirp_pickup_s']:8.2f} | {episode['recovery_s']:9.2f} | "
            f"{episode['new_channel']}"
        )
    worst = max(e["recovery_s"] for e in episodes)
    lines.append(
        f"worst recovery: {worst:.2f} s "
        f"(paper: chirp pickup <= 3 s, operational <= 4 s)"
    )
    record_table(
        "sec53_disconnection", lines, data={"episodes": episodes}
    )

    for episode in episodes:
        # Chirp picked up within the 3 s backup-scan period (+ detection).
        assert episode["chirp_pickup_s"] <= 3.5
        # System operational within the paper's 4 s budget.
        assert episode["recovery_s"] <= constants.RECONNECT_BUDGET_US / 1e6
