"""Table 1: SIFT's packet detection rate.

"the median number of packets detected by SIFT divided by the total
sent by the wireless card ... measured across different widths when
varying the traffic intensity from 125 Kbps to 1 Mbps."

Paper values: every cell between 0.97 and 1.00, with 5 MHz slightly
below the other widths (the reduced-amplitude leading edge of 5 MHz
frames occasionally spoils the packet-length match).

Each (width, rate, run) cell is a declarative ``kind="sift"``
``ExperimentSpec`` fanned out by ``ParallelRunner``: the capture is
synthesized from the scenario seed, SIFT scans it, and the probes
report detection and width-confusion metrics.
"""

from __future__ import annotations

from statistics import median

from repro.experiments import ExperimentSpec, ScenarioSpec
from repro.sim.rng import stream_seed

from _runner import bench_runner

RATES_MBPS = (0.125, 0.25, 0.5, 0.75, 1.0)
WIDTHS = (5.0, 10.0, 20.0)
RUNS = 5


def _spec(width: float, rate: float, run: int) -> ExperimentSpec:
    # The sift kind synthesizes its own bench capture; the spectrum map
    # is unused, so the scenario carries only the seed.
    return ExperimentSpec(
        ScenarioSpec(
            free_indices=(),
            num_channels=30,
            seed=stream_seed("table1", width, rate, run),
        ),
        kind="sift",
        sift_width_mhz=width,
        sift_rate_mbps=rate,
    )


def detection_rate_table() -> dict[float, dict[float, float]]:
    """Median detection rate per (width, rate)."""
    jobs = [
        _spec(width, rate, run)
        for width in WIDTHS
        for rate in RATES_MBPS
        for run in range(RUNS)
    ]
    results = iter(bench_runner().run_grid(jobs))

    table: dict[float, dict[float, float]] = {}
    for width in WIDTHS:
        table[width] = {}
        for rate in RATES_MBPS:
            rates = [next(results).metric("detection_rate") for _ in range(RUNS)]
            table[width][rate] = median(rates)
    return table


def test_table1_sift_detection(benchmark, record_table):
    table = benchmark.pedantic(detection_rate_table, rounds=1, iterations=1)

    lines = ["Table 1: SIFT packet detection rate (median over runs)"]
    header = f"{'width':>8} | " + " | ".join(f"{r:g}M".rjust(6) for r in RATES_MBPS)
    lines.append(header)
    for width in WIDTHS:
        row = " | ".join(f"{table[width][r]:6.2f}" for r in RATES_MBPS)
        lines.append(f"{width:>6g}MHz | {row}")
    lines.append("paper: all cells in [0.97, 1.00]; 5 MHz slightly worst")
    record_table(
        "table1_sift_detection",
        lines,
        data={
            "median_detection_rate": {
                f"{width:g}": {f"{rate:g}": table[width][rate] for rate in RATES_MBPS}
                for width in WIDTHS
            }
        },
    )

    for width in WIDTHS:
        for rate in RATES_MBPS:
            assert table[width][rate] >= 0.93, (width, rate)
    mean_5 = sum(table[5.0].values()) / len(RATES_MBPS)
    mean_20 = sum(table[20.0].values()) / len(RATES_MBPS)
    assert mean_5 <= mean_20 + 0.005  # 5 MHz no better than 20 MHz
