"""Record -> replay determinism smoke for ``repro.traces``.

Records one querystorm run to a trace, feeds the trace back through
the frontend as a :class:`~repro.traces.replay.TraceWorkload`, and
asserts the two contracts the trace subsystem exists for:

* the replayed run's report equals the source run's report, and
* the re-recorded replay trace is **byte-identical** to the source
  trace (the canonical stream order + zeroed-gzip-mtime writer at
  work).

The source and replay traces are left under ``benchmarks/results/``
(``trace_replay[-smoke].source.jsonl.gz`` / ``.replay.jsonl.gz``) so
the ``make trace-diff`` target — and the bench-smoke CI job — can
re-verify the bit-identity with the standalone diff tool.  A columnar
conversion of the source trace rides along as the third artifact,
exercising the ``.npz`` export path end to end.

Under ``WHITEFI_BENCH_SMOKE`` the run shrinks to a driver-rot check;
at full scale the storm is dense enough that the trace carries every
event kind the recorder hooks emit.
"""

from __future__ import annotations

import pathlib

from repro.traces.columnar import to_columnar
from repro.traces.record import TraceRecorder, read_trace
from repro.traces.replay import TraceWorkload
from repro.wsdb.cluster import ShardRouter, simulate_querystorm
from repro.wsdb.model import generate_metro

from _runner import smoke_mode

SMOKE = smoke_mode()
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
STEM = "trace_replay-smoke" if SMOKE else "trace_replay"

SEED = 11
FREE_INDICES = tuple(range(12, 30))  # dial: channels 0-11 carry TV sites
EXTENT_M = 2_500.0
NUM_SHARDS = 4
NUM_APS = 6 if SMOKE else 12
NUM_CLIENTS = 8 if SMOKE else 30
MIC_EVENTS = 3 if SMOKE else 10
OFFERED_QPS = 40.0 if SMOKE else 100.0
DURATION_US = 30e6 if SMOKE else 160e6


def storm_router() -> ShardRouter:
    metro = generate_metro(
        FREE_INDICES, extent_m=EXTENT_M, seed=SEED, num_channels=30
    )
    return ShardRouter(metro, num_shards=NUM_SHARDS)


def run_storm(recorder=None, storm_source=None) -> dict:
    return simulate_querystorm(
        storm_router(),
        NUM_APS,
        num_clients=NUM_CLIENTS,
        duration_us=DURATION_US,
        seed=SEED,
        offered_qps=OFFERED_QPS,
        push=True,
        mic_events=MIC_EVENTS,
        recorder=recorder,
        storm_source=storm_source,
    )


def test_record_replay_roundtrip(record_table):
    source_path = RESULTS_DIR / f"{STEM}.source.jsonl.gz"
    replay_path = RESULTS_DIR / f"{STEM}.replay.jsonl.gz"
    npz_path = RESULTS_DIR / f"{STEM}.source.npz"

    # Meta is part of the written header, so the byte-identity check
    # requires both recordings to carry the same annotations.
    meta = {"bench": "trace_replay", "smoke": SMOKE}

    with TraceRecorder(source_path, meta=meta) as recorder:
        source_report = run_storm(recorder=recorder)

    workload = TraceWorkload.open(source_path)
    assert len(workload) == source_report["storm_queries"]

    with TraceRecorder(replay_path, meta=meta) as recorder:
        replay_report = run_storm(recorder=recorder, storm_source=workload)

    assert replay_report == source_report, "replay diverged from source"
    assert replay_path.read_bytes() == source_path.read_bytes(), (
        "re-recorded replay trace is not byte-identical to its source"
    )

    stats = to_columnar(source_path, npz_path)
    _, events = read_trace(source_path)

    lines = [
        f"{'metric':>24} {'value':>14}",
        f"{'storm queries':>24} {source_report['storm_queries']:>14}",
        f"{'trace events':>24} {len(events):>14}",
        f"{'trace bytes':>24} {source_path.stat().st_size:>14}",
        f"{'columnar bytes':>24} {npz_path.stat().st_size:>14}",
        f"{'replay == source':>24} {'yes':>14}",
    ]
    record_table(
        "trace_replay",
        lines,
        data={
            "smoke": SMOKE,
            "storm_queries": source_report["storm_queries"],
            "trace_events": len(events),
            "trace_bytes": source_path.stat().st_size,
            "columnar_bytes": npz_path.stat().st_size,
            "column_stats": stats,
        },
    )
