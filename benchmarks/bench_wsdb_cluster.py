"""Cluster wsdb sweep: shards x offered load, plus push and shed A/Bs.

The service-tier benchmark behind ``repro.wsdb.cluster``: a shards x
offered-qps grid of declarative ``ExperimentSpec`` cells (kind
"querystorm") fanned out by ``ParallelRunner`` — byte-identical under
the sequential fallback — followed by two deterministic A/B footers
run through the driver directly.

Asserted headlines (the issue's acceptance gates):

* **Sharding prunes.**  At a fixed deployment, the aggregate
  ``candidates_scanned / queries`` ratio strictly decreases as the
  shard count grows: each shard indexes only its territory's incumbent
  subset at a ``sqrt(K)``-finer granularity, so a routed query scans
  fewer candidates than the monolith would.
* **Push closes the violation window.**  On a dense roaming storm
  (slow clients, many mid-session mic registrations), runs with
  ``storm_push=True`` accrue strictly less total ground-truth
  violation time than pull-only runs of the same seeds: notified
  clients vacate the tick a zone appears instead of riding a stale
  response to the next FCC re-check trigger.

A third footer exercises the admission path: a rate-limited frontend
under storm starvation sheds most requests, and the ``serve-stale``
policy converts nearly all of those refusals into (stale) answers —
the availability/staleness trade the shed-policy plug point exists
for.  Under ``WHITEFI_BENCH_SMOKE`` the sweep shrinks to a driver-rot
check and the paper-scale push assertion is skipped.
"""

from __future__ import annotations

from repro.experiments import ExperimentSpec, ScenarioSpec, summarize
from repro.sim.rng import stream_seed
from repro.wsdb.cluster import ShardRouter, simulate_querystorm
from repro.wsdb.model import generate_metro

from _runner import bench_runner, smoke_mode

SMOKE = smoke_mode()
SHARD_COUNTS = (1, 4) if SMOKE else (1, 4, 16)
OFFERED_QPS = (50.0,) if SMOKE else (100.0, 400.0)
SEEDS_PER_CELL = 1 if SMOKE else 2
NUM_APS = 5 if SMOKE else 12
NUM_CLIENTS = 8 if SMOKE else 20
MIC_EVENTS = 1 if SMOKE else 4
DURATION_US = 60e6 if SMOKE else 300e6
FREE_INDICES = tuple(range(12, 30))  # dial: channels 0-11 carry TV sites

# The dense push A/B: a walkable 2.5 km core where mic protection
# zones cover real fractions of the plane and slow clients ride stale
# responses long enough for the pull model's violation window to show.
AB_CLIENTS = 10 if SMOKE else 80
AB_MIC_EVENTS = 4 if SMOKE else 16
AB_DURATION_US = 60e6 if SMOKE else 300e6
AB_EXTENT_KM = 2.5
AB_SPEED_MPS = 6.0
AB_SEEDS = (2009,) if SMOKE else (2009, 2010)


def storm_spec(
    seed: int,
    shards: int,
    qps: float,
    push: bool = False,
    dense: bool = False,
) -> ExperimentSpec:
    """One declarative querystorm cell."""
    scenario = ScenarioSpec(
        free_indices=FREE_INDICES,
        num_channels=30,
        duration_us=AB_DURATION_US if dense else DURATION_US,
        seed=seed,
    )
    return ExperimentSpec(
        scenario,
        kind="querystorm",
        citywide_aps=10 if dense else NUM_APS,
        roaming_clients=AB_CLIENTS if dense else NUM_CLIENTS,
        citywide_extent_km=AB_EXTENT_KM if dense else None,
        citywide_mic_events=AB_MIC_EVENTS if dense else MIC_EVENTS,
        roaming_speed_mps=AB_SPEED_MPS if dense else None,
        storm_shards=shards,
        storm_offered_qps=qps,
        storm_push=push,
    )


def cluster_table(
    seed: int = 2009,
) -> dict[int, dict[float, dict[str, float]]]:
    """Sweep shards x offered load; mean metrics per cell across seeds."""
    jobs: list[ExperimentSpec] = []
    for shards in SHARD_COUNTS:
        for qps in OFFERED_QPS:
            spec = storm_spec(seed, shards, qps)
            jobs.extend(
                spec.with_seed(seed + run) for run in range(SEEDS_PER_CELL)
            )
    results = bench_runner().run_grid(jobs)

    table: dict[int, dict[float, dict[str, float]]] = {}
    cursor = 0
    for shards in SHARD_COUNTS:
        table[shards] = {}
        for qps in OFFERED_QPS:
            cell = results[cursor : cursor + SEEDS_PER_CELL]
            cursor += SEEDS_PER_CELL
            table[shards][qps] = {
                metric: summarize(cell, metric=metric).mean
                for metric in (
                    "storm_queries",
                    "db_queries",
                    "db_candidates_per_query",
                    "db_hit_rate",
                    "frontend_requests",
                    "frontend_coalesced",
                    "frontend_shard_batches",
                    "violation_free_fraction",
                )
            }
    return table


def push_ab() -> dict[str, float]:
    """The violation-window A/B: pull-only vs push on a dense storm."""
    jobs = [
        storm_spec(seed, shards=4, qps=200.0, push=push, dense=True)
        for push in (False, True)
        for seed in AB_SEEDS
    ]
    results = bench_runner().run_grid(jobs)
    half = len(AB_SEEDS)
    pull, push = results[:half], results[half:]
    return {
        "pull_violation_us": sum(r.metric("violation_us") for r in pull),
        "push_violation_us": sum(r.metric("violation_us") for r in push),
        "push_refreshes": sum(r.metric("push_refreshes") for r in push),
        "push_notifications": sum(r.metric("push_notifications") for r in push),
    }


def shed_ab(seed: int = 2009) -> dict[str, dict[str, float]]:
    """Admission under starvation: reject vs serve-stale shedding.

    Run directly (not via ``ParallelRunner``): one deterministic
    comparison whose only job is the footer row — a 400 qps storm
    against a 150 qps token bucket, so ~2/3 of requests are shed and
    the policies differ only in what the shed requester hears.
    """
    reports = {}
    for policy in ("reject", "serve-stale"):
        metro = generate_metro(
            range(12),
            extent_m=AB_EXTENT_KM * 1_000.0,
            seed=stream_seed(seed, "cluster-shed-ab"),
            num_channels=30,
        )
        report = simulate_querystorm(
            ShardRouter(metro, num_shards=4),
            num_aps=10,
            num_clients=NUM_CLIENTS,
            duration_us=DURATION_US,
            seed=seed,
            offered_qps=400.0,
            mic_events=MIC_EVENTS,
            speed_mps=AB_SPEED_MPS,
            rate_limit_qps=150.0,
            policy=policy,
        )
        reports[policy] = {
            "requests": report["frontend"]["requests"],
            "shed": report["frontend"]["shed"],
            "served_stale": report["frontend"]["served_stale"],
            "shed_rate": report["frontend"]["shed_rate"],
            "deferred_requeries": report["deferred_requeries"],
        }
    return reports


def test_wsdb_cluster_sweep(benchmark, record_table):
    def run():
        return cluster_table(), push_ab(), shed_ab()

    results, ab, shed = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Cluster wsdb sweep: sharded service tier under a query storm,"
        f" {NUM_APS} APs, {NUM_CLIENTS} clients, {SEEDS_PER_CELL} seeds"
        + (" [SMOKE]" if SMOKE else ""),
        f"{'shards':>6} | {'qps':>5} | {'storm q':>8} | {'cand/q':>7} | "
        f"{'hit rate':>8} | {'coalesced':>9} | {'batches':>7}",
    ]
    for shards in SHARD_COUNTS:
        for qps in OFFERED_QPS:
            row = results[shards][qps]
            lines.append(
                f"{shards:>6} | {qps:>5.0f} | {row['storm_queries']:8.0f} | "
                f"{row['db_candidates_per_query']:7.2f} | "
                f"{row['db_hit_rate']:8.2f} | "
                f"{row['frontend_coalesced']:9.0f} | "
                f"{row['frontend_shard_batches']:7.0f}"
            )
    lines.append(
        f"push vs pull on a dense roaming storm ({AB_CLIENTS} clients, "
        f"{AB_MIC_EVENTS} mic events, {len(AB_SEEDS)} seeds): violation "
        f"time {ab['push_violation_us'] / 1e6:.0f} s vs "
        f"{ab['pull_violation_us'] / 1e6:.0f} s "
        f"({ab['push_refreshes']:.0f} push refreshes)"
    )
    lines.append(
        "shed policies under a 400 qps storm vs a 150 qps bucket: "
        f"reject shed {shed['reject']['shed']:.0f} "
        f"(rate {shed['reject']['shed_rate']:.2f}, "
        f"{shed['reject']['deferred_requeries']:.0f} deferred re-checks); "
        f"serve-stale answered {shed['serve-stale']['served_stale']:.0f} "
        f"of {shed['serve-stale']['shed']:.0f} shed stale"
    )
    record_table(
        "wsdb_cluster",
        lines,
        data={"cells": results, "push_ab": ab, "shed_ab": shed},
    )

    for shards in SHARD_COUNTS:
        for qps in OFFERED_QPS:
            row = results[shards][qps]
            # Driver-rot checks (smoke included): honest accounting.
            assert row["storm_queries"] > 0
            assert row["frontend_requests"] >= row["storm_queries"]
            assert 0.0 <= row["violation_free_fraction"] <= 1.0

    # Acceptance gate (a): sharding reduces the candidates a query
    # scans — strictly, at every offered load, at fixed deployment.
    for qps in OFFERED_QPS:
        per_shards = [
            results[shards][qps]["db_candidates_per_query"]
            for shards in SHARD_COUNTS
        ]
        assert all(
            later < earlier
            for earlier, later in zip(per_shards, per_shards[1:])
        ), f"candidates/query not decreasing with shards at {qps} qps: {per_shards}"

    # Shed-policy gate: starvation sheds under both policies, and
    # serve-stale converts shed requests into (stale) answers while
    # reject leaves clients deferring re-checks.
    assert shed["reject"]["shed"] > 0
    assert shed["reject"]["served_stale"] == 0
    assert shed["serve-stale"]["served_stale"] > 0
    assert (
        shed["serve-stale"]["deferred_requeries"]
        < shed["reject"]["deferred_requeries"]
    )

    # The push A/B runs at smoke scale too (driver rot), but the
    # violation-window physics need the dense paper-scale session.
    assert ab["push_violation_us"] <= ab["pull_violation_us"]
    if SMOKE:
        return
    # Acceptance gate (b): push strictly shrinks ground-truth
    # violation exposure vs the pull-only re-check rule.
    assert ab["push_violation_us"] < ab["pull_violation_us"]
    assert ab["push_refreshes"] > 0

    # Storm bursts revisit cells within a TTL window, so the response
    # cache must be earning hits at every scale of the sweep.
    for shards in SHARD_COUNTS:
        for qps in OFFERED_QPS:
            assert results[shards][qps]["db_hit_rate"] > 0.0
