"""Shared benchmark fixtures: result-table recording.

Every benchmark regenerates one of the paper's tables or figures and
writes the rows to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``).  ``EXPERIMENTS.md`` summarises the
paper-vs-measured comparison from these files.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Write a named result table to benchmarks/results/ and stdout."""

    def _record(name: str, lines: list[str]) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text)
        print(f"\n=== {name} ===")
        print(text)
        return path

    return _record
