"""Shared benchmark fixtures: result-table recording.

Every benchmark regenerates one of the paper's tables or figures and
writes the rows to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``) plus a machine-readable
``benchmarks/results/<name>.json`` so the accuracy/perf trajectory can
be tracked across PRs.  ``EXPERIMENTS.md`` summarises the
paper-vs-measured comparison from these files.

Everything under ``benchmarks/`` is marked ``slow``; deselect with
``-m "not slow"``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    # This hook sees the whole session's items in mixed invocations
    # (e.g. `pytest tests benchmarks`); only mark our own.
    benchmarks_dir = pathlib.Path(__file__).parent
    for item in items:
        if benchmarks_dir in pathlib.Path(item.fspath).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def record_table():
    """Write a named result table to benchmarks/results/ and stdout.

    Args (of the returned recorder):
        name: table name (file stem).
        lines: human-readable table rows.
        data: optional JSON-serializable structure with the raw numbers;
            recorded alongside the text so downstream tooling does not
            have to parse the table.
    """

    def _record(
        name: str, lines: list[str], data: Any | None = None
    ) -> pathlib.Path:
        # Smoke runs (`make bench-smoke`) record under their own stem:
        # they must never clobber the checked-in paper-scale tables.
        if os.environ.get("WHITEFI_BENCH_SMOKE", "") not in ("", "0"):
            name = f"{name}-smoke"
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        text = "\n".join(lines) + "\n"
        path.write_text(text)
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(
            json.dumps({"name": name, "lines": lines, "data": data}, indent=2)
            + "\n"
        )
        print(f"\n=== {name} ===")
        print(text)
        return path

    return _record
