#!/usr/bin/env python3
"""AP discovery race: non-SIFT baseline vs L-SIFT vs J-SIFT.

Hides a beaconing AP at a seed-chosen (F, W) in a fragmented spectrum
and times each discovery algorithm (Section 4.2.2 / Figures 8-9) —
declaratively: each racer is a ``kind="discovery"`` ``ExperimentSpec``,
all three fan out through ``ParallelRunner``, and the same scenario
seed guarantees they chase the same hidden AP.

Run:
    python examples/ap_discovery.py [seed]
"""

import sys

from repro.core.discovery import (
    DISCOVERY_ALGORITHMS,
    expected_scans_jsift,
    expected_scans_lsift,
)
from repro.experiments import ExperimentSpec, ParallelRunner, ScenarioSpec
from repro.spectrum.channels import valid_channels


def main(seed: int = 42) -> None:
    # A realistic fragmented map: 14 free channels across 4 fragments.
    free = tuple(range(3, 9)) + tuple(range(12, 16)) + (20, 21, 25, 28)
    scenario = ScenarioSpec(free_indices=free, num_channels=30, seed=seed)
    candidates = valid_channels(free, 30)
    print(f"spectrum: {len(free)} free channels, "
          f"{len(candidates)} candidate (F, W) combinations")
    print(f"analytic expectations: L-SIFT ~{expected_scans_lsift(len(free)):.1f} "
          f"scans, J-SIFT ~{expected_scans_jsift(len(free)):.1f} scans")
    print()

    algorithms = sorted(DISCOVERY_ALGORITHMS)
    specs = [
        ExperimentSpec(scenario, kind="discovery", discovery_algorithm=name)
        for name in algorithms
    ]
    results = ParallelRunner().run_grid(specs)

    print(f"hidden AP is on {tuple(results[0].metric('ap_channel'))}")
    for name, result in zip(algorithms, results):
        found = result.metric("discovered_channel")
        status = f"found {tuple(found)}" if found else "FAILED"
        print(
            f"{name:>9}: {status:22} in {result.metric('discovery_us') / 1e6:5.2f} s "
            f"({result.metric('sift_scans')} SIFT scans, "
            f"{result.metric('beacon_dwells')} dwells)"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
