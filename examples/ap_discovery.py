#!/usr/bin/env python3
"""AP discovery race: non-SIFT baseline vs L-SIFT vs J-SIFT.

Places a beaconing AP at a random (F, W) in a fragmented spectrum and
times each discovery algorithm (Section 4.2.2 / Figures 8-9).

Run:
    python examples/ap_discovery.py [seed]
"""

import sys

import numpy as np

from repro.core.discovery import (
    BaselineDiscovery,
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
    expected_scans_jsift,
    expected_scans_lsift,
)
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio import Scanner, Transceiver
from repro.spectrum.channels import valid_channels
from repro.spectrum.spectrum_map import SpectrumMap


def main(seed: int = 42) -> None:
    rng = np.random.default_rng(seed)

    # A realistic fragmented map: 14 free channels across 4 fragments.
    free = list(range(3, 9)) + list(range(12, 16)) + [20, 21, 25, 28]
    client_map = SpectrumMap.from_free(free, 30)
    candidates = valid_channels(free, 30)
    ap_channel = candidates[int(rng.integers(len(candidates)))]
    print(f"spectrum: {client_map.num_free()} free channels, "
          f"{len(candidates)} candidate (F, W) combinations")
    print(f"hidden AP is on {ap_channel}")
    print(f"analytic expectations: L-SIFT ~{expected_scans_lsift(len(free)):.1f} "
          f"scans, J-SIFT ~{expected_scans_jsift(len(free)):.1f} scans")
    print()

    for algorithm in (BaselineDiscovery(), LSiftDiscovery(), JSiftDiscovery()):
        env = RfEnvironment(seed=seed)
        env.add_transmitter(
            BeaconingAp(ap_channel, phase_us=float(rng.uniform(0, 100_000)))
        )
        session = DiscoverySession(
            Scanner(env),
            Transceiver(env, rng=np.random.default_rng(seed)),
            client_map,
        )
        outcome = algorithm.discover(session)
        status = "found " + str(outcome.channel) if outcome.succeeded else "FAILED"
        print(
            f"{algorithm.name:>9}: {status:28} in {outcome.elapsed_us / 1e6:5.2f} s "
            f"({outcome.sift_scans} SIFT scans, {outcome.beacon_dwells} dwells)"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
