#!/usr/bin/env python3
"""Citywide wsdb walkthrough: query, cache, invalidate, re-assign.

Builds a suburban metro with TV transmitter sites, stands up the
geolocation database, assigns channels to a handful of APs off database
responses, then registers a wireless microphone *on top of* one AP
mid-session — watch the database invalidate the cached responses inside
the protection zone and the covered AP walk its backup channels to a
new home.

Run:
    python examples/citywide_wsdb.py
"""

from repro.wsdb import MicRegistration, WhiteSpaceDatabase, generate_metro_for_setting
from repro.wsdb.citywide import CityAp, assign_ap


def fmt(channel) -> str:
    return "-" if channel is None else str(channel)


def main() -> None:
    # 1. A metro plane whose dial follows the paper's suburban setting.
    metro = generate_metro_for_setting("suburban", seed=7)
    print(f"metro: {len(metro.sites)} TV sites on dial {metro.dial()}")

    db = WhiteSpaceDatabase(metro)

    # 2. Five APs across the plane, assigned off database responses.
    positions = [(3e3, 3e3), (3.05e3, 3.08e3), (10e3, 10e3), (17e3, 4e3), (6e3, 16e3)]
    aps = [CityAp(i, x, y) for i, (x, y) in enumerate(positions)]
    for ap in aps:
        assign_ap(ap, db, aps, t_us=0.0)
        print(
            f"  ap{ap.ap_id} at ({ap.x_m / 1e3:4.1f}, {ap.y_m / 1e3:4.1f}) km"
            f" -> {fmt(ap.channel)}  backups: "
            + ", ".join(fmt(b) for b in ap.backups)
        )
    stats = db.stats
    print(
        f"boot: {stats.queries} queries, {stats.cache_hits} cache hits "
        f"(ap1 sits in ap0's 100 m cache square)"
    )

    # 3. A venue registers a wireless microphone on ap0's channel,
    #    right at ap0's coordinates, from t=30 s to minute 6.  The
    #    session overlaps the boot responses' TTL bucket, so the
    #    time-aware invalidation drops them (a session starting after
    #    the bucket ends would — correctly — leave them alone).
    victim = aps[0]
    mic_channel = victim.channel.center_index
    dropped = db.register_mic(
        MicRegistration.single_session(
            mic_channel, victim.x_m, victim.y_m, 30e6, 360e6
        )
    )
    print(
        f"\nmic registers on ch{mic_channel} at ap0's venue: "
        f"{dropped} cached responses invalidated "
        f"(total invalidations: {db.stats.invalidations})"
    )

    # 4. The covered AP re-checks the database and moves: its old span
    #    is denied, its ranked backups are validated against a fresh
    #    response.
    free = set(db.channels_at(victim.x_m, victim.y_m, t_us=60e6))
    print(f"  fresh response at ap0 excludes ch{mic_channel}: {mic_channel not in free}")
    old = victim.channel
    backup = next(
        (b for b in victim.backups if all(i in free for i in b.spanned_indices)),
        None,
    )
    if backup is not None:
        victim.channel = backup
        print(f"  ap0 recovers via backup: {fmt(old)} -> {fmt(backup)}")
    else:
        assign_ap(victim, db, aps, t_us=60e6)
        print(f"  ap0 re-assigns via MCham: {fmt(old)} -> {fmt(victim.channel)}")

    # 5. After the session ends the channel is clean again.
    late = set(db.channels_at(victim.x_m, victim.y_m, t_us=400e6))
    print(f"  mic session over at t=400 s: ch{mic_channel} free again: {mic_channel in late}")
    print(
        f"\ndatabase totals: {db.stats.queries} queries, "
        f"{db.stats.cache_hits} hits, {db.stats.cache_misses} misses, "
        f"{db.stats.invalidations} invalidations "
        f"(hit rate {db.stats.hit_rate:.0%})"
    )


if __name__ == "__main__":
    main()
