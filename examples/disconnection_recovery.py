#!/usr/bin/env python3
"""Wireless microphone interruption and chirp-based recovery.

Runs a full WhiteFi BSS (beacons, reports, adaptive assignment), turns
a wireless microphone on under the operating channel mid-transfer, and
traces the Section 4.3 disconnection protocol: vacate, chirp on the
backup channel, AP pickup within the 3 s scan period, reassignment,
reconnection.

Run:
    python examples/disconnection_recovery.py
"""

from repro.core.network import WhiteFiBss
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.spectrum.incumbents import (
    IncumbentField,
    TvStation,
    WirelessMicrophone,
)
from repro.spectrum.spectrum_map import SpectrumMap


def main() -> None:
    base_map = SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)
    engine = Engine()
    medium = Medium(engine, 30)

    incumbents = IncumbentField(
        30, tv_stations=[TvStation(i) for i in base_map.occupied_indices()]
    )
    mic = WirelessMicrophone(7)  # lands under the 20 MHz main channel
    mic.add_session(6_000_000.0, 40_000_000.0)
    incumbents.add_microphone(mic)

    bss = WhiteFiBss(engine, medium, incumbents, base_map, [base_map], seed=5)
    bss.start()
    print(f"boot: main={bss.ap_ctrl.state.main_channel} "
          f"backup={bss.ap_ctrl.state.backup_channel}")

    engine.run_until(20_000_000.0)

    client = bss.clients[0][1]
    print(f"t=20s: client received {client.delivered_bytes / 1e6:.2f} MB")
    print()
    for i, episode in enumerate(bss.disconnections):
        print(f"disconnection episode {i}:")
        print(f"  mic active on channel 7 at t={episode.mic_onset_us / 1e6:.2f}s")
        print(f"  vacated main channel at   t={episode.vacated_us / 1e6:.2f}s")
        print(f"  chirp heard by AP at      t={episode.chirp_heard_us / 1e6:.2f}s")
        print(f"  operational again at      t={episode.reconnected_us / 1e6:.2f}s "
              f"on {episode.new_channel}")
        print(f"  total outage: {episode.recovery_time_us / 1e6:.2f}s "
              f"(paper budget: 4 s)")


if __name__ == "__main__":
    main()
