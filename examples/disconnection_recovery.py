#!/usr/bin/env python3
"""Wireless microphone interruption and chirp-based recovery.

Declares a full WhiteFi BSS scenario (beacons, reports, adaptive
assignment) with a wireless microphone turning on under the operating
channel mid-transfer, and traces the Section 4.3 disconnection
protocol: vacate, chirp on the backup channel, AP pickup within the
3 s scan period, reassignment, reconnection.

Run:
    python examples/disconnection_recovery.py
"""

from repro.experiments import (
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
    run_experiment,
)


def main() -> None:
    scenario = ScenarioSpec(
        free_indices=(5, 6, 7, 8, 9, 12, 13, 14, 18, 27),
        num_channels=30,
        num_clients=1,
        # The mic lands under the 20 MHz main channel at t=6s.
        mics=(MicSpec(7, sessions=((6_000_000.0, 40_000_000.0),)),),
        seed=5,
    )
    result = run_experiment(
        ExperimentSpec(scenario, kind="protocol", run_until_us=20_000_000.0)
    )

    t0, center, width = result.channel_history[0]
    print(f"boot: main=(F=ch{center}, W={width:g}MHz)")
    horizon_s = result.duration_us / 1e6
    delivered_mb = result.aggregate_mbps * result.duration_us / 8e6
    print(
        f"t={horizon_s:.0f}s: BSS delivered {delivered_mb:.2f} MB "
        f"({result.aggregate_mbps:.2f} Mbps average)"
    )
    print()
    for i, episode in enumerate(result.disconnections):
        center, width = episode.new_channel
        print(f"disconnection episode {i}:")
        print(f"  mic active on channel 7 at t={episode.mic_onset_us / 1e6:.2f}s")
        print(f"  vacated main channel at   t={episode.vacated_us / 1e6:.2f}s")
        print(f"  chirp heard by AP at      t={episode.chirp_heard_us / 1e6:.2f}s")
        print(f"  operational again at      t={episode.reconnected_us / 1e6:.2f}s "
              f"on (F=ch{center}, W={width:g}MHz)")
        print(f"  total outage: {episode.recovery_time_us / 1e6:.2f}s "
              f"(paper budget: 4 s)")


if __name__ == "__main__":
    main()
