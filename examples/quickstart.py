#!/usr/bin/env python3
"""Quickstart: a WhiteFi network in sixty lines.

Declares a fragmented UHF spectrum with background traffic as a
``ScenarioSpec``, lets the WhiteFi spectrum-assignment loop pick and
adapt the BSS channel, and compares against the omniscient static
baselines — all through the declarative ``repro.experiments`` API.

Run:
    python examples/quickstart.py
"""

from repro.experiments import (
    BackgroundSpec,
    ExperimentSpec,
    ScenarioSpec,
    run_experiment,
)


def main() -> None:
    # TV channels 26-30, 33-35, 39 and 48 are free (the paper's
    # Building 5 testbed): fragments of 20, 10, and two 5 MHz.
    # Two background AP/client pairs chat away on the 20 MHz fragment.
    scenario = ScenarioSpec(
        free_indices=(5, 6, 7, 8, 9, 12, 13, 14, 18, 27),
        num_channels=30,
        num_clients=2,
        backgrounds=(
            BackgroundSpec(uhf_index=6, inter_packet_delay_us=8_000.0),
            BackgroundSpec(uhf_index=8, inter_packet_delay_us=8_000.0),
        ),
        duration_us=3_000_000.0,
        seed=7,
    )

    print("Running WhiteFi (adaptive MCham assignment)...")
    whitefi = run_experiment(ExperimentSpec(scenario, kind="whitefi"))
    print("  channel history:")
    for t_us, center, width in whitefi.channel_history:
        print(f"    t={t_us / 1e6:5.2f}s  (F=ch{center}, W={width:g}MHz)")
    print(f"  aggregate goodput: {whitefi.aggregate_mbps:.2f} Mbps")

    print("Running the static OPT baselines (probing every position)...")
    opt = run_experiment(
        ExperimentSpec(scenario, kind="opt", probe_duration_us=800_000.0)
    )
    for name in ("opt-5mhz", "opt-10mhz", "opt-20mhz"):
        result = opt.baseline(name)
        if result is None:
            print(f"  {name:>10}: (no valid position)")
        else:
            print(f"  {name:>10}: {result.aggregate_mbps:.2f} Mbps")
    print(f"  {'opt':>10}: {opt.aggregate_mbps:.2f} Mbps")

    if opt.aggregate_mbps > 0:
        ratio = whitefi.aggregate_mbps / opt.aggregate_mbps
        print(f"WhiteFi achieves {ratio:.0%} of the omniscient static OPT.")


if __name__ == "__main__":
    main()
