#!/usr/bin/env python3
"""Quickstart: a WhiteFi network in sixty lines.

Builds a fragmented UHF spectrum, drops in background traffic, and lets
the WhiteFi spectrum-assignment loop pick and adapt the BSS channel.
Compares against the omniscient static baselines.

Run:
    python examples/quickstart.py
"""

from repro.sim.runner import (
    BackgroundSpec,
    ScenarioConfig,
    run_opt_baselines,
    run_whitefi,
)
from repro.spectrum.spectrum_map import SpectrumMap


def main() -> None:
    # TV channels 26-30, 33-35, 39 and 48 are free (the paper's
    # Building 5 testbed): fragments of 20, 10, and two 5 MHz.
    spectrum = SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)

    # Two background AP/client pairs chat away on the 20 MHz fragment.
    config = ScenarioConfig(
        base_map=spectrum,
        num_clients=2,
        backgrounds=[
            BackgroundSpec(uhf_index=6, inter_packet_delay_us=8_000.0),
            BackgroundSpec(uhf_index=8, inter_packet_delay_us=8_000.0),
        ],
        duration_us=3_000_000.0,
        seed=7,
    )

    print("Running WhiteFi (adaptive MCham assignment)...")
    whitefi = run_whitefi(config)
    print(f"  channel history:")
    for t_us, channel in whitefi.channel_history:
        print(f"    t={t_us / 1e6:5.2f}s  {channel}")
    print(f"  aggregate goodput: {whitefi.aggregate_mbps:.2f} Mbps")

    print("Running the static OPT baselines (probing every position)...")
    baselines = run_opt_baselines(config, probe_duration_us=800_000.0)
    for name in ("opt-5mhz", "opt-10mhz", "opt-20mhz", "opt"):
        result = baselines[name]
        if result is None:
            print(f"  {name:>10}: (no valid position)")
        else:
            print(f"  {name:>10}: {result.aggregate_mbps:.2f} Mbps")

    opt = baselines["opt"]
    if opt is not None and opt.aggregate_mbps > 0:
        ratio = whitefi.aggregate_mbps / opt.aggregate_mbps
        print(f"WhiteFi achieves {ratio:.0%} of the omniscient static OPT.")


if __name__ == "__main__":
    main()
