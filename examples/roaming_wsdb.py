#!/usr/bin/env python3
"""Roaming wsdb walkthrough: move, re-check, hand off, vacate.

Builds a dense little metro, boots a citywide AP deployment off the
geolocation database, then sends mobile clients roaming across it under
the FCC 100 m re-check rule — each client re-queries the database only
when it crosses a quantization-square boundary or its response's TTL
expires, and the cell-granular response protocol serves everyone in a
square from one cached answer.  A mid-session microphone registration
shows a client vacating its channel as its path enters the protection
zone.

Run:
    python examples/roaming_wsdb.py
"""

import time

from repro.wsdb import WhiteSpaceDatabase, generate_metro, simulate_roaming
from repro.wsdb.service import DEFAULT_CACHE_RESOLUTION_M


def main() -> None:
    # 1. A dense 2 km metro: TV sites on channels 0-11, channels 12+
    #    locally free between the contours.
    def fresh_db(resolution_m: float) -> WhiteSpaceDatabase:
        metro = generate_metro(
            range(12), extent_m=2_000.0, seed=99, num_channels=30
        )
        return WhiteSpaceDatabase(metro, cache_resolution_m=resolution_m)

    db = fresh_db(DEFAULT_CACHE_RESOLUTION_M)
    print(
        f"metro: {len(db.metro.sites)} TV sites on dial {db.metro.dial()}, "
        f"{db.metro.extent_m / 1e3:.0f} km plane"
    )

    # 2. Thirty clients roam for five minutes among eight APs, with a
    #    few microphone venues registering mid-session.
    report = simulate_roaming(
        db,
        num_aps=8,
        num_clients=30,
        duration_us=300e6,
        seed=7,
        mic_events=4,
    )
    print(
        f"\nroaming session: {report['num_clients']} clients, "
        f"{report['assigned_aps']}/{report['num_aps']} APs assigned, "
        f"{report['mic_events']} mic events"
    )
    print(
        f"  re-check rule: {report['requeries']} re-queries "
        f"({report['requeries_per_client']:.1f}/client — only on cell "
        "crossing or TTL expiry, never per tick)"
    )
    print(
        f"  mobility: {report['handoffs']} handoffs, "
        f"{report['vacations']} channel vacations "
        f"(paths entering mic protection zones)"
    )
    print(
        f"  compliance: connected {report['connected_fraction']:.1%} of "
        f"ticks, violation-free {report['violation_free_fraction']:.2%}"
    )

    # 3. The cell-granular protocol is what makes this workload cheap:
    #    every client in a 100 m square shares one cached response.
    stats = report["db"]
    print(
        f"\ncell-granular cache: {stats['queries']} queries, "
        f"{stats['cache_hits']} hits (hit rate {stats['hit_rate']:.0%}), "
        f"{stats['invalidations']} invalidated by mics, "
        f"{stats['expirations']} expired with their TTL buckets"
    )

    # 4. Shrink the response cell toward zero — every query point its
    #    own cache slot, the per-coordinate baseline — and the same
    #    session never hits the cache at all.
    baseline = simulate_roaming(
        fresh_db(0.001),
        num_aps=8,
        num_clients=30,
        duration_us=300e6,
        seed=7,
        mic_events=4,
        recheck_m=100.0,
    )["db"]
    print(
        f"per-coordinate baseline: {baseline['queries']} identical queries, "
        f"hit rate {baseline['hit_rate']:.0%} — dense mobile deployments "
        "need area responses"
    )

    # 5. The same session on both engines: the columnar vector engine
    #    (repro.wsdb.vector) batches the whole fleet's tick into numpy
    #    array passes and reproduces the scalar report bit for bit.
    print("\nscalar vs vector engine (same seed, fresh databases):")
    reports = {}
    for engine in ("scalar", "vector"):
        t0 = time.perf_counter()
        reports[engine] = simulate_roaming(
            fresh_db(DEFAULT_CACHE_RESOLUTION_M),
            num_aps=8,
            num_clients=500,
            duration_us=300e6,
            seed=7,
            mic_events=4,
            engine=engine,
        )
        wall = time.perf_counter() - t0
        print(f"  {engine:>6}: 500 clients x 301 ticks in {wall:.2f}s")
    match = "identical" if reports["scalar"] == reports["vector"] else "DIVERGED"
    print(f"  reports: {match} — benchmarks/bench_scale.py takes this to 1M")


if __name__ == "__main__":
    main()
