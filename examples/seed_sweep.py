#!/usr/bin/env python3
"""Parallel seed sweep: one scenario, many seeds, aggregated results.

Fans a WhiteFi-vs-OPT comparison across a deterministic seed grid with
``ParallelRunner`` (worker processes when the machine has cores to
spare, identical results sequentially when it does not), caches every
cell under its spec hash, and summarizes the sweep.  Re-running the
script hits the cache and completes instantly.

Run:
    python examples/seed_sweep.py [num_seeds]
"""

import sys
import tempfile

from repro.experiments import (
    BackgroundPoolSpec,
    ExperimentSpec,
    ParallelRunner,
    ResultCache,
    ScenarioSpec,
    summarize,
    sweep_seeds,
)

CACHE_DIR = tempfile.gettempdir() + "/whitefi-sweep-cache"


def main(num_seeds: int = 8) -> None:
    # Section 5.4.1 spectrum: 17 free UHF channels; ten randomly-placed
    # background pairs load it down.
    scenario = ScenarioSpec(
        free_indices=tuple(range(2, 8))
        + tuple(range(10, 13))
        + tuple(range(15, 19))
        + (21, 22, 25, 28),
        num_channels=30,
        num_clients=2,
        background_pool=BackgroundPoolSpec(
            random_count=10, inter_packet_delay_us=30_000.0
        ),
        duration_us=2_000_000.0,
        seed=0,  # replaced per grid cell
    )
    specs = [
        ExperimentSpec(scenario, kind="whitefi"),
        ExperimentSpec(scenario, kind="opt", probe_duration_us=600_000.0),
    ]
    seeds = sweep_seeds(master_seed=2009, count=num_seeds)

    runner = ParallelRunner(cache=ResultCache(CACHE_DIR))
    results = runner.run_grid(specs, seeds)
    print(f"executed {len(results)} runs ({runner.last_execution_mode}); "
          f"cache at {CACHE_DIR}")

    whitefi, opt = results[:num_seeds], results[num_seeds:]
    for name, group in (("whitefi", whitefi), ("opt", opt)):
        stats = summarize(group, metric="per_client_mbps")
        print(f"  {name:>8}: mean {stats.mean:.2f} Mbps/client "
              f"(min {stats.minimum:.2f}, max {stats.maximum:.2f}, "
              f"stddev {stats.stddev:.2f}, n={stats.count})")
    ratio = summarize(whitefi).mean / summarize(opt).mean
    print(f"WhiteFi achieves {ratio:.0%} of the omniscient static OPT "
          f"on average over {num_seeds} seeds.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
