#!/usr/bin/env python3
"""SIFT in action: detect transmitters of unknown width from raw IQ.

Synthesizes one scanner capture containing a 20 MHz AP's beacons and a
5 MHz Data-ACK stream, then runs the full SIFT pipeline: burst edges,
width classification, airtime measurement — no FFT, no retuning.

Run:
    python examples/sift_scan.py
"""

import numpy as np

from repro.phy.waveform import (
    beacon_cts_bursts,
    synthesize_bursts,
    traffic_bursts,
)
from repro.sift.analyzer import SiftAnalyzer


def main() -> None:
    rng = np.random.default_rng(2009)

    # A 20 MHz AP beacons twice inside the capture window...
    bursts = []
    for phase_us in (5_000.0, 107_400.0):
        beacon, cts = beacon_cts_bursts(20.0, phase_us)
        bursts += [beacon, cts]
    # ...while a 5 MHz pair pushes a short data burst train.
    bursts += traffic_bursts(5.0, 1000, 8, 4_000.0, start_us=15_000.0, rng=rng)

    capture_us = 150_000.0
    trace = synthesize_bursts(
        sorted(bursts, key=lambda b: b.start_us), capture_us, rng=rng
    )
    print(
        f"captured {len(trace)} IQ samples "
        f"({trace.duration_us / 1000:.1f} ms at 1.024 us/sample)"
    )

    result = SiftAnalyzer().scan(trace)
    print(f"bursts detected:    {len(result.bursts)}")
    print(f"exchanges matched:  {len(result.exchanges)}")
    print(f"widths on the air:  {sorted(result.widths_detected)} MHz")
    print(f"airtime utilization: {result.airtime_fraction:.1%}")
    print()
    print("exchange log:")
    for exchange in result.exchanges:
        print(
            f"  t={exchange.start_us / 1000:8.2f} ms  {exchange.kind.value:10} "
            f"width={exchange.width_mhz:>4g} MHz  "
            f"data={exchange.data_duration_us:7.1f} us  "
            f"gap={exchange.measured_gap_us:5.1f} us"
        )
    beacons = result.beacon_exchanges
    print()
    print(
        f"AP fingerprints (beacon+CTS): {len(beacons)} -> "
        f"estimated {result.ap_count_estimate()} AP(s) on this band"
    )


if __name__ == "__main__":
    main()
