#!/usr/bin/env python3
"""Spectrum characterization: fragmentation, spatial variation, mic MOS.

Reproduces the Section 2 measurement study on synthetic data:
fragment-width histograms per setting (Figure 2), the nine-building
Hamming-distance campaign (Section 2.1), and the wireless-microphone
interference MOS experiment (Section 2.3).

Run:
    python examples/spectrum_survey.py
"""

from statistics import median

from repro.analysis.hamming import pairwise_hamming_matrix, upper_triangle
from repro.audio.interference import PacketBurstSchedule
from repro.audio.mic import FmMicrophoneLink
from repro.audio.pesq import mos_score
from repro.audio.speech import synthesize_speech
from repro.spectrum.fragmentation import fragment_histogram, max_fragment_width
from repro.spectrum.geodata import SETTINGS, generate_study, iter_maps
from repro.spectrum.variation import generate_building_campaign


def fragmentation_study() -> None:
    print("-- Figure 2: fragmentation by setting (10 locales each) --")
    study = generate_study(count_per_setting=10, seed=2009)
    for setting in SETTINGS:
        maps = list(iter_maps(study[setting]))
        histogram = fragment_histogram(maps)
        widest = max_fragment_width(maps)
        mean_free = sum(m.num_free() for m in maps) / len(maps)
        print(f"  {setting:>9}: mean free {mean_free:4.1f} ch, "
              f"widest fragment {widest:2d} ch, "
              f"histogram {dict(sorted(histogram.items()))}")
    print()


def building_campaign() -> None:
    print("-- Section 2.1: nine-building spatial variation --")
    campaign = generate_building_campaign(seed=2009)
    matrix = pairwise_hamming_matrix(list(campaign.buildings))
    distances = upper_triangle(matrix)
    print(f"  36 building pairs; Hamming distances: min={min(distances)}, "
          f"median={median(distances)}, max={max(distances)}  (paper: ~7)")
    print()


def microphone_experiment() -> None:
    print("-- Section 2.3: packet interference on a wireless mic --")
    audio = synthesize_speech(4.0, seed=1)
    link = FmMicrophoneLink(seed=2)
    clean = link.transmit(audio)
    schedule = PacketBurstSchedule(period_ms=100.0, packet_bytes=70, seed=3)
    interference = schedule.render(len(audio) * link.oversample, link.rf_fs)
    interfered = link.transmit(audio, interference)
    mos_clean = mos_score(audio, clean, link.audio_fs)
    mos_hit = mos_score(audio, interfered, link.audio_fs)
    print(f"  MOS clean link: {mos_clean:.2f}")
    print(f"  MOS with 70 B packets every 100 ms: {mos_hit:.2f}")
    print(f"  drop: {mos_clean - mos_hit:.2f}  "
          f"(paper: ~0.9; a drop of 0.1 is already audible)")


def main() -> None:
    fragmentation_study()
    building_campaign()
    microphone_experiment()


if __name__ == "__main__":
    main()
