#!/usr/bin/env python3
"""Trace walkthrough: record a storm, export it, replay it bit-for-bit.

Runs one querystorm session with a :class:`TraceRecorder` attached,
inspects the recorded event stream, converts it to the K7-like columnar
``.npz`` form (typed numpy columns + per-column min/max stats), then
feeds the recorded query stream back through the cluster as a
:class:`TraceWorkload` — and shows that the replayed run reproduces the
source report exactly and re-records to the *byte-identical* trace.

Run:
    python examples/trace_replay.py
"""

import collections
import tempfile
from pathlib import Path

from repro.traces import (
    TraceRecorder,
    TraceWorkload,
    columnar_stats,
    read_trace,
    to_columnar,
)
from repro.wsdb import ShardRouter, simulate_querystorm
from repro.wsdb.model import generate_metro

SEED = 11


def run_storm(recorder=None, storm_source=None) -> dict:
    # Fresh metro + router per run: mic registrations mutate the world,
    # so determinism comparisons always start from the same state.
    metro = generate_metro(
        range(12), extent_m=2_500.0, seed=SEED, num_channels=30
    )
    return simulate_querystorm(
        ShardRouter(metro, num_shards=4),
        num_aps=8,
        num_clients=10,
        duration_us=60e6,
        seed=SEED,
        offered_qps=50.0,
        push=True,
        mic_events=5,
        recorder=recorder,
        storm_source=storm_source,
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trace-replay-"))
    source_path = workdir / "storm.jsonl.gz"
    replay_path = workdir / "replay.jsonl.gz"
    npz_path = workdir / "storm.npz"

    # 1. Record.  The recorder observes only — the report is identical
    #    with or without it.
    with TraceRecorder(source_path, meta={"example": "trace_replay"}) as rec:
        source_report = run_storm(recorder=rec)
    print(f"recorded {source_path.stat().st_size} bytes to {source_path}")

    header, events = read_trace(source_path)
    kinds = collections.Counter(e.kind for e in events)
    print(f"  schema {header['schema']}, {header['events']} events:")
    for kind, count in kinds.most_common():
        print(f"    {kind:>16} {count:>6}")

    # 2. Export.  One typed column per field, CSR-packed channel sets,
    #    per-column min/max stats riding along.
    stats = to_columnar(source_path, npz_path)
    print(f"columnar export: {npz_path.stat().st_size} bytes")
    for column in ("t_us", "subject", "aux"):
        s = stats[column]
        print(
            f"    {column:>16} min={s['min']} max={s['max']} "
            f"count={s['count']}"
        )
    assert columnar_stats(npz_path) == stats

    # 3. Replay.  The recorded query stream drives the frontend in
    #    place of the synthetic generator; same seeds everywhere else.
    workload = TraceWorkload.open(source_path)
    print(f"replaying {workload!r}")
    with TraceRecorder(replay_path, meta={"example": "trace_replay"}) as rec:
        replay_report = run_storm(recorder=rec, storm_source=workload)

    assert replay_report == source_report
    print("  replay report == source report")
    assert replay_path.read_bytes() == source_path.read_bytes()
    print("  re-recorded replay trace is byte-identical to the source")
    print(
        "  (verify independently: python scripts/trace_diff.py "
        f"{source_path} {replay_path})"
    )


if __name__ == "__main__":
    main()
