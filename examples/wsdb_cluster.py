#!/usr/bin/env python3
"""Cluster wsdb walkthrough: shard, batch, shed, push.

Builds a metro, stands a sharded database tier in front of it, and
walks the service-tier machinery end to end: deterministic routing and
the per-query candidate-scan win, burst coalescing through the batch
frontend, token-bucket shedding under a query storm (reject vs
serve-stale), and the PAWS-style push registry closing the pull
model's violation window on a dense roaming session.

Run:
    python examples/wsdb_cluster.py
"""

import random

from repro.wsdb import ShardRouter, simulate_querystorm
from repro.wsdb.cluster import BatchFrontend, PushRegistry
from repro.wsdb.model import MicRegistration, generate_metro


def fresh_metro(extent_m: float = 20_000.0, seed: int = 99):
    # TV sites on channels 0-11; channels 12+ locally free between the
    # contours, which is what makes routing spatially interesting.
    return generate_metro(range(12), extent_m=extent_m, seed=seed, num_channels=30)


def main() -> None:
    # 1. Shard the plane.  Same metro, three cluster sizes: every
    #    response is identical, but each shard indexes only its
    #    territory's incumbents (at sqrt(K)-finer granularity), so the
    #    candidates a query scans fall as the cluster grows.
    rng = random.Random(7)
    points = [(rng.uniform(0, 20_000.0), rng.uniform(0, 20_000.0)) for _ in range(2_000)]
    print("sharding the same 20 km metro:")
    baseline = None
    for shards in (1, 4, 16):
        router = ShardRouter(fresh_metro(), num_shards=shards)
        answers = router.channels_at_many(points, t_us=0.0)
        if baseline is None:
            baseline = answers
        assert answers == baseline  # sharding never changes a response
        cols, rows = router.grid
        print(
            f"  {shards:>2} shards ({cols}x{rows}): "
            f"{router.candidates_per_query():.2f} candidates scanned/query"
        )

    # 2. Batch + coalesce.  A burst of queries in the same few cells
    #    becomes a handful of shard lookups; everyone shares the
    #    responses.
    router = ShardRouter(fresh_metro(), num_shards=4)
    frontend = BatchFrontend(router)
    burst = [(5_010.0 + i, 5_010.0) for i in range(50)]  # one 100 m cell
    frontend.query_batch(burst, t_us=0.0)
    stats = frontend.stats
    print(
        f"\nburst of {stats.requests} same-cell requests: "
        f"{stats.coalesced} coalesced into "
        f"{stats.shard_batches} shard batch(es)"
    )

    # 3. Rate limiting + shed policies.  A 300 qps storm against a
    #    100 qps bucket sheds ~2/3 of requests; "serve-stale" answers
    #    them from the last-known cell response instead of refusing.
    for policy in ("reject", "serve-stale"):
        report = simulate_querystorm(
            ShardRouter(fresh_metro(extent_m=2_500.0), num_shards=4),
            num_aps=8,
            num_clients=20,
            duration_us=120e6,
            seed=7,
            offered_qps=300.0,
            mic_events=2,
            rate_limit_qps=100.0,
            policy=policy,
        )
        f = report["frontend"]
        print(
            f"{policy:>12}: shed {f['shed']} of {f['requests']} "
            f"({f['shed_rate']:.0%}), served stale {f['served_stale']}, "
            f"client re-checks deferred {report['deferred_requeries']}"
        )

    # 4. Push vs pull.  A dense roaming storm with mid-session mic
    #    registrations: pull-only clients ride stale responses into
    #    protection zones until their next re-check; pushed clients
    #    are notified the tick the zone appears and vacate.
    print("\npush vs pull on a dense roaming storm:")
    for push in (False, True):
        report = simulate_querystorm(
            ShardRouter(fresh_metro(extent_m=2_500.0), num_shards=4),
            num_aps=10,
            num_clients=60,
            duration_us=300e6,
            seed=7,
            offered_qps=200.0,
            push=push,
            mic_events=12,
            speed_mps=6.0,
        )
        label = "push" if push else "pull"
        extra = (
            f", {report['push_refreshes']} push refreshes"
            if push
            else ""
        )
        print(
            f"  {label}: {report['violation_us'] / 1e6:.0f} s of "
            f"ground-truth violation across "
            f"{report['mic_events']} mic events{extra}"
        )

    # 5. The push registry itself, in miniature: subscribe two
    #    devices, register a zone, see exactly who hears about it.
    registry = PushRegistry(cache_resolution_m=100.0)
    registry.subscribe(0, 10, 10)   # cell centered ~1,050 m
    registry.subscribe(1, 100, 100)  # far corner
    zone = MicRegistration.single_session(14, 1_000.0, 1_000.0, 0.0, 60e6)
    notified = registry.notify_zone(zone)
    print(
        f"\nzone at (1000, 1000) notified devices {notified} "
        "(device 1, ~13 km away, slept through it)"
    )


if __name__ == "__main__":
    main()
