#!/usr/bin/env python3
"""Fail CI when the roaming-engine throughput regresses.

Reads the append-only trajectory log ``BENCH_scale.json`` that
``benchmarks/bench_scale.py`` maintains at the repo root and compares
the two most recent *comparable* entries — same ``smoke`` flag and the
same realized sweep coverage (the set of vector fleet sizes actually
measured, excluding ``skipped: "budget"`` stub rows), so a
budget-truncated sweep or a smoke run is never judged against a full
one.  Exits non-zero when the latest
headline clients/sec falls below 80% of the previous entry's; with
fewer than two comparable entries there is nothing to compare and the
check is a no-op.

Stdlib only: CI runs this right after ``make bench-smoke`` without any
extra dependencies.

Usage::

    python scripts/bench_trend.py [path/to/BENCH_scale.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

#: The latest entry must retain at least this fraction of the previous
#: entry's headline clients/sec.
REGRESSION_FLOOR = 0.8


def sweep_coverage(entry: dict) -> tuple[int, ...]:
    """The vector fleet sizes an entry actually measured, ascending.

    Budget-skipped stub rows (``skipped: "budget"``) are excluded: two
    entries compare only when the same sizes really ran.
    """
    return tuple(
        sorted(
            run["clients"]
            for run in entry.get("runs", ())
            if run.get("engine") == "vector" and not run.get("skipped")
        )
    )


def comparable_pair(entries: list[dict]) -> tuple[dict, dict] | None:
    """(previous, latest) entries with matching smoke flag + coverage."""
    if not entries:
        return None
    latest = entries[-1]
    for prev in reversed(entries[:-1]):
        if (
            prev.get("smoke") == latest.get("smoke")
            and sweep_coverage(prev) == sweep_coverage(latest)
        ):
            return prev, latest
    return None


def main(argv: list[str]) -> int:
    log_path = pathlib.Path(
        argv[1]
        if len(argv) > 1
        else pathlib.Path(__file__).parent.parent / "BENCH_scale.json"
    )
    if not log_path.exists():
        print(f"bench-trend: no log at {log_path}; nothing to compare")
        return 0
    entries = json.loads(log_path.read_text()).get("entries", [])
    pair = comparable_pair(entries)
    if pair is None:
        print(
            f"bench-trend: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
            "no comparable pair; nothing to compare"
        )
        return 0
    prev, latest = pair
    before = prev["headline_clients_per_sec"]
    after = latest["headline_clients_per_sec"]
    ratio = after / before if before else float("inf")
    verdict = "ok" if ratio >= REGRESSION_FLOOR else "REGRESSION"
    print(
        f"bench-trend: {before:.0f} -> {after:.0f} clients/s "
        f"({ratio:.2f}x, floor {REGRESSION_FLOOR:.2f}) "
        f"at {latest.get('headline_clients')} clients "
        f"[{prev.get('version')} -> {latest.get('version')}]: {verdict}"
    )
    return 0 if ratio >= REGRESSION_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
