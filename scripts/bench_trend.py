#!/usr/bin/env python3
"""Fail CI when the roaming-engine throughput regresses.

Reads the append-only trajectory log ``BENCH_scale.json`` that
``benchmarks/bench_scale.py`` maintains at the repo root and compares
the two most recent *comparable* entries — same ``host``, same
``smoke`` flag, and the same realized sweep coverage (the set of
vector fleet sizes actually measured, excluding ``skipped: "budget"``
stub rows), so a budget-truncated sweep, a smoke run, or an entry from
a different machine is never judged against this one.  Exits non-zero when the latest
headline clients/sec falls below 80% of the previous entry's; with
fewer than two comparable entries there is nothing to compare and the
check is a no-op.

Before comparing, every entry is validated against the row schema
``benchmarks/bench_scale.py`` writes — unknown or missing keys fail
with a clear message naming the entry and the offending keys, so a
drifted writer is caught at the first CI run instead of producing a
silently mis-compared trajectory.

Stdlib only: CI runs this right after ``make bench-smoke`` without any
extra dependencies.

Usage::

    python scripts/bench_trend.py [path/to/BENCH_scale.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

#: The latest entry must retain at least this fraction of the previous
#: entry's headline clients/sec.
REGRESSION_FLOOR = 0.8

#: The exact key set of one trajectory entry.
ENTRY_KEYS = frozenset(
    {
        "created",
        "version",
        "smoke",
        "duration_us",
        "runs",
        "speedup_vs_scalar",
        "headline_clients",
        "headline_clients_per_sec",
    }
)
#: "host" arrived after the first entries were recorded, so it stays
#: optional; entries without it only ever compare with each other.
#: "observability" (the anchor-size telemetry+spans A/B row) arrived
#: later still, so it is optional for the same reason.
ENTRY_OPTIONAL_KEYS = frozenset({"host", "observability"})

#: The exact key set of one measured run row ("phases" — the vector
#: engine's wall-clock breakdown — is the one optional key).
RUN_KEYS = frozenset(
    {
        "engine",
        "clients",
        "ticks",
        "wall_s",
        "client_ticks",
        "clients_per_sec",
        "ticks_per_sec",
        "peak_rss_kb",
    }
)
RUN_OPTIONAL_KEYS = frozenset({"phases"})

#: The exact key set of a budget-skipped stub row.
SKIPPED_KEYS = frozenset({"engine", "clients", "skipped"})

#: The exact key set of the observability A/B row: the anchor-size
#: vector run with metrics registry + span recorder attached, timed
#: against the plain anchor run.
OBSERVABILITY_KEYS = frozenset(
    {
        "clients",
        "observed_wall_s",
        "plain_wall_s",
        "overhead_ratio",
        "spans",
        "traces",
    }
)


class SchemaError(ValueError):
    """A trajectory entry does not match the bench_scale row schema."""


def _check_keys(
    what: str, have: frozenset, required: frozenset, optional: frozenset
) -> None:
    missing = required - have
    unknown = have - required - optional
    problems = []
    if missing:
        problems.append(f"missing keys {sorted(missing)}")
    if unknown:
        problems.append(f"unknown keys {sorted(unknown)}")
    if problems:
        raise SchemaError(f"{what}: {'; '.join(problems)}")


def validate_entry(entry: dict, index: int) -> None:
    """Reject an entry whose shape drifted from the bench_scale writer."""
    what = f"entry {index}"
    if not isinstance(entry, dict):
        raise SchemaError(f"{what}: expected an object, got {type(entry).__name__}")
    _check_keys(what, frozenset(entry), ENTRY_KEYS, ENTRY_OPTIONAL_KEYS)
    if not isinstance(entry["runs"], list) or not entry["runs"]:
        raise SchemaError(f"{what}: runs must be a non-empty list")
    for j, run in enumerate(entry["runs"]):
        where = f"{what} run {j}"
        if not isinstance(run, dict):
            raise SchemaError(
                f"{where}: expected an object, got {type(run).__name__}"
            )
        if "skipped" in run:
            _check_keys(where, frozenset(run), SKIPPED_KEYS, frozenset())
        else:
            _check_keys(where, frozenset(run), RUN_KEYS, RUN_OPTIONAL_KEYS)
    if "observability" in entry:
        obs = entry["observability"]
        where = f"{what} observability"
        if not isinstance(obs, dict):
            raise SchemaError(
                f"{where}: expected an object, got {type(obs).__name__}"
            )
        _check_keys(where, frozenset(obs), OBSERVABILITY_KEYS, frozenset())


def validate_log(entries: list[dict]) -> None:
    """Validate every entry of a trajectory log."""
    for i, entry in enumerate(entries):
        validate_entry(entry, i)


def sweep_coverage(entry: dict) -> tuple[int, ...]:
    """The vector fleet sizes an entry actually measured, ascending.

    Budget-skipped stub rows (``skipped: "budget"``) are excluded: two
    entries compare only when the same sizes really ran.
    """
    return tuple(
        sorted(
            run["clients"]
            for run in entry.get("runs", ())
            if run.get("engine") == "vector" and not run.get("skipped")
        )
    )


def comparable_pair(entries: list[dict]) -> tuple[dict, dict] | None:
    """(previous, latest) entries with matching host + smoke flag +
    coverage.

    Wall-clock throughput only compares on the same machine, so an
    entry recorded on a different (or unrecorded) host never judges
    this one — the first entry on a new host starts a fresh baseline.
    """
    if not entries:
        return None
    latest = entries[-1]
    for prev in reversed(entries[:-1]):
        if (
            prev.get("host") == latest.get("host")
            and prev.get("smoke") == latest.get("smoke")
            and sweep_coverage(prev) == sweep_coverage(latest)
        ):
            return prev, latest
    return None


def main(argv: list[str]) -> int:
    log_path = pathlib.Path(
        argv[1]
        if len(argv) > 1
        else pathlib.Path(__file__).parent.parent / "BENCH_scale.json"
    )
    if not log_path.exists():
        print(f"bench-trend: no log at {log_path}; nothing to compare")
        return 0
    entries = json.loads(log_path.read_text()).get("entries", [])
    try:
        validate_log(entries)
    except SchemaError as err:
        print(f"bench-trend: schema error in {log_path}: {err}")
        return 1
    pair = comparable_pair(entries)
    if pair is None:
        print(
            f"bench-trend: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
            "no comparable pair; nothing to compare"
        )
        return 0
    prev, latest = pair
    before = prev["headline_clients_per_sec"]
    after = latest["headline_clients_per_sec"]
    ratio = after / before if before else float("inf")
    verdict = "ok" if ratio >= REGRESSION_FLOOR else "REGRESSION"
    print(
        f"bench-trend: {before:.0f} -> {after:.0f} clients/s "
        f"({ratio:.2f}x, floor {REGRESSION_FLOOR:.2f}) "
        f"at {latest.get('headline_clients')} clients "
        f"[{prev.get('version')} -> {latest.get('version')}]: {verdict}"
    )
    return 0 if ratio >= REGRESSION_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
