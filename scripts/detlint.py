#!/usr/bin/env python3
"""Run the determinism linter without needing PYTHONPATH set up.

Equivalent to ``PYTHONPATH=src python -m repro.detlint``; CI and bare
checkouts can call this file directly.  Stdlib + repo only — no
third-party imports on this path.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.detlint.cli import main  # noqa: E402  (path bootstrap first)

if __name__ == "__main__":
    sys.exit(main())
