#!/usr/bin/env python3
"""Suppression-debt report over a detlint JSON findings artifact.

Reads the artifact ``python -m repro.detlint --out`` writes (or runs
the linter in-process when given no file) and prints per-rule and
per-package counts — new, pragma-suppressed, and baselined — so a PR
review can see at a glance where determinism debt is accumulating,
before it calcifies into the baseline.

Usage::

    python scripts/detlint_report.py [findings.json]

Stdlib + repo only; exit status is 0 (reporting never gates — the
gate is ``make detlint``).
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.detlint.engine import FINDINGS_SCHEMA  # noqa: E402


def _fail(message: str) -> None:
    print(f"detlint_report: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def load_payload(path: str | None) -> dict:
    """The findings artifact: from *path*, or a fresh in-process run."""
    if path is None:
        from repro.detlint.cli import DEFAULT_BASELINE_FILE, DEFAULT_CONFIG_FILE
        from repro.detlint.config import load_config
        from repro.detlint.engine import lint_paths
        from repro.detlint.findings import load_baseline

        config = load_config(DEFAULT_CONFIG_FILE)
        report = lint_paths(
            list(config.paths),
            config=config,
            baseline=load_baseline(DEFAULT_BASELINE_FILE),
        )
        return report.to_dict()
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        _fail(f"no such file: {path}")
    except json.JSONDecodeError as exc:
        _fail(f"{path} is not valid JSON: {exc}")
    if payload.get("schema") != FINDINGS_SCHEMA:
        _fail(f"{path} does not match schema {FINDINGS_SCHEMA!r}")
    return payload


def render(payload: dict) -> str:
    counts = payload["counts"]
    stats = payload["stats"]
    lines = [
        f"detlint findings over {payload['files_checked']} files: "
        f"{counts['new']} new, {counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined, "
        f"{counts['stale_baseline']} stale baseline entries",
        "",
    ]
    for title, table in (
        ("rule", stats["by_rule"]),
        ("package", stats["by_package"]),
    ):
        lines.append(f"by {title}:")
        if not table:
            lines.append("  (no findings)")
        width = max([len(k) for k in table] + [len(title)])
        lines.append(f"  {title.ljust(width)}  new  suppressed  baselined")
        for key in sorted(table):
            row = table[key]
            lines.append(
                f"  {key.ljust(width)}  {row['new']:>3}  "
                f"{row['suppressed']:>10}  {row['baselined']:>9}"
            )
        lines.append("")
    suppressed = [
        f for f in payload["findings"] if f["status"] == "suppressed"
    ]
    if suppressed:
        lines.append("suppressions (pragma reasons):")
        for f in suppressed:
            lines.append(f"  {f['path']}:{f['line']} {f['rule']}: {f['reason']}")
    return "\n".join(lines).rstrip()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) > 1:
        _fail("usage: detlint_report.py [findings.json]")
    payload = load_payload(argv[0] if argv else None)
    print(render(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
