#!/usr/bin/env python3
"""Summarize a telemetry metrics snapshot on the terminal.

Reads either artifact shape the telemetry layer produces:

* a **snapshot JSON** (``repro.telemetry.export.write_metrics`` /
  ``snapshot_to_json`` output: top-level ``counters`` / ``gauges`` /
  ``histograms`` / ``series``);
* an **ExperimentResult JSON** (``ExperimentResult.to_json`` archive
  record from a ``telemetry="on"`` run — the snapshot is lifted out of
  the ``metrics`` payload's ``telemetry`` key, pair-list encoding and
  all).

and prints counters, gauges, per-histogram p50/p99/p999 with mean, and
a per-column summary of the per-tick time series.  A result record
from a ``spans="on"`` run additionally prints the span table's
tail-latency attribution (per-kind critical-path sim-time over the
p99+ bucket) and the p99 exemplar trace ids next to the histogram
quantiles.  Exit status 0 on a well-formed snapshot, 1 on malformed
input — the contract the ``make bench-smoke`` telemetry step relies
on.

Usage::

    python scripts/metrics_report.py path/to/snapshot.json
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.telemetry import histogram_quantile, tail_attribution  # noqa: E402
from repro.telemetry.spans import bucket_label  # noqa: E402

SECTIONS = ("counters", "gauges", "histograms", "series")


def _as_dict(value):
    """Undo the result archive's pair-list encoding, recursively.

    ``ExperimentResult`` canonicalizes nested mappings into sorted
    ``[key, value]`` pair lists; a raw snapshot JSON keeps plain
    objects.  Both normalize to dicts here.
    """
    if isinstance(value, dict):
        return {k: _as_dict(v) for k, v in value.items()}
    if isinstance(value, list):
        if value and all(
            isinstance(p, (list, tuple))
            and len(p) == 2
            and isinstance(p[0], str)
            for p in value
        ):
            return {k: _as_dict(v) for k, v in value}
        return [_as_dict(v) for v in value]
    return value


def load_snapshot(path: pathlib.Path) -> tuple[dict, dict | None]:
    """(metrics snapshot, span table or None) from either artifact shape."""
    data = json.loads(path.read_text())
    spans = None
    if isinstance(data, dict) and "metrics" in data:
        metrics = _as_dict(data["metrics"])
        if not isinstance(metrics, dict) or not (
            "telemetry" in metrics or "spans" in metrics
        ):
            raise ValueError(
                "result record has no telemetry or spans payload "
                '(was the run made with telemetry="on"?)'
            )
        spans = metrics.get("spans")
        data = metrics.get("telemetry", {})
    snapshot = _as_dict(data)
    if not isinstance(snapshot, dict) or not set(snapshot) <= set(SECTIONS):
        raise ValueError(
            f"not a metrics snapshot: expected sections from {SECTIONS}"
        )
    return (
        {section: snapshot.get(section, {}) for section in SECTIONS},
        spans,
    )


def spans_lines(table: dict) -> list[str]:
    """The span-table summary: tail attribution + p99 exemplar ids."""
    lines = [
        f"spans: {table['traces']} traces "
        f"(sample={table['sample']}, dropped={table['dropped']}, "
        f"unserved={table['unserved']})"
    ]
    tail = tail_attribution(table)
    threshold = tail["threshold_le"]
    edge = "+Inf" if threshold is None else f"{threshold:g}"
    lines.append(
        f"  tail p99 (bucket le<={edge}us): "
        f"{tail['requests']} requests, {tail['traces']} recorded traces"
    )
    for kind, self_us in tail["by_kind"].items():
        lines.append(f"    {kind:<42} {self_us:g} us")
    bounds = table.get("latency_bounds", [])
    counts = table.get("latency_counts", [])
    exemplars = table.get("exemplars", {})
    # The p99 bucket's exemplar trace ids, next to the quantile edge.
    total = sum(counts)
    if total:
        need = 0.99 * total
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= need:
                label = bucket_label(bounds, index)
                ids = exemplars.get(label, [])
                lines.append(
                    f"  p99 exemplars ({label}): "
                    + (" ".join(ids) if ids else "(none recorded)")
                )
                break
    return lines


def report_lines(snapshot: dict) -> list[str]:
    lines: list[str] = []
    if snapshot["counters"]:
        lines.append("counters:")
        for key, value in sorted(snapshot["counters"].items()):
            lines.append(f"  {key:<44} {value}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        for key, value in sorted(snapshot["gauges"].items()):
            lines.append(f"  {key:<44} {value:g}")
    if snapshot["histograms"]:
        lines.append("histograms:")
        for key, hist in sorted(snapshot["histograms"].items()):
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            p50 = histogram_quantile(hist, 0.5)
            p99 = histogram_quantile(hist, 0.99)
            p999 = histogram_quantile(hist, 0.999)
            lines.append(
                f"  {key:<44} count={count} mean={mean:g} "
                f"p50<={p50:g} p99<={p99:g} p999<={p999:g}"
            )
    series = snapshot["series"]
    if series:
        ticks = len(next(iter(series.values())))
        lines.append(f"series ({ticks} ticks):")
        for col, values in sorted(series.items()):
            if col == "t_us":
                continue
            lines.append(
                f"  {col:<44} last={values[-1]:g} "
                f"max={max(values):g} total-span="
                f"{values[-1] - values[0]:g}"
            )
    if not lines:
        lines.append("(empty snapshot)")
    return lines


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {pathlib.Path(argv[0]).name} path/to/snapshot.json")
        return 0 if len(argv) == 2 else 1
    path = pathlib.Path(argv[1])
    try:
        snapshot, spans = load_snapshot(path)
        lines = report_lines(snapshot)
        if spans is not None:
            lines.extend(spans_lines(spans))
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"metrics-report: {path}: {err}")
        return 1
    print(f"metrics-report: {path}")
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
