#!/usr/bin/env python3
"""Summarize a telemetry metrics snapshot on the terminal.

Reads either artifact shape the telemetry layer produces:

* a **snapshot JSON** (``repro.telemetry.export.write_metrics`` /
  ``snapshot_to_json`` output: top-level ``counters`` / ``gauges`` /
  ``histograms`` / ``series``);
* an **ExperimentResult JSON** (``ExperimentResult.to_json`` archive
  record from a ``telemetry="on"`` run — the snapshot is lifted out of
  the ``metrics`` payload's ``telemetry`` key, pair-list encoding and
  all).

and prints counters, gauges, per-histogram p50/p99/p999 with mean, and
a per-column summary of the per-tick time series.  Exit status 0 on a
well-formed snapshot, 1 on malformed input — the contract the
``make bench-smoke`` telemetry step relies on.

Usage::

    python scripts/metrics_report.py path/to/snapshot.json
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.telemetry import histogram_quantile  # noqa: E402

SECTIONS = ("counters", "gauges", "histograms", "series")


def _as_dict(value):
    """Undo the result archive's pair-list encoding, recursively.

    ``ExperimentResult`` canonicalizes nested mappings into sorted
    ``[key, value]`` pair lists; a raw snapshot JSON keeps plain
    objects.  Both normalize to dicts here.
    """
    if isinstance(value, dict):
        return {k: _as_dict(v) for k, v in value.items()}
    if (
        isinstance(value, list)
        and value
        and all(
            isinstance(p, (list, tuple))
            and len(p) == 2
            and isinstance(p[0], str)
            for p in value
        )
    ):
        return {k: _as_dict(v) for k, v in value}
    return value


def load_snapshot(path: pathlib.Path) -> dict:
    """The snapshot dict from either supported artifact shape."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "metrics" in data:
        metrics = _as_dict(data["metrics"])
        if not isinstance(metrics, dict) or "telemetry" not in metrics:
            raise ValueError(
                "result record has no telemetry payload "
                '(was the run made with telemetry="on"?)'
            )
        data = metrics["telemetry"]
    snapshot = _as_dict(data)
    if not isinstance(snapshot, dict) or not set(snapshot) <= set(SECTIONS):
        raise ValueError(
            f"not a metrics snapshot: expected sections from {SECTIONS}"
        )
    return {section: snapshot.get(section, {}) for section in SECTIONS}


def report_lines(snapshot: dict) -> list[str]:
    lines: list[str] = []
    if snapshot["counters"]:
        lines.append("counters:")
        for key, value in sorted(snapshot["counters"].items()):
            lines.append(f"  {key:<44} {value}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        for key, value in sorted(snapshot["gauges"].items()):
            lines.append(f"  {key:<44} {value:g}")
    if snapshot["histograms"]:
        lines.append("histograms:")
        for key, hist in sorted(snapshot["histograms"].items()):
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            p50 = histogram_quantile(hist, 0.5)
            p99 = histogram_quantile(hist, 0.99)
            p999 = histogram_quantile(hist, 0.999)
            lines.append(
                f"  {key:<44} count={count} mean={mean:g} "
                f"p50<={p50:g} p99<={p99:g} p999<={p999:g}"
            )
    series = snapshot["series"]
    if series:
        ticks = len(next(iter(series.values())))
        lines.append(f"series ({ticks} ticks):")
        for col, values in sorted(series.items()):
            if col == "t_us":
                continue
            lines.append(
                f"  {col:<44} last={values[-1]:g} "
                f"max={max(values):g} total-span="
                f"{values[-1] - values[0]:g}"
            )
    if not lines:
        lines.append("(empty snapshot)")
    return lines


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {pathlib.Path(argv[0]).name} path/to/snapshot.json")
        return 0 if len(argv) == 2 else 1
    path = pathlib.Path(argv[1])
    try:
        snapshot = load_snapshot(path)
        lines = report_lines(snapshot)
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"metrics-report: {path}: {err}")
        return 1
    print(f"metrics-report: {path}")
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
