#!/usr/bin/env python3
"""Profile one vector-engine wsdb run: phases, metrics, exporters.

Builds a metro world directly (no experiment archive), runs the
columnar vector engine with every telemetry layer attached — the
sim-clock :class:`~repro.telemetry.MetricsRegistry` and
:class:`~repro.telemetry.SpanRecorder` plus the wall-clock
:class:`~repro.telemetry.PhaseProfiler` — and writes six artifacts:

* ``PREFIX.profile.json`` — per-phase wall-clock seconds and call
  counts (advance / recheck-detect / batch-lookup / associate /
  compliance);
* ``PREFIX.profile-chrome.json`` — the same phase totals as a Chrome
  trace-event timeline (load in Perfetto / ``chrome://tracing``);
* ``PREFIX.metrics.json`` — the deterministic sim-clock snapshot
  (canonical JSON; identical across repeat runs of one spec);
* ``PREFIX.metrics.prom`` — the same snapshot in Prometheus text
  exposition format;
* ``PREFIX.spans.jsonl`` — the deterministic span table (meta header
  line + one span per line; feed to ``scripts/span_report.py``);
* ``PREFIX.spans-chrome.json`` — the span trees as Chrome trace
  events, one ``tid`` lane per trace.

A phase table (seconds, calls, share of profiled time) prints to
stdout.  ``make profile`` drives this for the 10k-client roaming run.

Usage::

    python scripts/profile_run.py [--kind roaming|querystorm]
        [--clients N] [--aps N] [--duration-us US] [--seed N]
        [--out PREFIX]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.telemetry import (  # noqa: E402
    MetricsRegistry,
    PhaseProfiler,
    SpanRecorder,
    write_metrics,
    write_spans,
)
from repro.wsdb.model import generate_metro  # noqa: E402

#: Matches the bench_scale dial: channels 0-11 carry TV incumbents.
FREE_INDICES = range(12, 30)
EXTENT_M = 3_000.0


def run(
    args: argparse.Namespace,
) -> tuple[MetricsRegistry, PhaseProfiler, SpanRecorder]:
    metro = generate_metro(FREE_INDICES, seed=args.seed, extent_m=EXTENT_M)
    telemetry = MetricsRegistry()
    profiler = PhaseProfiler()
    spans = SpanRecorder(sample=args.span_sample)
    if args.kind == "roaming":
        from repro.wsdb.mobility import simulate_roaming
        from repro.wsdb.service import WhiteSpaceDatabase

        simulate_roaming(
            WhiteSpaceDatabase(metro),
            num_aps=args.aps,
            num_clients=args.clients,
            duration_us=args.duration_us,
            seed=args.seed,
            mic_events=3,
            engine="vector",
            telemetry=telemetry,
            profiler=profiler,
            spans=spans,
        )
    else:
        from repro.wsdb.cluster.querystorm import simulate_querystorm
        from repro.wsdb.cluster.router import ShardRouter

        simulate_querystorm(
            ShardRouter(metro, num_shards=4),
            num_aps=args.aps,
            num_clients=args.clients,
            duration_us=args.duration_us,
            seed=args.seed,
            offered_qps=200.0,
            rate_limit_qps=500.0,
            push=True,
            mic_events=3,
            engine="vector",
            telemetry=telemetry,
            profiler=profiler,
            spans=spans,
        )
    return telemetry, profiler, spans


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="profile one vector-engine wsdb run"
    )
    parser.add_argument(
        "--kind", choices=("roaming", "querystorm"), default="roaming"
    )
    parser.add_argument("--clients", type=int, default=10_000)
    parser.add_argument("--aps", type=int, default=12)
    parser.add_argument("--duration-us", type=float, default=120e6)
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument(
        "--span-sample",
        default=None,
        help="span sampling policy: off (default), head-N, or tail",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/profile",
        help="artifact path prefix (default: benchmarks/results/profile)",
    )
    args = parser.parse_args(argv)

    telemetry, profiler, spans = run(args)

    prefix = pathlib.Path(args.out)
    profile_path = pathlib.Path(f"{prefix}.profile.json")
    profile_chrome = pathlib.Path(f"{prefix}.profile-chrome.json")
    metrics_json = pathlib.Path(f"{prefix}.metrics.json")
    metrics_prom = pathlib.Path(f"{prefix}.metrics.prom")
    spans_jsonl = pathlib.Path(f"{prefix}.spans.jsonl")
    spans_chrome = pathlib.Path(f"{prefix}.spans-chrome.json")
    meta = {
        "kind": args.kind,
        "engine": "vector",
        "clients": args.clients,
        "aps": args.aps,
        "duration_us": args.duration_us,
        "seed": args.seed,
    }
    profiler.write(profile_path, meta=meta)
    profiler.write_chrome(profile_chrome, meta=meta)
    snapshot = telemetry.snapshot()
    write_metrics(snapshot, json_path=metrics_json, prom_path=metrics_prom)
    table = spans.snapshot()
    write_spans(table, jsonl_path=spans_jsonl, chrome_path=spans_chrome)

    totals = profiler.seconds()
    grand = sum(totals.values()) or 1.0
    print(
        f"profile: {args.kind} x {args.clients} clients, "
        f"{args.duration_us:g} us (vector engine)"
    )
    print(f"{'phase':<16} {'seconds':>10} {'share':>7}")
    for name, seconds in sorted(
        totals.items(), key=lambda kv: kv[1], reverse=True
    ):
        print(f"{name:<16} {seconds:>10.3f} {seconds / grand:>6.1%}")
    print(
        f"spans: {table['traces']} traces, {len(table['spans'])} spans "
        f"(sample={table['sample']}, dropped={table['dropped']})"
    )
    print(
        "artifacts: "
        + ", ".join(
            str(p)
            for p in (
                profile_path,
                profile_chrome,
                metrics_json,
                metrics_prom,
                spans_jsonl,
                spans_chrome,
            )
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
