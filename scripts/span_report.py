#!/usr/bin/env python3
"""Summarize a span table: slow traces, attribution, tree printing.

Reads any artifact shape the spans layer produces:

* a **span JSONL** file (``repro.telemetry.export.write_spans`` /
  ``spans_to_jsonl`` output: one meta header line, one span per line);
* a **raw span table JSON** (``SpanRecorder.snapshot`` serialized
  directly);
* an **ExperimentResult JSON** (archive record from a ``spans="on"``
  run — the table is lifted out of the ``metrics`` payload's ``spans``
  key, pair-list encoding and all).

and prints the top-K slowest traces (by root duration) with their
critical paths, plus the per-kind tail-attribution table.  With
``--trace-id`` it pretty-prints one trace's span tree instead.  Exit
status 0 on a well-formed table, 1 on malformed input or an unknown
trace id.

Usage::

    python scripts/span_report.py path/to/spans.jsonl [--top K]
    python scripts/span_report.py path/to/spans.jsonl --trace-id TID
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.telemetry.spans import (  # noqa: E402
    SPANS_SCHEMA,
    critical_path,
    tail_attribution,
    trace_spans,
)


def _as_dict(value):
    """Undo the result archive's pair-list encoding, recursively."""
    if isinstance(value, dict):
        return {k: _as_dict(v) for k, v in value.items()}
    if isinstance(value, list):
        if value and all(
            isinstance(p, (list, tuple))
            and len(p) == 2
            and isinstance(p[0], str)
            for p in value
        ):
            return {k: _as_dict(v) for k, v in value}
        return [_as_dict(v) for v in value]
    return value


def load_table(path: pathlib.Path) -> dict:
    """The span table from any supported artifact shape."""
    text = path.read_text()
    first_line = text.split("\n", 1)[0]
    header = json.loads(first_line)
    if (
        isinstance(header, dict)
        and header.get("schema") == SPANS_SCHEMA
        and "spans" not in header
    ):
        # JSONL: header meta line, then one span per line.
        table = dict(header)
        table["spans"] = [
            json.loads(line)
            for line in text.splitlines()[1:]
            if line.strip()
        ]
        return table
    data = json.loads(text)
    if isinstance(data, dict) and "metrics" in data:
        metrics = _as_dict(data["metrics"])
        if not isinstance(metrics, dict) or "spans" not in metrics:
            raise ValueError(
                "result record has no spans payload "
                '(was the run made with spans="on"?)'
            )
        data = metrics["spans"]
    table = _as_dict(data)
    if not isinstance(table, dict) or table.get("schema") != SPANS_SCHEMA:
        raise ValueError(f"not a span table (expected schema {SPANS_SCHEMA})")
    return table


def _traces(table: dict) -> list[list[dict]]:
    """The table's traces as span lists, root first, table order."""
    groups: list[list[dict]] = []
    current_id = None
    for span in table.get("spans", []):
        if span["trace"] != current_id:
            current_id = span["trace"]
            groups.append([])
        groups[-1].append(span)
    return groups


def _root_label(root: dict) -> str:
    attrs = root.get("attrs", {})
    req = attrs.get("req", "?")
    subject = attrs.get("subject", "?")
    return f"{req}:{subject}"


def top_lines(table: dict, top: int) -> list[str]:
    """The top-K slowest traces plus the tail-attribution table."""
    lines = [
        f"spans: {table['traces']} traces "
        f"(sample={table['sample']}, dropped={table['dropped']}, "
        f"unserved={table['unserved']})"
    ]
    ranked = sorted(
        _traces(table),
        key=lambda spans: (
            -(spans[0]["t1_us"] - spans[0]["t0_us"]),
            spans[0]["trace"],
        ),
    )
    lines.append(f"top {min(top, len(ranked))} slowest traces:")
    lines.append(
        f"  {'trace':<18} {'kind':<13} {'request':<16} "
        f"{'latency_us':>12}  critical path"
    )
    for spans in ranked[:top]:
        root = spans[0]
        duration = root["t1_us"] - root["t0_us"]
        path = " > ".join(s["kind"] for s in critical_path(spans))
        lines.append(
            f"  {root['trace']:<18} {root['kind']:<13} "
            f"{_root_label(root):<16} {duration:>12g}  {path}"
        )
    tail = tail_attribution(table)
    threshold = tail["threshold_le"]
    edge = "+Inf" if threshold is None else f"{threshold:g}"
    lines.append(
        f"tail attribution (p{int(tail['quantile'] * 100)}, "
        f"bucket le<={edge}us): {tail['requests']} requests, "
        f"{tail['traces']} recorded traces"
    )
    for kind, self_us in tail["by_kind"].items():
        lines.append(f"  {kind:<42} {self_us:g} us")
    return lines


def tree_lines(spans: list[dict]) -> list[str]:
    """One trace's span tree, indented preorder."""
    children: dict[int, list[dict]] = {}
    root = None
    for span in spans:
        if span["parent"] is None:
            root = span
        else:
            children.setdefault(span["parent"], []).append(span)
    if root is None:
        return ["(no root span)"]
    lines: list[str] = [f"trace {root['trace']}:"]

    def emit(span: dict, depth: int) -> None:
        duration = span["t1_us"] - span["t0_us"]
        window = (
            f"@{span['t0_us']:g}"
            if duration == 0
            else f"[{span['t0_us']:g}..{span['t1_us']:g}] (+{duration:g}us)"
        )
        attrs = " ".join(
            f"{key}={value}" for key, value in span.get("attrs", {}).items()
        )
        tail = f"  {attrs}" if attrs else ""
        lines.append(
            f"{'  ' * (depth + 1)}{span['kind']} {window} "
            f"site={span['site']}{tail}"
        )
        for child in children.get(span["span"], []):
            emit(child, depth + 1)

    emit(root, 0)
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="summarize a span table (slow traces, attribution)"
    )
    parser.add_argument("path", type=pathlib.Path)
    parser.add_argument(
        "--top", type=int, default=10, help="slowest traces to list"
    )
    parser.add_argument(
        "--trace-id", help="pretty-print one trace's span tree instead"
    )
    args = parser.parse_args(argv)

    try:
        table = load_table(args.path)
        if args.trace_id is not None:
            spans = trace_spans(table, args.trace_id)
            if not spans:
                print(f"span-report: {args.path}: unknown trace {args.trace_id!r}")
                return 1
            lines = tree_lines(spans)
        else:
            lines = top_lines(table, args.top)
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"span-report: {args.path}: {err}")
        return 1
    print(f"span-report: {args.path}")
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
