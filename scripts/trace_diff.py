#!/usr/bin/env python3
"""Diff two recorded run traces event-by-event.

Compares schema/version strictly, then walks both canonical event
streams in lockstep and reports every position where they disagree —
missing events, extra events, or same-position events with different
fields.  Header ``meta`` is informational and never compared.  Accepts
gzip JSONL traces (``repro.traces`` writer output), plain JSONL, and
columnar ``.npz`` exports interchangeably, so a source recording can be
diffed directly against its columnar round-trip or a replay's
re-recording.

Exit status 0 when the traces are identical, 1 when they differ —
the contract the ``make trace-diff`` target and the bench-smoke CI
step rely on.

Usage::

    python scripts/trace_diff.py A.jsonl.gz B.jsonl.gz [--limit N]
"""

from __future__ import annotations

import argparse
import itertools
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.traces.record import TraceEvent, read_trace  # noqa: E402


def load(path: str | pathlib.Path) -> tuple[dict, list[TraceEvent]]:
    """Read a trace from JSONL(.gz) or a columnar ``.npz`` export."""
    path = pathlib.Path(path)
    if path.suffix == ".npz":
        from repro.traces.columnar import read_columnar

        return read_columnar(path)
    return read_trace(path)


def diff_traces(
    a: tuple[dict, list[TraceEvent]],
    b: tuple[dict, list[TraceEvent]],
) -> list[str]:
    """Human-readable delta lines; empty when the traces are identical."""
    header_a, events_a = a
    header_b, events_b = b
    deltas: list[str] = []
    for field in ("schema", "version"):
        if header_a.get(field) != header_b.get(field):
            deltas.append(
                f"header {field}: {header_a.get(field)!r} "
                f"!= {header_b.get(field)!r}"
            )
    if len(events_a) != len(events_b):
        deltas.append(f"event count: {len(events_a)} != {len(events_b)}")
    for index, (ev_a, ev_b) in enumerate(
        itertools.zip_longest(events_a, events_b)
    ):
        if ev_a == ev_b:
            continue
        if ev_a is None:
            deltas.append(f"event {index}: only in B: {ev_b.to_dict()}")
        elif ev_b is None:
            deltas.append(f"event {index}: only in A: {ev_a.to_dict()}")
        else:
            deltas.append(
                f"event {index}: {ev_a.to_dict()} != {ev_b.to_dict()}"
            )
    return deltas


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace_a", help="first trace (.jsonl[.gz] or .npz)")
    parser.add_argument("trace_b", help="second trace (.jsonl[.gz] or .npz)")
    parser.add_argument(
        "--limit",
        type=int,
        default=20,
        help="max delta lines to print (default 20; all are counted)",
    )
    args = parser.parse_args(argv)

    deltas = diff_traces(load(args.trace_a), load(args.trace_b))
    if not deltas:
        print(f"trace-diff: identical ({args.trace_a} == {args.trace_b})")
        return 0
    for line in deltas[: args.limit]:
        print(f"trace-diff: {line}")
    if len(deltas) > args.limit:
        print(f"trace-diff: ... {len(deltas) - args.limit} more deltas")
    print(
        f"trace-diff: {len(deltas)} delta(s) between "
        f"{args.trace_a} and {args.trace_b}"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
