"""Setuptools entry point — and the project metadata.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` via pyproject.toml)
fail with ``invalid command 'bdist_wheel'``; the classic
``pip install -e . --no-use-pep517 --no-build-isolation`` path works,
so metadata lives here rather than in a pyproject.toml.

The version string is read from ``src/repro/__init__.py`` — the package
constant is the single source of truth (the benchmark result cache and
the ``BENCH_scale.json`` perf-trajectory log are keyed by it).
"""

import pathlib
import re

from setuptools import find_packages, setup

_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE
).group(1)

setup(
    name="whitefi-repro",
    version=_VERSION,
    description=(
        "Reproduction of WhiteFi (SIGCOMM 2009): Wi-Fi-like networking in "
        "UHF white spaces, with a geolocation white-space database tier"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=[
        # The columnar roaming engine (repro.wsdb.vector) needs numpy;
        # scalar simulation paths import it lazily and run without it,
        # but the package is not feature-complete unless it is present.
        "numpy>=1.24",
    ],
)
