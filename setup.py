"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` via pyproject.toml
alone) fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
