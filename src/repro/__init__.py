"""WhiteFi: White Space Networking with Wi-Fi like Connectivity.

A full reproduction of Bahl, Chandra, Moscibroda, Murty & Welsh
(SIGCOMM 2009) in pure Python:

* :mod:`repro.spectrum` — UHF band plan, spectrum maps, incumbents,
  fragmentation, synthetic geodata.
* :mod:`repro.phy` — width-scaled OFDM timing and time-domain IQ
  synthesis (the scanner's view of the air).
* :mod:`repro.sift` — SIFT: time-domain packet detection and width
  classification before any FFT.
* :mod:`repro.mac` — frames and DCF parameters.
* :mod:`repro.radio` — the KNOWS platform emulation (transceiver +
  scanner).
* :mod:`repro.sim` — the discrete-event CSMA/CA network simulator (the
  paper's QualNet substitute).
* :mod:`repro.core` — WhiteFi proper: the MCham metric, spectrum
  assignment, L-SIFT/J-SIFT AP discovery, and the chirping
  disconnection protocol.
* :mod:`repro.audio` — the wireless-microphone interference study
  substrate (synthetic speech, FM mic link, PESQ-lite MOS).
"""

from repro import constants
from repro.errors import (
    ChannelError,
    DiscoveryError,
    NoChannelAvailableError,
    ProtocolError,
    RadioError,
    ReproError,
    SignalError,
    SimulationError,
    SpectrumMapError,
    UnknownRunKindError,
)

# 1.6.0: repro.traces dense run recording (versioned event schema,
# columnar export, storm replay), the `storm_trace` spec knob, and the
# `replay` run kind.  The ResultCache is versioned by this string, so
# older cache entries are never served to the new kind set.
# 1.7.0: repro.telemetry (sim-clock metrics registry, wall-clock phase
# profiler, deterministic exporters) and the `telemetry` spec knob —
# every spec hash changes, so the version bump retires caches that
# predate the knob.
# 1.8.0: repro.detlint (AST determinism linter gating make check/CI)
# and seeded RNG fallbacks in phy/radio (FALLBACK_RNG_SEED).  No spec
# knob changed, but bare-rng call sites now produce different (seeded)
# samples, so cached results from unseeded runs must not be reused.
# 1.9.0: repro.telemetry.spans (sim-clock request-scoped span tracing
# with tail attribution) and the `spans` / `span_sample` spec knobs —
# every spec hash changes, so the version bump retires caches that
# predate the knobs.
__version__ = "1.9.0"

__all__ = [
    "constants",
    "ReproError",
    "ChannelError",
    "SpectrumMapError",
    "NoChannelAvailableError",
    "SimulationError",
    "UnknownRunKindError",
    "RadioError",
    "DiscoveryError",
    "SignalError",
    "ProtocolError",
    "__version__",
]
