"""Statistical helpers shared by experiments and benchmarks."""

from repro.analysis.stats import mean, median, confidence_interval_95, summarize
from repro.analysis.hamming import pairwise_hamming_matrix

__all__ = [
    "mean",
    "median",
    "confidence_interval_95",
    "summarize",
    "pairwise_hamming_matrix",
]
