"""Pairwise Hamming-distance analysis of spectrum maps (Section 2.1)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError
from repro.spectrum.spectrum_map import SpectrumMap


def pairwise_hamming_matrix(maps: Sequence[SpectrumMap]) -> list[list[int]]:
    """Symmetric matrix of Hamming distances between spectrum maps.

    ``matrix[i][j]`` is the number of UHF channels whose availability
    differs between locations *i* and *j* — the Section 2.1 statistic.
    """
    if not maps:
        raise ReproError("need at least one spectrum map")
    n = len(maps)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = maps[i].hamming_distance(maps[j])
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def upper_triangle(matrix: list[list[int]]) -> list[int]:
    """Flatten the strict upper triangle (all distinct pair distances)."""
    return [
        matrix[i][j]
        for i in range(len(matrix))
        for j in range(i + 1, len(matrix))
    ]
