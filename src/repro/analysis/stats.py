"""Small, dependency-light statistics used by the benchmark harness."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise ReproError("median of empty sequence")
    return statistics.median(values)


def confidence_interval_95(values: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95% CI of the mean.

    For the small repeat counts used here (5-10 runs) this matches the
    error bars the paper draws.
    """
    if len(values) < 2:
        raise ReproError("need at least two values for a confidence interval")
    m = mean(values)
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    half = 1.96 * stderr
    return (m - half, m + half)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of repeated measurements."""

    mean: float
    median: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.3f} median={self.median:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} n={self.count}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from repeated measurements."""
    if not values:
        raise ReproError("summarize of empty sequence")
    return Summary(
        mean=mean(values),
        median=median(values),
        minimum=min(values),
        maximum=max(values),
        count=len(values),
    )
