"""Wireless-microphone interference study substrate (Section 2.3).

The paper measures, in an anechoic chamber, how UHF data packets degrade
audio carried over an analog FM wireless microphone: 70-byte packets
every 100 ms at -30 dBm dropped the PESQ Mean Opinion Score by ~0.9
(a drop of 0.1 is already audible).

This package reproduces the whole measurement chain synthetically:

* :mod:`repro.audio.speech` — a speech-like test signal;
* :mod:`repro.audio.mic` — an FM wireless-microphone link (modulator,
  channel, discriminator);
* :mod:`repro.audio.interference` — UHF packet bursts injected into the
  mic's RF channel;
* :mod:`repro.audio.pesq` — a PESQ-inspired MOS estimator (frame-wise
  log-spectral distortion mapped onto the 1.0-4.5 MOS scale).
"""

from repro.audio.speech import synthesize_speech
from repro.audio.mic import FmMicrophoneLink
from repro.audio.interference import PacketBurstSchedule
from repro.audio.pesq import mos_score

__all__ = [
    "synthesize_speech",
    "FmMicrophoneLink",
    "PacketBurstSchedule",
    "mos_score",
]
