"""UHF data-packet interference into the microphone's RF channel.

Reproduces the Section 2.3 experiment: "we sent 70-byte packets every
100 ms on the same UHF channel as the mic.  The transmission power level
was -30 dBm".  At anechoic-chamber distances the packets land within a
few dB of the mic carrier at the receiver, which is what produces the
audible FM clicks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.phy.timing import timing_for_width


class PacketBurstSchedule:
    """Periodic wideband packet bursts as complex interference samples.

    Args:
        period_ms: packet injection period (100 ms in the paper).
        packet_bytes: on-air frame size (70 bytes in the paper).
        width_mhz: transmission width (5 MHz — a single UHF channel).
        power_db: burst power relative to the mic carrier (0 dB means
            equal power at the receiver).
        seed: deterministic randomness for the burst waveform.
    """

    def __init__(
        self,
        period_ms: float = 100.0,
        packet_bytes: int = 70,
        width_mhz: float = 5.0,
        power_db: float = 0.0,
        seed: int = 0,
    ):
        if period_ms <= 0:
            raise SignalError(f"period must be positive, got {period_ms}")
        self.period_ms = period_ms
        self.packet_bytes = packet_bytes
        self.width_mhz = width_mhz
        self.power_db = power_db
        self._rng = np.random.default_rng(seed)
        self.burst_duration_s = (
            timing_for_width(width_mhz).frame_duration_us(packet_bytes) / 1e6
        )

    def render(self, num_samples: int, rf_fs: int) -> np.ndarray:
        """Complex interference samples for a capture of *num_samples*.

        Bursts are complex-Gaussian (OFDM-like) at the configured power,
        placed every period with a small random phase offset so bursts
        do not always hit the same audio frame position.
        """
        samples = np.zeros(num_samples, dtype=np.complex128)
        period_samples = int(round(self.period_ms * 1e-3 * rf_fs))
        burst_samples = max(1, int(round(self.burst_duration_s * rf_fs)))
        amplitude = 10.0 ** (self.power_db / 20.0)
        sigma = amplitude / np.sqrt(2.0)
        offset = int(self._rng.integers(0, max(period_samples, 1)))
        start = offset
        while start < num_samples:
            stop = min(start + burst_samples, num_samples)
            n = stop - start
            samples[start:stop] = sigma * (
                self._rng.standard_normal(n) + 1j * self._rng.standard_normal(n)
            )
            start += period_samples
        return samples

    def bursts_in(self, duration_s: float) -> int:
        """Number of bursts expected within *duration_s*."""
        return int(duration_s * 1000.0 / self.period_ms)
