"""Analog FM wireless-microphone link.

Wireless microphones in the UHF band are analog FM transmitters
(~200 kHz occupied bandwidth).  The link here is complex-baseband: the
modulator integrates the audio into phase, the channel adds thermal
noise and any interference bursts, and the receiver recovers audio with
a phase-difference discriminator.

The characteristic failure mode under co-channel packet interference is
the FM *click*: when interference power approaches the carrier power,
the discriminator's phase estimate slips, producing loud wideband pops —
exactly what makes even a single data packet audible (Section 2.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

#: RF (baseband-equivalent) simulation rate; must exceed twice the FM
#: deviation plus audio bandwidth.
DEFAULT_RF_FS = 48_000

#: FM frequency deviation (Hz) for full-scale audio.
DEFAULT_DEVIATION_HZ = 12_000.0


class FmMicrophoneLink:
    """Modulate, propagate, and demodulate a mic transmission.

    Args:
        audio_fs: input audio sampling rate.
        rf_fs: RF simulation rate (an integer multiple of *audio_fs*).
        deviation_hz: FM deviation at full scale.
        carrier_snr_db: carrier-to-thermal-noise ratio at the receiver.
        seed: deterministic randomness for the channel noise.
    """

    def __init__(
        self,
        audio_fs: int = 8_000,
        rf_fs: int = DEFAULT_RF_FS,
        deviation_hz: float = DEFAULT_DEVIATION_HZ,
        carrier_snr_db: float = 35.0,
        seed: int = 0,
    ):
        if rf_fs % audio_fs != 0:
            raise SignalError(
                f"rf_fs ({rf_fs}) must be an integer multiple of audio_fs "
                f"({audio_fs})"
            )
        self.audio_fs = audio_fs
        self.rf_fs = rf_fs
        self.oversample = rf_fs // audio_fs
        self.deviation_hz = deviation_hz
        self.carrier_snr_db = carrier_snr_db
        self._rng = np.random.default_rng(seed)

    # -- TX ------------------------------------------------------------------------

    def modulate(self, audio: np.ndarray) -> np.ndarray:
        """FM-modulate *audio* onto a unit-power complex carrier."""
        upsampled = np.repeat(np.asarray(audio, dtype=np.float64), self.oversample)
        phase = (
            2.0
            * np.pi
            * self.deviation_hz
            * np.cumsum(upsampled)
            / self.rf_fs
        )
        return np.exp(1j * phase)

    # -- channel ---------------------------------------------------------------------

    def channel(
        self,
        rf: np.ndarray,
        interference: np.ndarray | None = None,
    ) -> np.ndarray:
        """Add thermal noise and optional co-channel interference.

        Args:
            rf: modulated carrier (unit power).
            interference: complex samples added on top (same length), e.g.
                from :class:`repro.audio.interference.PacketBurstSchedule`.
        """
        noise_power = 10.0 ** (-self.carrier_snr_db / 10.0)
        sigma = np.sqrt(noise_power / 2.0)
        noisy = rf + sigma * (
            self._rng.standard_normal(len(rf))
            + 1j * self._rng.standard_normal(len(rf))
        )
        if interference is not None:
            if len(interference) != len(rf):
                raise SignalError(
                    "interference length must match the RF signal"
                )
            noisy = noisy + interference
        return noisy

    # -- RX ----------------------------------------------------------------------------

    def demodulate(self, rf: np.ndarray) -> np.ndarray:
        """Recover audio with a phase-difference discriminator."""
        phase_delta = np.angle(rf[1:] * np.conj(rf[:-1]))
        instantaneous_hz = phase_delta * self.rf_fs / (2.0 * np.pi)
        audio_up = instantaneous_hz / self.deviation_hz
        audio_up = np.concatenate(([audio_up[0]], audio_up))
        # Decimate with a simple boxcar anti-alias filter.
        n_frames = len(audio_up) // self.oversample
        audio = audio_up[: n_frames * self.oversample].reshape(
            n_frames, self.oversample
        ).mean(axis=1)
        return np.clip(audio, -2.0, 2.0)

    def transmit(
        self, audio: np.ndarray, interference: np.ndarray | None = None
    ) -> np.ndarray:
        """End-to-end: modulate, add channel impairments, demodulate."""
        return self.demodulate(self.channel(self.modulate(audio), interference))
