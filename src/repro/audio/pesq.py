"""PESQ-lite: a perceptual-flavoured MOS estimator.

Real PESQ (ITU-T P.862) time-aligns reference and degraded signals,
maps them through a psychoacoustic loudness model, and converts
asymmetric disturbance into a MOS.  For this reproduction we keep the
structural skeleton that matters for the experiment — frame-wise
spectral comparison over active speech, compressive (log) amplitude
mapping, and a calibrated disturbance-to-MOS mapping — and drop the
proprietary psychoacoustic details.

The estimator is calibrated so that (a) a clean FM link scores near the
4.0-4.4 toll-quality band, and (b) localized clicks of the kind packet
interference produces cost roughly what the paper measured (ΔMOS ≈ 0.9
for 70-byte packets every 100 ms at chamber-level interference power).
"""

from __future__ import annotations

import numpy as np

from repro.audio.speech import active_speech_mask
from repro.errors import SignalError

#: MOS scale bounds (P.862 reports 1.0-4.5).
MOS_MAX = 4.5
MOS_MIN = 1.0

#: Disturbance-to-MOS slope, calibrated against the clean-link anchor.
_MOS_SLOPE = 2.85

#: Frame length for spectral comparison (ms).
FRAME_MS = 32.0


def _frame_spectra(signal: np.ndarray, fs: int, frame: int) -> np.ndarray:
    num_frames = len(signal) // frame
    frames = signal[: num_frames * frame].reshape(num_frames, frame)
    window = np.hanning(frame)
    spectra = np.abs(np.fft.rfft(frames * window, axis=1))
    return spectra


def _level_align(reference: np.ndarray, degraded: np.ndarray) -> np.ndarray:
    """Scale *degraded* to the reference's RMS level."""
    ref_rms = np.sqrt((reference**2).mean())
    deg_rms = np.sqrt((degraded**2).mean())
    if deg_rms <= 1e-12:
        return degraded
    return degraded * (ref_rms / deg_rms)


def disturbance(
    reference: np.ndarray,
    degraded: np.ndarray,
    fs: int,
    frame_ms: float = FRAME_MS,
) -> float:
    """Mean frame-wise log-spectral disturbance over active speech.

    Frames where the degraded signal deviates most are emphasised with
    an L4 norm across frames, mimicking PESQ's asymmetry: listeners
    judge quality by the worst moments, so sparse loud clicks cost more
    than their average energy suggests.
    """
    if len(reference) != len(degraded):
        raise SignalError(
            f"signal lengths differ: {len(reference)} vs {len(degraded)}"
        )
    if len(reference) == 0:
        raise SignalError("cannot score empty signals")
    degraded = _level_align(reference, degraded)
    frame = int(fs * frame_ms / 1000.0)
    ref_spec = _frame_spectra(reference, fs, frame)
    deg_spec = _frame_spectra(degraded, fs, frame)
    mask = active_speech_mask(reference, fs, frame_ms)
    n = min(len(ref_spec), len(deg_spec), len(mask))
    if n == 0:
        raise SignalError("signals too short for one analysis frame")
    ref_spec, deg_spec, mask = ref_spec[:n], deg_spec[:n], mask[:n]
    if not mask.any():
        mask = np.ones(n, dtype=bool)
    eps = 1e-6
    log_diff = np.abs(
        np.log10(deg_spec[mask] + eps) - np.log10(ref_spec[mask] + eps)
    )
    per_frame = log_diff.mean(axis=1)
    # L4 across frames: sparse large disturbances dominate.
    return float((per_frame**4).mean() ** 0.25)


def mos_score(
    reference: np.ndarray,
    degraded: np.ndarray,
    fs: int,
    frame_ms: float = FRAME_MS,
) -> float:
    """Estimate the MOS of *degraded* against *reference* (1.0-4.5).

    >>> import numpy as np
    >>> x = np.sin(np.linspace(0, 1000, 16000))
    >>> mos_score(x, x, 8000) == 4.5
    True
    """
    d = disturbance(reference, degraded, fs, frame_ms)
    mos = MOS_MAX - _MOS_SLOPE * d
    return float(min(MOS_MAX, max(MOS_MIN, mos)))


def mos_delta(
    reference: np.ndarray,
    clean: np.ndarray,
    interfered: np.ndarray,
    fs: int,
) -> float:
    """MOS drop caused by interference: ``MOS(clean) - MOS(interfered)``.

    This is the paper's headline number (ΔMOS ≈ 0.9 under packet
    interference; ≥ 0.1 is audible).
    """
    return mos_score(reference, clean, fs) - mos_score(reference, interfered, fs)
