"""Synthetic speech-like test signal.

A harmonic source with a wandering pitch, syllabic amplitude modulation,
and inter-word pauses — enough spectral and temporal structure for a
frame-based quality metric to react to localized corruption the way it
would on recorded speech.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

#: Default audio sampling rate (Hz); narrowband speech.
DEFAULT_AUDIO_FS = 8_000


def synthesize_speech(
    duration_s: float,
    fs: int = DEFAULT_AUDIO_FS,
    seed: int = 0,
    pitch_hz: float = 120.0,
) -> np.ndarray:
    """Generate a speech-like waveform in [-1, 1].

    Args:
        duration_s: signal length in seconds.
        fs: sampling rate.
        seed: deterministic randomness seed.
        pitch_hz: base fundamental frequency.

    Returns:
        Float array of ``duration_s * fs`` samples.
    """
    if duration_s <= 0:
        raise SignalError(f"duration must be positive, got {duration_s}")
    rng = np.random.default_rng(seed)
    n = int(round(duration_s * fs))
    t = np.arange(n) / fs

    # Slowly wandering pitch (vibrato + drift).
    drift = 1.0 + 0.08 * np.sin(2 * np.pi * 0.35 * t + rng.uniform(0, 2 * np.pi))
    vibrato = 1.0 + 0.015 * np.sin(2 * np.pi * 5.2 * t)
    instantaneous_hz = pitch_hz * drift * vibrato
    phase = 2 * np.pi * np.cumsum(instantaneous_hz) / fs

    # Harmonic stack with formant-like weighting.
    harmonic_weights = (1.0, 0.63, 0.44, 0.18, 0.09)
    voiced = sum(
        w * np.sin((k + 1) * phase) for k, w in enumerate(harmonic_weights)
    )
    # A little aspiration noise.
    voiced += 0.03 * rng.standard_normal(n)

    # Syllabic envelope (~3.5 syllables/s) with word pauses.
    syllabic = 0.55 + 0.45 * np.sin(2 * np.pi * 3.5 * t + rng.uniform(0, 2 * np.pi))
    pause_period_s = 1.7
    pause_duration_s = 0.25
    in_pause = (t % pause_period_s) < pause_duration_s
    envelope = syllabic * np.where(in_pause, 0.05, 1.0)
    # Smooth the pause edges to avoid synthetic clicks.
    kernel = np.ones(int(0.01 * fs)) / max(int(0.01 * fs), 1)
    envelope = np.convolve(envelope, kernel, mode="same")

    signal = voiced * envelope
    peak = np.abs(signal).max()
    if peak > 0:
        signal = signal / peak * 0.9
    return signal


def active_speech_mask(
    signal: np.ndarray, fs: int = DEFAULT_AUDIO_FS, frame_ms: float = 32.0
) -> np.ndarray:
    """Boolean per-frame mask of frames containing active speech.

    Quality metrics exclude silent frames (PESQ's voice-activity
    behaviour); a frame is active when its RMS exceeds 10% of the
    signal-wide RMS.
    """
    frame = int(fs * frame_ms / 1000.0)
    if frame <= 0:
        raise SignalError("frame too short for the sampling rate")
    num_frames = len(signal) // frame
    if num_frames == 0:
        return np.zeros(0, dtype=bool)
    frames = signal[: num_frames * frame].reshape(num_frames, frame)
    rms = np.sqrt((frames**2).mean(axis=1))
    return rms > 0.1 * np.sqrt((signal**2).mean())
