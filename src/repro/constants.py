"""Band-plan, regulatory, and timing constants for WhiteFi.

All values trace back to the paper (Bahl et al., SIGCOMM 2009) or to the
variable-channel-width study it builds on (Chandra et al., SIGCOMM 2008):

* The US UHF white spaces considered are TV channels 21-51, excluding
  channel 37 (reserved for radio astronomy): 30 usable channels of 6 MHz,
  spanning 512-698 MHz.
* WhiteFi channels are (F, W) tuples with W in {5, 10, 20} MHz, always
  centered on a UHF channel's center frequency.  A 5 MHz channel fits one
  UHF channel, 10 MHz spans three, 20 MHz spans five: 30 + 28 + 26 = 84
  candidate channels.
* MAC/PHY timing scales inversely with channel width: halving the width
  doubles the OFDM symbol period, SIFS, slot time, and packet durations.
  The 20 MHz base values are the 802.11a numbers; the paper states the
  minimum SIFS in the system (20 MHz) is 10 us.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# UHF band plan (United States, post-DTV transition)
# --------------------------------------------------------------------------

#: First usable UHF TV channel number.
FIRST_UHF_CHANNEL = 21

#: Last usable UHF TV channel number.
LAST_UHF_CHANNEL = 51

#: Channel reserved for radio astronomy; never available to white space
#: devices.
RESERVED_UHF_CHANNEL = 37

#: Width of one US UHF TV channel in MHz.
UHF_CHANNEL_WIDTH_MHZ = 6.0

#: Lower band edge of UHF channel 21 in MHz (512-518 MHz).
UHF_BAND_START_MHZ = 512.0

#: Upper band edge of UHF channel 51 in MHz.
UHF_BAND_END_MHZ = 698.0

#: Number of usable UHF channels for portable white space devices
#: (21..51 minus channel 37).
NUM_UHF_CHANNELS = 30

#: Supported WhiteFi channel widths, in MHz, narrowest first.
CHANNEL_WIDTHS_MHZ = (5.0, 10.0, 20.0)

#: Number of UHF channels spanned by each WhiteFi width.
SPAN_BY_WIDTH_MHZ = {5.0: 1, 10.0: 3, 20.0: 5}

#: Reference width used to normalise the MCham metric ("we use a 5 MHz
#: channel as our reference point because it fits into one single UHF
#: channel").
REFERENCE_WIDTH_MHZ = 5.0

# --------------------------------------------------------------------------
# Regulatory / sensing constants
# --------------------------------------------------------------------------

#: FCC-permitted maximum transmit power for portable devices (40 mW).
FCC_MAX_TX_POWER_DBM = 16.0

#: TV signal detection threshold achieved by the KNOWS scanner (dBm).
TV_DETECTION_THRESHOLD_DBM = -114.0

#: Wireless microphone detection threshold achieved by the scanner (dBm).
MIC_DETECTION_THRESHOLD_DBM = -110.0

#: TV receiver decoding threshold (dBm); the ~30 dB gap between this and
#: the detection threshold is the hidden-terminal protection buffer.
TV_DECODING_THRESHOLD_DBM = -85.0

# --------------------------------------------------------------------------
# PHY timing (20 MHz base; scales by 20/W for width W)
# --------------------------------------------------------------------------

#: OFDM symbol period at 20 MHz (microseconds).
BASE_SYMBOL_US = 4.0

#: SIFS at 20 MHz (microseconds).  The paper: "the lowest SIFS value in our
#: system is for a 20 MHz transmission, which is 10 us or 10 samples".
BASE_SIFS_US = 10.0

#: Slot time at 20 MHz (microseconds).
BASE_SLOT_US = 9.0

#: PLCP preamble + SIGNAL field at 20 MHz (microseconds): 16 us preamble
#: plus one 4 us SIGNAL symbol.
BASE_PREAMBLE_US = 20.0

#: Nominal data rate of the prototype at 20 MHz width (Mbps).  WhiteFi runs
#: at a single rate; rate adaptation is out of scope for the paper.
BASE_DATA_RATE_MBPS = 6.0

#: MAC service bits added to every PSDU: 16 SERVICE + 6 tail bits.
PSDU_OVERHEAD_BITS = 22

#: DIFS = SIFS + 2 * slot (by definition at every width).
BASE_DIFS_US = BASE_SIFS_US + 2 * BASE_SLOT_US

#: Minimum / maximum DCF contention window (slots).
CW_MIN = 15
CW_MAX = 1023

#: Maximum MAC retransmissions before a frame is dropped.
MAX_RETRIES = 7

#: Beacon interval (microseconds).  Classic Wi-Fi TBTT of ~100 ms.
BEACON_INTERVAL_US = 102_400.0

# --------------------------------------------------------------------------
# Frame sizes (bytes on air, MAC header + payload + FCS)
# --------------------------------------------------------------------------

#: ACK frame: the smallest MAC-layer frame (14 bytes), per the paper.
ACK_FRAME_BYTES = 14

#: CTS-to-self frame size (bytes); used one SIFS after each beacon so that
#: SIFT can fingerprint beacons in the time domain.
CTS_FRAME_BYTES = 14

#: Nominal beacon frame size (bytes): management header + timestamp,
#: interval, capabilities, SSID, rates, and the WhiteFi backup-channel IE.
BEACON_FRAME_BYTES = 90

#: MAC header + FCS overhead added to a data payload (bytes).
DATA_HEADER_BYTES = 28

# --------------------------------------------------------------------------
# Scanner (USRP / TVRX) model
# --------------------------------------------------------------------------

#: Scanner sampling period (microseconds per sample).  The USRP delivers
#: complex samples at ~1 MS/s; the paper uses 1.024 us per sample.
SAMPLE_PERIOD_US = 1.024

#: Samples per block delivered by the USRP to the host.
USRP_BLOCK_SAMPLES = 2048

#: Usable RF span of one scanner capture (MHz).  The USRP front end is
#: limited to an 8 MHz span per the paper.
SCANNER_SPAN_MHZ = 8.0

#: Bandwidth actually sampled around the scan center frequency (MHz).
SCANNER_SAMPLE_BANDWIDTH_MHZ = 1.0

#: SIFT moving-average window (samples).  Must stay below the minimum SIFS
#: in samples (10); the paper picks 5.
SIFT_WINDOW_SAMPLES = 5

# --------------------------------------------------------------------------
# WhiteFi control plane defaults
# --------------------------------------------------------------------------

#: How often the AP's main radio revisits the backup channel to listen for
#: chirps (microseconds).  Section 5.3: "the AP switched to the backup
#: channel once every 3 seconds".
BACKUP_SCAN_INTERVAL_US = 3_000_000.0

#: Worst-case end-to-end reconnection budget (microseconds).  Section 5.3:
#: "the system is operational again after a lag of at most 4 seconds".
RECONNECT_BUDGET_US = 4_000_000.0

#: Default relative hysteresis margin: a voluntary switch requires the new
#: channel's score to beat the incumbent choice by this fraction.
HYSTERESIS_MARGIN = 0.10

#: Default PLL retune latency for the main transceiver (microseconds);
#: "known to be a few milliseconds" per Section 4.3.
PLL_SWITCH_US = 5_000.0

#: Dwell time needed to reliably observe one beacon on a channel
#: (microseconds): one beacon interval plus margin.
BEACON_DWELL_US = BEACON_INTERVAL_US * 1.1

#: Seed for the RNG a signal-path helper constructs when the caller
#: passes none.  Determinism contract: *no* code path may fall back to
#: OS entropy (``np.random.default_rng()`` bare), so convenience
#: defaults derive from this fixed seed instead — two bare calls of the
#: same helper produce identical output.  The value is the paper's
#: conference date (SIGCOMM'09, August 17 2009).
FALLBACK_RNG_SEED = 20090817


def widths_mhz() -> tuple[float, ...]:
    """Return the supported WhiteFi channel widths (MHz), narrowest first."""
    return CHANNEL_WIDTHS_MHZ


def span_channels(width_mhz: float) -> int:
    """Number of 6 MHz UHF channels spanned by a WhiteFi channel of *width_mhz*.

    >>> span_channels(20.0)
    5
    """
    try:
        return SPAN_BY_WIDTH_MHZ[float(width_mhz)]
    except KeyError:
        raise ValueError(
            f"unsupported channel width {width_mhz!r} MHz; "
            f"expected one of {CHANNEL_WIDTHS_MHZ}"
        ) from None


def width_scale(width_mhz: float) -> float:
    """Timing scale factor for *width_mhz* relative to the 20 MHz base.

    Halving the channel width doubles every on-air duration, so the scale
    factor is ``20 / W``:

    >>> width_scale(5.0)
    4.0
    """
    if width_mhz <= 0:
        raise ValueError(f"channel width must be positive, got {width_mhz!r}")
    return 20.0 / float(width_mhz)
