"""WhiteFi core: the paper's primary contribution.

* :mod:`repro.core.mcham` — the multichannel airtime metric (Section 4.1).
* :mod:`repro.core.assignment` — adaptive spectrum assignment with
  hysteresis.
* :mod:`repro.core.discovery` — AP discovery: non-SIFT baseline, L-SIFT,
  J-SIFT (Section 4.2.2, Algorithm 1).
* :mod:`repro.core.chirp` — the chirping disconnection protocol
  (Section 4.3).
* :mod:`repro.core.ap` / :mod:`repro.core.client` — control planes.
* :mod:`repro.core.network` — a WhiteFi BSS wired into the simulator.
"""

from repro.core.mcham import expected_share, mcham, mcham_all_nodes, network_score
from repro.core.assignment import ChannelAssigner, AssignmentDecision
from repro.core.discovery import (
    BaselineDiscovery,
    DiscoveryOutcome,
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
    expected_scans_baseline,
    expected_scans_jsift,
    expected_scans_lsift,
)
from repro.core.chirp import ChirpCodec, ChirpMessage, BackupChannelPlan

__all__ = [
    "expected_share",
    "mcham",
    "mcham_all_nodes",
    "network_score",
    "ChannelAssigner",
    "AssignmentDecision",
    "BaselineDiscovery",
    "LSiftDiscovery",
    "JSiftDiscovery",
    "DiscoverySession",
    "DiscoveryOutcome",
    "expected_scans_baseline",
    "expected_scans_lsift",
    "expected_scans_jsift",
    "ChirpCodec",
    "ChirpMessage",
    "BackupChannelPlan",
]
