"""The WhiteFi AP control plane.

Responsibilities (Sections 4.1 and 4.3):

* beacon every TBTT, advertising the current backup channel;
* collect client reports (spectrum map + airtime observation);
* periodically re-evaluate the spectrum assignment and broadcast
  channel-switch announcements;
* vacate immediately when an incumbent appears on the main channel;
* scan the backup channel every 3 s for chirps from disconnected
  clients, and when one is heard, reassign spectrum using the chirped
  availability information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.core.assignment import AssignmentDecision, ChannelAssigner, SwitchReason
from repro.core.chirp import BackupChannelPlan, ChirpCodec
from repro.errors import NoChannelAvailableError, ProtocolError
from repro.spectrum.airtime import AirtimeObservation, NodeReport
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap, union_all


@dataclass
class ApState:
    """Mutable AP protocol state.

    Attributes:
        main_channel: the BSS's operating channel (None while vacated).
        backup_channel: the advertised 5 MHz backup channel.
        reports: latest report per client id.
        last_backup_scan_us: when the scanner last checked the backup.
    """

    main_channel: WhiteFiChannel | None = None
    backup_channel: WhiteFiChannel | None = None
    reports: dict[str, NodeReport] = field(default_factory=dict)
    last_backup_scan_us: float = 0.0


class ApController:
    """Pure protocol logic for a WhiteFi AP (transport-agnostic).

    The controller owns the assignment and backup-channel decisions; the
    host (simulator or real radio shim) supplies observations and
    delivers the frames the controller asks for.

    Args:
        ssid_code: the BSS's time-domain chirp code.
        ap_map: the AP's local spectrum map.
        num_channels: UHF index space size.
        assigner: channel assigner (a default one is built if omitted).
        codec: chirp length codec shared by the BSS.
    """

    def __init__(
        self,
        ssid_code: int,
        ap_map: SpectrumMap,
        num_channels: int = constants.NUM_UHF_CHANNELS,
        assigner: ChannelAssigner | None = None,
        codec: ChirpCodec | None = None,
    ):
        self.ssid_code = ssid_code
        self.ap_map = ap_map
        self.num_channels = num_channels
        self.assigner = assigner or ChannelAssigner(num_channels)
        self.codec = codec or ChirpCodec()
        self.backup_plan = BackupChannelPlan(num_channels)
        self.state = ApState()

    # -- reports ------------------------------------------------------------------

    def accept_report(self, report: NodeReport) -> None:
        """Store a client's periodic spectrum/airtime report."""
        self.state.reports[report.node_id] = report

    def forget_client(self, node_id: str) -> None:
        """Drop a departed client's report."""
        self.state.reports.pop(node_id, None)

    def _client_maps(self) -> list[SpectrumMap]:
        return [r.spectrum_map for r in self.state.reports.values()]

    def _client_observations(self) -> list[AirtimeObservation]:
        return [r.airtime for r in self.state.reports.values()]

    def union_map(self) -> SpectrumMap:
        """OR of the AP's and all reported client maps."""
        return union_all([self.ap_map, *self._client_maps()])

    # -- assignment -----------------------------------------------------------------

    def evaluate(
        self,
        ap_observation: AirtimeObservation,
        reason: SwitchReason = SwitchReason.PERIODIC,
    ) -> AssignmentDecision:
        """Run one assignment evaluation and update the backup channel.

        Raises:
            NoChannelAvailableError: when no candidate is free everywhere.
        """
        decision = self.assigner.evaluate(
            self.ap_map,
            ap_observation,
            self._client_maps(),
            self._client_observations(),
            reason=reason,
        )
        self.state.main_channel = decision.channel
        self._refresh_backup()
        return decision

    def _refresh_backup(self) -> None:
        if self.state.main_channel is None:
            return
        backup = self.backup_plan.select_backup(
            self.union_map(), self.state.main_channel
        )
        # Keep the previous backup if no eligible non-overlapping channel
        # exists; chirps contend via CSMA, so overlap is survivable.
        if backup is not None:
            self.state.backup_channel = backup

    # -- incumbent handling -----------------------------------------------------------

    def incumbent_on_main(self, occupied_index: int) -> None:
        """React to an incumbent appearing under the main channel.

        The AP marks the channel occupied in its own map and vacates to
        the backup channel; reassignment happens from there (chirp
        exchange or direct re-evaluation).
        """
        self.ap_map = self.ap_map.with_occupied(occupied_index)
        self.state.main_channel = None

    def vacate_target(self) -> WhiteFiChannel:
        """Where a vacating node goes: the advertised backup channel.

        Raises:
            ProtocolError: if no backup channel was ever selected.
        """
        if self.state.backup_channel is None:
            raise ProtocolError("no backup channel available to vacate to")
        return self.state.backup_channel

    def backup_invalidated(self, occupied_index: int) -> WhiteFiChannel | None:
        """Select a secondary backup when the backup hosts an incumbent."""
        self.ap_map = self.ap_map.with_occupied(occupied_index)
        if self.state.backup_channel is None or self.state.main_channel is None:
            return None
        replacement = self.backup_plan.secondary_backup(
            self.union_map(), self.state.main_channel, self.state.backup_channel
        )
        self.state.backup_channel = replacement
        return replacement

    # -- chirp handling ---------------------------------------------------------------

    def chirp_is_ours(self, measured_duration_us: float) -> bool:
        """Does a SIFT-detected chirp burst belong to this BSS?

        Section 4.3: encoding the SSID in the chirp length lets the AP
        avoid retuning its main radio for chirps of clients associated
        with a different AP.
        """
        return self.codec.decode_duration(measured_duration_us) == self.ssid_code

    def reassign_after_chirp(
        self,
        chirped_maps: list[SpectrumMap],
        ap_observation: AirtimeObservation,
    ) -> AssignmentDecision:
        """Reassign spectrum using availability chirped on the backup channel.

        The chirped maps replace the stale reports of the disconnected
        nodes for this evaluation (they are OR-ed into the candidate
        constraint set).
        """
        maps = [self.ap_map, *self._client_maps(), *chirped_maps]
        union = union_all(maps)
        merged_ap_map = self.ap_map
        for idx in union.occupied_indices():
            merged_ap_map = merged_ap_map.with_occupied(idx)
        previous_map = self.ap_map
        self.ap_map = merged_ap_map
        try:
            decision = self.evaluate(ap_observation, SwitchReason.DISCONNECTION)
        finally:
            self.ap_map = previous_map
        self.state.main_channel = decision.channel
        self._refresh_backup()
        return decision
