"""Adaptive spectrum assignment — Section 4.1.

The assigner turns per-node spectrum maps and airtime observations into a
channel decision:

1. OR the spectrum maps: only UHF channels free at *every* node qualify.
2. Enumerate every candidate ``(F, W)`` whose span is free everywhere.
3. Score each candidate with ``N * MCham_AP + sum_n MCham_n``.
4. Apply hysteresis: a *voluntary* switch must beat the current channel's
   score by a margin (preventing ping-ponging, as in DenseAP [19]);
   an *involuntary* switch (incumbent appeared) ignores hysteresis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro import constants
from repro.errors import NoChannelAvailableError, SpectrumMapError
from repro.core.mcham import best_channel, network_score
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel, valid_channels
from repro.spectrum.spectrum_map import SpectrumMap, union_all


class SwitchReason(enum.Enum):
    """Why a (re)assignment was requested."""

    BOOT = "boot"
    PERIODIC = "periodic"
    PERFORMANCE_DROP = "performance-drop"
    INCUMBENT = "incumbent"
    DISCONNECTION = "disconnection"

    @property
    def voluntary(self) -> bool:
        """Voluntary switches are subject to hysteresis; involuntary are not."""
        return self in (SwitchReason.PERIODIC, SwitchReason.PERFORMANCE_DROP)


@dataclass(frozen=True)
class AssignmentDecision:
    """The outcome of one assignment evaluation.

    Attributes:
        channel: the selected channel.
        score: its network score.
        switched: True when the decision differs from the previous channel.
        previous: the channel in use before the evaluation (None at boot).
        candidates_considered: size of the scored candidate set.
    """

    channel: WhiteFiChannel
    score: float
    switched: bool
    previous: WhiteFiChannel | None
    candidates_considered: int


class ChannelAssigner:
    """The AP-side spectrum assignment state machine.

    Args:
        num_channels: UHF index space size.
        hysteresis_margin: relative score margin a voluntary switch must
            clear (0 disables hysteresis — the ablation configuration).
        ap_weight: override for the AP weighting in the score (None means
            the paper's N-times weighting).
        aggregation: MCham aggregation ("product", or "min"/"max" for the
            ablation).
    """

    def __init__(
        self,
        num_channels: int = constants.NUM_UHF_CHANNELS,
        hysteresis_margin: float = constants.HYSTERESIS_MARGIN,
        ap_weight: float | None = None,
        aggregation: str = "product",
    ):
        if hysteresis_margin < 0:
            raise SpectrumMapError(
                f"hysteresis margin must be >= 0, got {hysteresis_margin}"
            )
        self.num_channels = num_channels
        self.hysteresis_margin = hysteresis_margin
        self.ap_weight = ap_weight
        self.aggregation = aggregation
        self.current: WhiteFiChannel | None = None

    # -- scoring ------------------------------------------------------------

    def candidate_channels(
        self, maps: Sequence[SpectrumMap]
    ) -> list[WhiteFiChannel]:
        """Candidates whose span is incumbent-free at every node."""
        union = union_all(list(maps))
        return valid_channels(union.free_indices(), self.num_channels)

    def score(
        self,
        channel: WhiteFiChannel,
        ap_observation: AirtimeObservation,
        client_observations: Sequence[AirtimeObservation],
    ) -> float:
        """Network score of one candidate channel."""
        return network_score(
            channel,
            ap_observation,
            client_observations,
            ap_weight=self.ap_weight,
            aggregation=self.aggregation,
        )

    # -- decisions -----------------------------------------------------------

    def evaluate(
        self,
        ap_map: SpectrumMap,
        ap_observation: AirtimeObservation,
        client_maps: Sequence[SpectrumMap] = (),
        client_observations: Sequence[AirtimeObservation] = (),
        *,
        reason: SwitchReason = SwitchReason.PERIODIC,
    ) -> AssignmentDecision:
        """Run one assignment evaluation.

        Args:
            ap_map: the AP's local spectrum map.
            ap_observation: the AP's airtime observation.
            client_maps: one map per associated client.
            client_observations: airtime observation per client, aligned
                with *client_maps*.
            reason: what triggered the evaluation; involuntary reasons
                bypass hysteresis and forbid staying on the now-invalid
                current channel.

        Raises:
            NoChannelAvailableError: when no candidate span is free at
                every node.
        """
        if len(client_maps) != len(client_observations):
            raise SpectrumMapError(
                "client maps and observations must align: "
                f"{len(client_maps)} vs {len(client_observations)}"
            )
        candidates = self.candidate_channels([ap_map, *client_maps])
        if reason is SwitchReason.INCUMBENT and self.current is not None:
            # The current channel just became unusable; never re-select it.
            candidates = [c for c in candidates if c != self.current]
        if not candidates:
            raise NoChannelAvailableError(
                "no (F, W) channel is free at every node"
            )

        chosen, chosen_score = best_channel(
            candidates,
            lambda ch: self.score(ch, ap_observation, client_observations),
        )
        assert chosen is not None  # candidates is non-empty

        previous = self.current
        if (
            reason.voluntary
            and previous is not None
            and previous in candidates
        ):
            current_score = self.score(
                previous, ap_observation, client_observations
            )
            # Hysteresis: keep the incumbent choice unless clearly beaten.
            if chosen_score < current_score * (1.0 + self.hysteresis_margin):
                chosen, chosen_score = previous, current_score

        switched = chosen != previous
        self.current = chosen
        return AssignmentDecision(
            channel=chosen,
            score=chosen_score,
            switched=switched,
            previous=previous,
            candidates_considered=len(candidates),
        )

    def revert_to(self, channel: WhiteFiChannel) -> None:
        """Force the current channel (used when a switch is rolled back).

        Section 4.1: "if the measured performance of the new channel is
        less [than] the previous channel, the AP will re-evaluate its
        channel selection, possibly switching back".
        """
        self.current = channel
