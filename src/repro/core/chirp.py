"""The chirping disconnection protocol — Section 4.3.

When an incumbent (typically a wireless microphone) appears on the
channel an AP-client pair is using, the detecting node must vacate
immediately — even a single packet audibly corrupts a microphone
transmission (Section 2.3).  WhiteFi's protocol:

* The AP advertises a 5 MHz **backup channel** in its beacons.
* A node that detects an incumbent (or loses connectivity) switches to
  the backup channel and transmits **chirps** carrying its white-space
  availability.
* The AP's secondary radio SIFT-scans the backup channel periodically
  (every 3 s in the prototype); the main radio only retunes once a chirp
  is seen.
* The chirp's *length* encodes the client's SSID code in the time domain
  — SIFT reads it without decoding, "a low-bitrate OOK-modulated
  channel" — so the AP ignores chirps of clients associated elsewhere.
* If the backup channel itself hosts an incumbent, an arbitrary free
  channel becomes the secondary backup, and the AP additionally sweeps
  all channels for lost nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ProtocolError
from repro.phy.timing import timing_for_width
from repro.sift.detector import Burst, edge_bias_us
from repro.spectrum.channels import WhiteFiChannel, valid_channels
from repro.spectrum.spectrum_map import SpectrumMap

#: Chirps always use the narrowest width: a backup channel is one UHF
#: channel ("The AP maintains a separate 5 MHz backup channel").
CHIRP_WIDTH_MHZ = 5.0


@dataclass(frozen=True)
class ChirpMessage:
    """A decoded chirp.

    Attributes:
        ssid_code: small integer identifying the BSS (time-domain OOK).
        node_id: sender (available only after full decode by the main
            radio, not from SIFT alone).
        spectrum_map: the sender's advertised white-space availability.
    """

    ssid_code: int
    node_id: str = ""
    spectrum_map: SpectrumMap | None = None


class ChirpCodec:
    """Maps SSID codes to chirp frame lengths and back.

    The chirp payload length is ``base + code * step`` bytes; on air, each
    extra byte-step stretches the burst by a fixed number of OFDM symbols,
    so SIFT can recover the code from the measured burst duration alone.

    Args:
        base_bytes: payload length for code 0.
        step_bytes: payload increment per code step (must yield at least
            one extra OFDM symbol so codes are separable after smoothing).
        max_code: largest encodable SSID code.
    """

    def __init__(
        self, base_bytes: int = 40, step_bytes: int = 24, max_code: int = 31
    ):
        if base_bytes < constants.ACK_FRAME_BYTES:
            raise ProtocolError(
                f"chirp base must be >= minimum frame, got {base_bytes}"
            )
        if step_bytes < 1 or max_code < 0:
            raise ProtocolError("invalid chirp codec parameters")
        timing = timing_for_width(CHIRP_WIDTH_MHZ)
        step_us = (
            timing.frame_duration_us(base_bytes + step_bytes)
            - timing.frame_duration_us(base_bytes)
        )
        if step_us <= 2 * edge_bias_us():
            raise ProtocolError(
                f"chirp step of {step_bytes} bytes stretches the burst by "
                f"only {step_us:.1f} us — not separable after SIFT smoothing"
            )
        self.base_bytes = base_bytes
        self.step_bytes = step_bytes
        self.max_code = max_code
        self._timing = timing

    def frame_bytes(self, ssid_code: int) -> int:
        """Chirp frame length (bytes) encoding *ssid_code*."""
        if not 0 <= ssid_code <= self.max_code:
            raise ProtocolError(
                f"SSID code {ssid_code} outside 0..{self.max_code}"
            )
        return self.base_bytes + ssid_code * self.step_bytes

    def duration_us(self, ssid_code: int) -> float:
        """On-air chirp duration encoding *ssid_code* (5 MHz width)."""
        return self._timing.frame_duration_us(self.frame_bytes(ssid_code))

    def decode_duration(self, measured_duration_us: float) -> int | None:
        """Recover the SSID code from a measured burst duration.

        Accounts for the detector's edge bias; returns None when the
        duration lands between code slots (or outside the code range).
        """
        corrected = measured_duration_us - edge_bias_us()
        step_us = self.duration_us(1) - self.duration_us(0)
        code_f = (corrected - self.duration_us(0)) / step_us
        code = round(code_f)
        if not 0 <= code <= self.max_code:
            return None
        if abs(code_f - code) > 0.35:
            return None
        return code

    def decode_burst(self, burst: Burst) -> int | None:
        """Recover the SSID code from a detected SIFT burst."""
        return self.decode_duration(burst.duration_us)


class BackupChannelPlan:
    """Backup-channel selection and failover.

    Args:
        num_channels: UHF index space size.
    """

    def __init__(self, num_channels: int = constants.NUM_UHF_CHANNELS):
        self.num_channels = num_channels

    def select_backup(
        self,
        union_map: SpectrumMap,
        main_channel: WhiteFiChannel,
        exclude: tuple[int, ...] = (),
    ) -> WhiteFiChannel | None:
        """Pick a 5 MHz backup channel.

        Preference order: free channels outside the main channel's span
        (so an incumbent on the main channel cannot also kill the backup),
        nearest to the main channel first (minimising retune distance).
        Channels in *exclude* (e.g. a backup just invalidated by an
        incumbent) are skipped.  Overlap with other BSSs is acceptable —
        chirps contend via CSMA like data (Section 4.3).

        Returns None when no eligible channel exists.
        """
        candidates = [
            c
            for c in valid_channels(union_map.free_indices(), self.num_channels)
            if c.width_mhz == CHIRP_WIDTH_MHZ
            and c.center_index not in exclude
            and not c.overlaps(main_channel)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda c: abs(c.center_index - main_channel.center_index),
        )

    def secondary_backup(
        self,
        union_map: SpectrumMap,
        main_channel: WhiteFiChannel,
        failed_backup: WhiteFiChannel,
    ) -> WhiteFiChannel | None:
        """An arbitrary replacement when the backup hosts an incumbent."""
        return self.select_backup(
            union_map, main_channel, exclude=(failed_backup.center_index,)
        )
