"""The WhiteFi client control plane.

Clients (Sections 4.1 and 4.3):

* periodically report their spectrum map and airtime observation to the
  AP;
* follow channel-switch broadcasts;
* track the backup channel advertised in beacons;
* detect incumbents locally, vacate the main channel without
  transmitting on it, and chirp on the backup channel;
* infer disconnection from beacon/data silence and recover via the
  backup channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import constants
from repro.core.chirp import ChirpCodec
from repro.errors import ProtocolError
from repro.spectrum.airtime import AirtimeObservation, NodeReport
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

#: A client declares itself disconnected after this much silence from the
#: AP (several missed beacons).
DEFAULT_SILENCE_TIMEOUT_US = 400_000.0


class ClientPhase(enum.Enum):
    """Client connectivity phases."""

    CONNECTED = "connected"
    #: On the backup channel, chirping and listening for the AP.
    CHIRPING = "chirping"


@dataclass
class ChirpPlan:
    """What a vacating client transmits on the backup channel.

    Attributes:
        channel: the backup channel to chirp on.
        frame_bytes: chirp frame size encoding the BSS's SSID code.
        spectrum_map: availability advertised in the chirp body.
    """

    channel: WhiteFiChannel
    frame_bytes: int
    spectrum_map: SpectrumMap


class ClientController:
    """Pure protocol logic for a WhiteFi client (transport-agnostic).

    Args:
        node_id: this client's identifier.
        ssid_code: the BSS chirp code.
        spectrum_map: the client's local spectrum map.
        codec: chirp codec shared with the AP.
        silence_timeout_us: AP-silence threshold for declaring
            disconnection.
    """

    def __init__(
        self,
        node_id: str,
        ssid_code: int,
        spectrum_map: SpectrumMap,
        codec: ChirpCodec | None = None,
        silence_timeout_us: float = DEFAULT_SILENCE_TIMEOUT_US,
    ):
        self.node_id = node_id
        self.ssid_code = ssid_code
        self.spectrum_map = spectrum_map
        self.codec = codec or ChirpCodec()
        self.silence_timeout_us = silence_timeout_us

        self.phase = ClientPhase.CONNECTED
        self.main_channel: WhiteFiChannel | None = None
        self.backup_channel: WhiteFiChannel | None = None
        self.last_heard_ap_us = 0.0

    # -- steady-state protocol -------------------------------------------------------

    def build_report(
        self, airtime: AirtimeObservation, now_us: float
    ) -> NodeReport:
        """The periodic control message sent to the AP (Section 4.1)."""
        return NodeReport(
            node_id=self.node_id,
            spectrum_map=self.spectrum_map,
            airtime=airtime,
            timestamp_us=now_us,
        )

    def heard_from_ap(self, now_us: float) -> None:
        """Note AP activity (beacon or data) for silence tracking."""
        self.last_heard_ap_us = now_us

    def on_beacon(
        self, backup_channel: WhiteFiChannel | None, now_us: float
    ) -> None:
        """Process a beacon: refresh the advertised backup channel."""
        self.heard_from_ap(now_us)
        if backup_channel is not None:
            self.backup_channel = backup_channel

    def on_channel_switch(self, new_channel: WhiteFiChannel, now_us: float) -> None:
        """Follow the AP's channel-switch broadcast."""
        self.heard_from_ap(now_us)
        self.main_channel = new_channel
        self.phase = ClientPhase.CONNECTED

    def is_disconnected(self, now_us: float) -> bool:
        """Has the AP been silent beyond the timeout?

        Section 4.3: "If a client senses that a disconnection has
        occurred (e.g., because no data packets have been received in a
        given interval), it switches to the backup channel".
        """
        return (now_us - self.last_heard_ap_us) > self.silence_timeout_us

    # -- incumbent / disconnection handling ---------------------------------------------

    def incumbent_detected(self, occupied_index: int) -> None:
        """Mark a locally detected incumbent in the client's map."""
        self.spectrum_map = self.spectrum_map.with_occupied(occupied_index)

    def must_vacate(self) -> bool:
        """Does the current main channel overlap a local incumbent?"""
        if self.main_channel is None:
            return False
        return not self.spectrum_map.span_is_free(
            self.main_channel.spanned_indices
        )

    def start_chirping(self) -> ChirpPlan:
        """Vacate to the backup channel and produce the chirp plan.

        Raises:
            ProtocolError: when no backup channel is known (the client
                has never decoded a beacon) or the backup itself hosts a
                local incumbent and no fallback exists.
        """
        if self.backup_channel is None:
            raise ProtocolError(
                f"{self.node_id}: no backup channel known; cannot chirp"
            )
        channel = self.backup_channel
        if not self.spectrum_map.span_is_free(channel.spanned_indices):
            channel = self._secondary_backup()
        self.phase = ClientPhase.CHIRPING
        self.main_channel = None
        return ChirpPlan(
            channel=channel,
            frame_bytes=self.codec.frame_bytes(self.ssid_code),
            spectrum_map=self.spectrum_map,
        )

    def _secondary_backup(self) -> WhiteFiChannel:
        """An arbitrary free 5 MHz channel when the backup is occupied."""
        free = self.spectrum_map.free_indices()
        if not free:
            raise ProtocolError(
                f"{self.node_id}: no free channel available for chirping"
            )
        return WhiteFiChannel(free[0], 5.0)

    def reconnect(self, new_channel: WhiteFiChannel, now_us: float) -> None:
        """Rejoin the BSS on *new_channel* after a chirp exchange."""
        self.main_channel = new_channel
        self.phase = ClientPhase.CONNECTED
        self.heard_from_ap(now_us)
