"""AP discovery — Section 4.2.2 and Algorithm 1.

Three algorithms, sharing a time-accounting session:

* **Non-SIFT baseline**: tune the main transceiver to every candidate
  ``(F, W)`` combination in the client's free spectrum and listen one
  beacon interval at each.  With 30 channels and 3 widths this is up to
  84 dwells plus a PLL switch per dwell.
* **L-SIFT**: SIFT-scan each free UHF channel from lowest to highest.
  Scanning bottom-up means the first detection pins the transmitter's
  center exactly (``Fc = Fs + E``): the lowest scan index that can see a
  width-W transmitter is its lowest spanned channel.
* **J-SIFT**: scan staggered grids, widest width first (skip 5 channels
  at a time, then 3, then 1, never rescanning), then run an endgame that
  tunes the transceiver over the ``Fs +/- W/2`` uncertainty range to find
  the exact center by decoding beacons.

Expected scan counts (paper):
``E[L-SIFT] = NC / 2``,
``E[J-SIFT] = (NC + 2^(NW-1) + (NW-1)/2) / NW``,
crossing near NC ≈ 10 for NW = 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.errors import DiscoveryError
from repro.phy.capture import center_uncertainty_indices
from repro.radio.scanner import Scanner
from repro.radio.transceiver import Transceiver
from repro.spectrum.channels import WhiteFiChannel, valid_channels
from repro.spectrum.spectrum_map import SpectrumMap


@dataclass
class DiscoveryOutcome:
    """Result of one discovery run.

    Attributes:
        channel: the discovered AP channel (None if discovery failed).
        elapsed_us: total wall-clock time spent, including retunes and
            dwells.
        sift_scans: number of SIFT captures performed.
        beacon_dwells: number of transceiver listen periods.
        scanned_indices: UHF indices SIFT-scanned, in order.
    """

    channel: WhiteFiChannel | None
    elapsed_us: float
    sift_scans: int = 0
    beacon_dwells: int = 0
    scanned_indices: list[int] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """True when an AP channel was identified and verified."""
        return self.channel is not None


class DiscoverySession:
    """Shared state for one discovery run: radios, map, and a clock.

    Args:
        scanner: the SIFT-capable secondary radio.
        transceiver: the main radio used to verify beacons.
        client_map: the client's local spectrum map; occupied channels
            are never scanned ("the client did not scan these channels
            for an AP", Section 5.2).
        dwell_us: listen/capture duration per attempt; defaults to one
            beacon interval plus margin so a beaconing AP is always
            caught.
        start_us: environment-clock time the session begins at.
    """

    def __init__(
        self,
        scanner: Scanner,
        transceiver: Transceiver,
        client_map: SpectrumMap,
        dwell_us: float = constants.BEACON_DWELL_US,
        start_us: float = 0.0,
    ):
        self.scanner = scanner
        self.transceiver = transceiver
        self.client_map = client_map
        self.dwell_us = dwell_us
        self.clock_us = start_us
        self.sift_scans = 0
        self.beacon_dwells = 0
        self.scanned_indices: list[int] = []

    @property
    def free_indices(self) -> tuple[int, ...]:
        """UHF indices the client may scan."""
        return self.client_map.free_indices()

    def sift_scan(self, uhf_index: int):
        """SIFT-scan one UHF channel, advancing the clock."""
        self.clock_us += self.scanner.tune_cost_us(uhf_index)
        result = self.scanner.sift_scan(uhf_index, self.clock_us, self.dwell_us)
        self.clock_us += self.dwell_us
        self.sift_scans += 1
        self.scanned_indices.append(uhf_index)
        return result

    def beacon_check(self, channel: WhiteFiChannel) -> bool:
        """Tune the transceiver to *channel* and listen for one dwell."""
        self.clock_us += self.transceiver.tune(channel)
        heard = self.transceiver.beacon_heard(self.clock_us, self.dwell_us)
        self.clock_us += self.dwell_us
        self.beacon_dwells += 1
        return heard

    def outcome(self, channel: WhiteFiChannel | None) -> DiscoveryOutcome:
        """Package the session counters into an outcome."""
        return DiscoveryOutcome(
            channel=channel,
            elapsed_us=self.clock_us,
            sift_scans=self.sift_scans,
            beacon_dwells=self.beacon_dwells,
            scanned_indices=self.scanned_indices,
        )


class BaselineDiscovery:
    """The non-SIFT baseline: sweep every (F, W) with the main radio.

    The sweep visits candidates lowest-center first, cycling widths at
    each center, and stops at the first decoded beacon.
    """

    name = "baseline"

    def discover(self, session: DiscoverySession) -> DiscoveryOutcome:
        """Run the sweep; returns the outcome (channel None on failure)."""
        candidates = valid_channels(
            session.free_indices, len(session.client_map)
        )
        # Order by center then width: a frequency sweep, as a Wi-Fi
        # scanning loop would do.
        for channel in sorted(
            candidates, key=lambda c: (c.center_index, c.width_mhz)
        ):
            if session.beacon_check(channel):
                return session.outcome(channel)
        return session.outcome(None)


class LSiftDiscovery:
    """Linear SIFT discovery: scan free UHF channels bottom-up.

    On first detection at scan index ``s`` with width ``W``, the center is
    ``s + span // 2`` (the transmitter is seen first from its lowest
    spanned channel).  A single beacon check then verifies the channel.
    If verification fails (e.g. the spectrum maps at AP and client
    disagree and the client first saw the AP mid-span), the remaining
    uncertainty candidates are tried in order.
    """

    name = "l-sift"

    def discover(self, session: DiscoverySession) -> DiscoveryOutcome:
        """Run the linear scan; returns the outcome."""
        single = _single_candidate(session)
        if single is not None:
            return session.outcome(
                single if session.beacon_check(single) else None
            )
        num_channels = len(session.client_map)
        for uhf_index in session.free_indices:
            result = session.sift_scan(uhf_index)
            if not result.transmitter_detected:
                continue
            width = max(result.widths_detected)
            half = constants.span_channels(width) // 2
            ordered = [uhf_index + half] + [
                c
                for c in center_uncertainty_indices(
                    uhf_index, width, num_channels
                )
                if c != uhf_index + half
            ]
            for center in ordered:
                lo, hi = center - half, center + half
                if lo < 0 or hi >= num_channels:
                    continue
                channel = WhiteFiChannel(center, width)
                if session.beacon_check(channel):
                    return session.outcome(channel)
        return session.outcome(None)


class JSiftDiscovery:
    """Jump SIFT discovery (Algorithm 1): staggered scan + endgame.

    Phase 1 scans the *free-channel sequence* on a stride grid, widest
    width first: stride 5 (20 MHz), then 3 (10 MHz), then 1 (5 MHz),
    skipping positions already scanned.  Striding through the free
    sequence generalises the paper's contiguous-fragment experiments to
    fragmented maps: a width-W transmitter occupies ``span`` consecutive
    free channels, which are consecutive in the sequence, so a stride of
    ``span`` cannot step over it.

    Phase 2 (endgame) resolves the center-frequency uncertainty: the
    transceiver tunes to each candidate center within ``Fs +/- W/2`` and
    listens for a decodable beacon.
    """

    name = "j-sift"

    def discover(self, session: DiscoverySession) -> DiscoveryOutcome:
        """Run the staggered scan and endgame; returns the outcome."""
        single = _single_candidate(session)
        if single is not None:
            return session.outcome(
                single if session.beacon_check(single) else None
            )
        free = list(session.free_indices)
        num_channels = len(session.client_map)
        scanned: set[int] = set()
        detection: tuple[int, float] | None = None

        strides = sorted(
            (constants.span_channels(w) for w in constants.CHANNEL_WIDTHS_MHZ),
            reverse=True,
        )
        for stride in strides:
            position = 0
            while position < len(free) and detection is None:
                uhf_index = free[position]
                if uhf_index in scanned:
                    position += 1
                    continue
                result = session.sift_scan(uhf_index)
                scanned.add(uhf_index)
                if result.transmitter_detected:
                    detection = (uhf_index, max(result.widths_detected))
                    break
                position += stride
            if detection is not None:
                break

        if detection is None:
            return session.outcome(None)

        scan_index, width = detection
        half = constants.span_channels(width) // 2
        for center in center_uncertainty_indices(scan_index, width, num_channels):
            channel = WhiteFiChannel(center, width)
            if session.beacon_check(channel):
                return session.outcome(channel)
        raise DiscoveryError(
            f"J-SIFT detected width {width} MHz near index {scan_index} but "
            "no candidate center verified — inconsistent environment"
        )


#: Discovery algorithms by protocol name — the vocabulary the
#: ``"discovery"`` run kind (:mod:`repro.experiments`) accepts.
DISCOVERY_ALGORITHMS: dict[str, type] = {
    cls.name: cls
    for cls in (BaselineDiscovery, LSiftDiscovery, JSiftDiscovery)
}


def discovery_algorithm(name: str):
    """Instantiate a discovery algorithm by its protocol name.

    Raises:
        DiscoveryError: for an unknown name, listing the known
            algorithms in sorted order.
    """
    try:
        return DISCOVERY_ALGORITHMS[name]()
    except KeyError:
        raise DiscoveryError(
            f"unknown discovery algorithm {name!r}; expected one of "
            f"{tuple(sorted(DISCOVERY_ALGORITHMS))}"
        ) from None


def _single_candidate(session: DiscoverySession) -> WhiteFiChannel | None:
    """The only possible AP channel, when the map admits exactly one.

    With a single candidate (e.g. a one-channel fragment) the SIFT
    algorithms degenerate to the baseline: tune the main radio straight
    to the unique (F, W) and listen — a SIFT scan would add a dwell
    without eliminating anything.  This matches Figure 8's observation
    that all algorithms take the same time on a one-channel fragment.
    """
    candidates = valid_channels(session.free_indices, len(session.client_map))
    if len(candidates) == 1:
        return candidates[0]
    return None


# ---------------------------------------------------------------------------
# Analytical expectations (Section 4.2.2)
# ---------------------------------------------------------------------------


def expected_scans_lsift(num_free_channels: int) -> float:
    """Expected SIFT scans for L-SIFT: ``NC / 2``."""
    if num_free_channels < 1:
        raise DiscoveryError("need at least one free channel")
    return num_free_channels / 2.0


def expected_scans_jsift(num_free_channels: int, num_widths: int = 3) -> float:
    """Expected scans for J-SIFT: ``(NC + 2^(NW-1) + (NW-1)/2) / NW``.

    The paper's closed form; it predicts the L-vs-J crossover near
    NC ≈ 10 for NW = 3.
    """
    if num_free_channels < 1:
        raise DiscoveryError("need at least one free channel")
    if num_widths < 1:
        raise DiscoveryError("need at least one width")
    return (
        num_free_channels + 2 ** (num_widths - 1) + (num_widths - 1) / 2.0
    ) / num_widths


def expected_scans_baseline(
    num_free_channels: int, num_widths: int = 3
) -> float:
    """Expected dwells for the non-SIFT baseline: ``~NC * NW / 2``."""
    if num_free_channels < 1:
        raise DiscoveryError("need at least one free channel")
    return num_free_channels * num_widths / 2.0


def crossover_channels(num_widths: int = 3) -> float:
    """Fragment size above which J-SIFT beats L-SIFT in expectation.

    Solving ``NC/2 > (NC + 2^(NW-1) + (NW-1)/2) / NW`` for NC:

    >>> crossover_channels(3)
    10.0
    """
    extra = 2 ** (num_widths - 1) + (num_widths - 1) / 2.0
    return 2.0 * extra / (num_widths - 2)
