"""The MCham (multichannel airtime) metric — Section 4.1.

For a node *n* and UHF channel *c*, the expected share of *c* is

    rho_n(c) = max(1 - A_c^n,  1 / (B_c^n + 1))            (Eq. 1)

where ``A_c^n`` is the busy-airtime fraction measured at *n* and
``B_c^n`` the number of other APs observed on *c*.  The intuition: when
the channel is mostly free, the residual airtime ``1 - A`` predicts the
share; when it is saturated by ``B`` contending APs, CSMA still grants a
fair share ``1/(B+1)``.

For a candidate WhiteFi channel ``(F, W)`` spanning UHF channels
``c in (F, W)``:

    MCham_n(F, W) = (W / 5 MHz) * prod_{c} rho_n(c)        (Eq. 2)

The product — not the min or max — is essential: traffic on a narrower
overlapping channel contends with the whole wider channel, so shares
multiply.  The ``W / 5 MHz`` factor scales by the optimal capacity of the
candidate relative to the single-UHF-channel reference.

The AP's final objective (Section 4.1, "Channel selection") weights its
own metric by the number of clients, reflecting downlink-dominated
traffic:

    score(F, W) = N * MCham_AP(F, W) + sum_n MCham_n(F, W)
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro import constants
from repro.errors import ChannelError
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel


def expected_share(busy_fraction: float, other_ap_count: int) -> float:
    """Equation 1: ``rho_n(c) = max(1 - A, 1/(B + 1))``.

    Args:
        busy_fraction: measured airtime utilization ``A`` in [0, 1].
        other_ap_count: number of other APs ``B`` on the channel (>= 0).

    >>> expected_share(0.9, 1)
    0.5
    >>> expected_share(0.2, 1)
    0.8
    """
    if not 0.0 <= busy_fraction <= 1.0:
        raise ChannelError(f"busy fraction {busy_fraction!r} outside [0, 1]")
    if other_ap_count < 0:
        raise ChannelError(f"AP count must be >= 0, got {other_ap_count}")
    return max(1.0 - busy_fraction, 1.0 / (other_ap_count + 1))


def mcham(
    channel: WhiteFiChannel,
    observation: AirtimeObservation,
    *,
    aggregation: str = "product",
) -> float:
    """Equation 2: the multichannel airtime metric for one node.

    Args:
        channel: candidate ``(F, W)``.
        observation: the node's per-UHF-channel ``A_c`` / ``B_c`` view.
        aggregation: "product" (the paper's metric); "min" and "max" are
            provided for the ablation showing they underestimate
            contention across overlapping widths.

    Returns:
        The predicted throughput in units of one empty 5 MHz channel.
        With no load anywhere this is 1, 2, 4 for W = 5, 10, 20 MHz.
    """
    shares = [
        expected_share(observation.busy(c), observation.aps(c))
        for c in channel.spanned_indices
    ]
    if aggregation == "product":
        combined = math.prod(shares)
    elif aggregation == "min":
        combined = min(shares)
    elif aggregation == "max":
        combined = max(shares)
    else:
        raise ChannelError(
            f"unknown aggregation {aggregation!r}; "
            "expected 'product', 'min', or 'max'"
        )
    return channel.capacity_factor() * combined


def mcham_all_nodes(
    channel: WhiteFiChannel,
    observations: Sequence[AirtimeObservation],
    *,
    aggregation: str = "product",
) -> list[float]:
    """MCham of *channel* at every node, in observation order."""
    return [mcham(channel, obs, aggregation=aggregation) for obs in observations]


def network_score(
    channel: WhiteFiChannel,
    ap_observation: AirtimeObservation,
    client_observations: Sequence[AirtimeObservation],
    *,
    ap_weight: float | None = None,
    aggregation: str = "product",
) -> float:
    """The AP's channel-selection objective.

    ``N * MCham_AP + sum_n MCham_n`` with ``N`` the client count; the AP
    weight is overridable for the weighting ablation (``ap_weight=1``
    gives the unweighted sum).

    With no clients, the score is just the AP's own MCham (bootstrap,
    Section 4.1: "When bootstrapping, the AP will not have any clients
    and will perform channel selection without client input").
    """
    ap_metric = mcham(channel, ap_observation, aggregation=aggregation)
    if not client_observations:
        return ap_metric
    n = len(client_observations)
    weight = float(n) if ap_weight is None else float(ap_weight)
    return weight * ap_metric + sum(
        mcham(channel, obs, aggregation=aggregation)
        for obs in client_observations
    )


def channel_preference_key(
    score: float, channel: WhiteFiChannel
) -> tuple[float, float, int]:
    """The canonical channel-ranking key (higher tuple = preferred).

    Score first; ties prefer wider channels, then lower center
    indices, so repeated evaluations are stable.  Shared by
    :func:`best_channel` and any ranked candidate list (the citywide
    backup-channel ordering) so primary and backup preferences can
    never diverge.
    """
    return (score, channel.width_mhz, -channel.center_index)


def best_channel(
    candidates: Iterable[WhiteFiChannel],
    score: Callable[[WhiteFiChannel], float],
) -> tuple[WhiteFiChannel | None, float]:
    """Argmax of *score* over *candidates* (deterministic tie-break).

    Ties break via :func:`channel_preference_key`.
    """
    best: WhiteFiChannel | None = None
    best_score = -math.inf
    for channel in candidates:
        s = score(channel)
        if best is None or channel_preference_key(
            s, channel
        ) > channel_preference_key(best_score, best):
            best, best_score = channel, s
    return best, best_score
