"""A full WhiteFi BSS wired into the discrete-event simulator.

This is the message-level integration of the control planes: beacons
(with the backup-channel IE), client reports, channel-switch broadcasts,
local incumbent sensing, chirping on the backup channel, the AP's
periodic backup scan, and reconnection — the machinery evaluated in
Sections 5.3 and 5.4.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import constants
from repro.core.ap import ApController
from repro.core.assignment import SwitchReason
from repro.core.client import ClientController, ClientPhase
from repro.errors import ProtocolError
from repro.mac.frames import (
    Frame,
    FrameType,
    beacon_frame,
    report_frame,
)
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.sim.sensors import GroundTruthSensor
from repro.sim.traffic import SaturatingSource
from repro.sim.world import NodeRoster
from repro.spectrum.incumbents import IncumbentField
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

#: How often nodes poll their incumbent sensor (the scanner continuously
#: monitors; this is the reaction granularity).
DEFAULT_SENSING_INTERVAL_US = 100_000.0

#: How often clients send their spectrum/airtime reports.
DEFAULT_REPORT_INTERVAL_US = 1_000_000.0

#: How often a chirping client repeats its chirp.
DEFAULT_CHIRP_INTERVAL_US = 100_000.0


@dataclass
class DisconnectionEvent:
    """Timeline of one disconnection/reconnection episode.

    Attributes:
        mic_onset_us: when the incumbent became active.
        vacated_us: when the detecting node left the main channel.
        chirp_heard_us: when the AP's backup scan picked up the chirp.
        reconnected_us: when data flow resumed on the new channel.
        new_channel: the post-recovery operating channel.
    """

    mic_onset_us: float
    vacated_us: float | None = None
    chirp_heard_us: float | None = None
    reconnected_us: float | None = None
    new_channel: WhiteFiChannel | None = None

    @property
    def recovery_time_us(self) -> float | None:
        """Total outage: mic onset to resumed operation."""
        if self.reconnected_us is None:
            return None
        return self.reconnected_us - self.mic_onset_us


class WhiteFiBss:
    """An AP plus clients running the full WhiteFi protocol in the sim.

    Args:
        engine / medium: the simulation substrate.
        incumbents: the incumbent field all nodes sense.
        ap_map: the AP's initial spectrum map.
        client_maps: one map per client.
        ssid_code: the BSS chirp code.
        seed: randomness seed.
        traffic: start saturating downlink flows when True.
        backup_scan_interval_us: AP backup-channel scan period (3 s in
            the prototype).
    """

    def __init__(
        self,
        engine: Engine,
        medium: Medium,
        incumbents: IncumbentField,
        ap_map: SpectrumMap,
        client_maps: list[SpectrumMap],
        ssid_code: int = 1,
        seed: int = 0,
        traffic: bool = True,
        backup_scan_interval_us: float = constants.BACKUP_SCAN_INTERVAL_US,
        sensing_interval_us: float = DEFAULT_SENSING_INTERVAL_US,
        report_interval_us: float = DEFAULT_REPORT_INTERVAL_US,
    ):
        self.engine = engine
        self.medium = medium
        self.incumbents = incumbents
        self.sensor = GroundTruthSensor(medium)
        self.rng = random.Random(seed)
        self.traffic = traffic
        self.backup_scan_interval_us = backup_scan_interval_us
        self.sensing_interval_us = sensing_interval_us
        self.report_interval_us = report_interval_us

        self.ap_ctrl = ApController(ssid_code, ap_map, len(ap_map))
        self.roster = NodeRoster(engine, medium, self.rng)
        self.nodes = self.roster.nodes
        self.ap_node = self.roster.add_node(
            "ap", "whitefi", None, on_frame_received=self._ap_received
        )
        self.clients: list[tuple[ClientController, SimNode]] = []

        for i, cmap in enumerate(client_maps):
            ctrl = ClientController(f"client{i}", ssid_code, cmap)
            node = self.roster.add_node(
                f"client{i}",
                "whitefi",
                None,
                on_frame_received=self._client_received_factory(ctrl),
            )
            self.clients.append((ctrl, node))

        self.disconnections: list[DisconnectionEvent] = []
        self._active_episode: DisconnectionEvent | None = None
        self._last_backup_scan_us = 0.0

    # -- bring-up -----------------------------------------------------------------------

    def start(self) -> None:
        """Boot the BSS: select the initial channel and start all loops."""
        decision = self.ap_ctrl.evaluate(
            self.sensor.observe("whitefi"), SwitchReason.BOOT
        )
        channel = decision.channel
        self.ap_node.retune(channel, latency_us=1.0)
        for ctrl, node in self.clients:
            ctrl.main_channel = channel
            ctrl.backup_channel = self.ap_ctrl.state.backup_channel
            ctrl.heard_from_ap(self.engine.now_us)
            node.retune(channel, latency_us=1.0)
        if self.traffic:
            self.engine.schedule(10.0, self._start_traffic)
        self.engine.schedule(constants.BEACON_INTERVAL_US, self._beacon_loop)
        self.engine.schedule(self.sensing_interval_us, self._sensing_loop)
        self.engine.schedule(self.report_interval_us, self._report_loop)
        self.engine.schedule(self.backup_scan_interval_us, self._backup_scan_loop)

    def _start_traffic(self) -> None:
        for _, node in self.clients:
            if node.tuned is not None:
                SaturatingSource(self.ap_node, node.node_id).start()
                break

    # -- periodic loops -------------------------------------------------------------------

    def _beacon_loop(self) -> None:
        if self.ap_node.tuned is not None and self.ap_ctrl.state.main_channel:
            self.ap_node.enqueue(
                beacon_frame("ap", self.ap_ctrl.state.backup_channel)
            )
        self.engine.schedule(constants.BEACON_INTERVAL_US, self._beacon_loop)

    def _report_loop(self) -> None:
        for ctrl, node in self.clients:
            if ctrl.phase is ClientPhase.CONNECTED and node.tuned is not None:
                report = ctrl.build_report(
                    self.sensor.observe("whitefi"), self.engine.now_us
                )
                node.enqueue(report_frame(node.node_id, "ap", report))
        self.engine.schedule(self.report_interval_us, self._report_loop)

    def _sensing_loop(self) -> None:
        now = self.engine.now_us
        # AP-side sensing.
        main = self.ap_ctrl.state.main_channel
        if main is not None:
            hit = next(
                (
                    c
                    for c in main.spanned_indices
                    if self.incumbents.mic_active_on(c, now)
                ),
                None,
            )
            if hit is not None:
                self._ap_vacate(hit)
        # Client-side sensing + silence detection.
        for ctrl, node in self.clients:
            if ctrl.phase is not ClientPhase.CONNECTED:
                continue
            if ctrl.main_channel is not None:
                hit = next(
                    (
                        c
                        for c in ctrl.main_channel.spanned_indices
                        if self.incumbents.mic_active_on(c, now)
                    ),
                    None,
                )
                if hit is not None:
                    ctrl.incumbent_detected(hit)
                    self._client_vacate(ctrl, node)
                    continue
            if ctrl.is_disconnected(now):
                self._client_vacate(ctrl, node)
        self.engine.schedule(self.sensing_interval_us, self._sensing_loop)

    def _backup_scan_loop(self) -> None:
        """The AP's secondary radio checks the backup channel for chirps."""
        backup = self.ap_ctrl.state.backup_channel
        now = self.engine.now_us
        if backup is not None:
            chirps = [
                frame
                for _, frame in self.medium.frames_on(
                    backup.spanned_indices, self._last_backup_scan_us
                )
                if frame.frame_type is FrameType.CHIRP
                and frame.payload is not None
                and frame.payload.get("ssid_code") == self.ap_ctrl.ssid_code
            ]
            if chirps:
                self._handle_chirps(chirps)
        self._last_backup_scan_us = now
        self.engine.schedule(self.backup_scan_interval_us, self._backup_scan_loop)

    # -- incumbent / chirp handling -----------------------------------------------------------

    def _ap_vacate(self, occupied_index: int) -> None:
        episode = self._begin_episode()
        self.ap_ctrl.incumbent_on_main(occupied_index)
        backup = self.ap_ctrl.vacate_target()
        self.ap_node.retune(backup)
        episode.vacated_us = self.engine.now_us
        # Clients will notice the silence and converge on the backup
        # channel via their own chirps.

    def _client_vacate(self, ctrl: ClientController, node: SimNode) -> None:
        episode = self._begin_episode()
        try:
            plan = ctrl.start_chirping()
        except ProtocolError:
            return  # nothing we can do without a backup channel
        node.retune(plan.channel)
        episode.vacated_us = self.engine.now_us
        self._chirp_loop(ctrl, node, plan)

    def _chirp_loop(self, ctrl: ClientController, node: SimNode, plan) -> None:
        if ctrl.phase is not ClientPhase.CHIRPING:
            return
        if node.tuned == plan.channel:
            node.enqueue(
                Frame(
                    FrameType.CHIRP,
                    node.node_id,
                    "*",
                    size_bytes=plan.frame_bytes,
                    payload={
                        "ssid_code": ctrl.ssid_code,
                        "spectrum_map": plan.spectrum_map,
                        "node_id": node.node_id,
                    },
                )
            )
        self.engine.schedule(
            DEFAULT_CHIRP_INTERVAL_US, self._chirp_loop, ctrl, node, plan
        )

    def _handle_chirps(self, chirps: list[Frame]) -> None:
        episode = self._active_episode
        if episode is not None and episode.chirp_heard_us is None:
            episode.chirp_heard_us = self.engine.now_us
        chirped_maps = [f.payload["spectrum_map"] for f in chirps]
        decision = self.ap_ctrl.reassign_after_chirp(
            chirped_maps, self.sensor.observe("whitefi")
        )
        new_channel = decision.channel
        # Main radio visits the backup channel to announce the new home.
        self.ap_node.retune(new_channel)
        for ctrl, node in self.clients:
            ctrl.reconnect(new_channel, self.engine.now_us)
            node.retune(new_channel)
        if episode is not None:
            episode.reconnected_us = (
                self.engine.now_us + constants.PLL_SWITCH_US
            )
            episode.new_channel = new_channel
            self._active_episode = None

    def _begin_episode(self) -> DisconnectionEvent:
        if self._active_episode is None:
            self._active_episode = DisconnectionEvent(
                mic_onset_us=self.engine.now_us
            )
            self.disconnections.append(self._active_episode)
        return self._active_episode

    # -- frame handlers ---------------------------------------------------------------------

    def _ap_received(self, node: SimNode, frame: Frame) -> None:
        if frame.frame_type is FrameType.REPORT:
            self.ap_ctrl.accept_report(frame.payload)

    def _client_received_factory(self, ctrl: ClientController):
        def handler(node: SimNode, frame: Frame) -> None:
            now = self.engine.now_us
            if frame.source != "ap":
                return
            if frame.frame_type is FrameType.BEACON:
                ctrl.on_beacon(frame.payload.get("backup_channel"), now)
            elif frame.frame_type is FrameType.CHANNEL_SWITCH:
                new_channel = frame.payload["new_channel"]
                ctrl.on_channel_switch(new_channel, now)
                node.retune(new_channel)
            else:
                ctrl.heard_from_ap(now)

        return handler
