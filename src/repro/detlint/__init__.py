"""repro.detlint — the determinism & clock-discipline linter.

Every layer in this repository rests on one contract, stated once in
the README ("The determinism contract") and enforced here *by
construction* rather than only by example:

    The same spec produces byte-identical artifacts — reports, traces,
    metric snapshots — on any engine (scalar or vector), any cache
    state, any fan-out (parallel or sequential), and across a
    record→replay round trip.  The only wall-clock in the system is the
    profiler's, and it never feeds an artifact.

``repro.detlint`` parses the whole ``src/repro`` tree with :mod:`ast`
and checks a registry of composable rules (mirroring the ``RunKind``
registry pattern) against it:

========  ====================================================
DET001    wall-clock calls outside the allowlisted zone
DET002    nondeterministic iteration (sets, unsorted listings)
DET003    unseeded RNG construction / global-state RNG APIs
DET004    ``json.dumps`` without ``sort_keys`` in artifact writers
DET005    sim-clock metrics and wall-clock phases mixed in one
          function
DET006    pragma hygiene (missing reason, unknown rule, unused)
========  ====================================================

Findings carry stable IDs (``path:line:rule``); grandfathered IDs live
in a checked-in baseline so the gate lands strict; per-line pragmas
(``# detlint: ok[DET003] <reason>``) suppress individual findings with
a mandatory reason.  Run it as ``python -m repro.detlint`` or
``make detlint`` (part of ``make check``).
"""

from repro.detlint.config import DEFAULT_CONFIG, DetlintConfig, load_config
from repro.detlint.engine import LintReport, lint_paths, lint_source
from repro.detlint.findings import (
    Finding,
    finding_id,
    load_baseline,
    write_baseline,
)
from repro.detlint.pragmas import PRAGMA_RE, Pragma, scan_pragmas
from repro.detlint.rules import (
    Rule,
    get_rule,
    register_rule,
    rule_codes,
    unregister_rule,
)

__all__ = [
    "DEFAULT_CONFIG",
    "DetlintConfig",
    "Finding",
    "LintReport",
    "PRAGMA_RE",
    "Pragma",
    "Rule",
    "finding_id",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "register_rule",
    "rule_codes",
    "scan_pragmas",
    "unregister_rule",
    "write_baseline",
]
