"""The built-in determinism rules (DET001-DET005).

Each rule is a small, registry-registered class over the parsed
:class:`~repro.detlint.rules.Module`.  Detection is deliberately
*syntactic* — canonical-name resolution follows imports but never does
type inference — so every match is explainable by pointing at the
source line, and a method call on a local variable (``rng.random()``)
can never be confused with the module-level :mod:`random` API.

DET006 (pragma hygiene) is not here: it is emitted by the engine,
which is the only place that knows whether a pragma matched anything.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.detlint.findings import Finding
from repro.detlint.rules import Module, Rule, register_rule

# -- DET001: wall-clock --------------------------------------------------------

#: Canonical names that read the machine clock.  Referencing any of
#: them (call or bare reference, e.g. as an injectable default) outside
#: the wall-clock zone is a finding.
WALLCLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """DET001: the machine clock stays inside the wall-clock zone."""

    code = "DET001"
    title = "wall-clock"
    summary = (
        "wall-clock reads (time.time/perf_counter/monotonic/datetime.now) "
        "outside the allowlisted wall-clock zone"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if module.config.in_wallclock_zone(module.relpath):
            return
        for node in module.walk():
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            name = module.resolve(node)
            if name in WALLCLOCK_NAMES:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock reference `{name}` outside the wall-clock "
                    "zone; simulation code must be clocked by sim time "
                    "(pass timestamps in, or move the timing into "
                    "repro.telemetry.profiler)",
                )


# -- DET002: nondeterministic iteration ----------------------------------------

_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

_SET_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference"}
)

_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that syntactically produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationRule(Rule):
    """DET002: iteration order must not come from a hash table."""

    code = "DET002"
    title = "set-iteration"
    summary = (
        "iteration over set expressions, set comprehensions feeding "
        "loops/returns, or os.listdir/glob.glob without sorted(...)"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        sorted_args: set[int] = set()
        for node in module.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                sorted_args.add(id(node.args[0]))
        for node in module.walk():
            yield from self._check_node(module, node, sorted_args)

    def _check_node(
        self, module: Module, node: ast.AST, sorted_args: set[int]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            yield self.finding(
                module,
                node.iter,
                "for-loop over a set expression: hash order leaks into "
                "execution order; wrap the iterable in sorted(...)",
            )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield self.finding(
                        module,
                        gen.iter,
                        "comprehension over a set expression: hash order "
                        "leaks into the produced sequence; wrap the "
                        "iterable in sorted(...)",
                    )
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.SetComp):
            yield self.finding(
                module,
                node.value,
                "returning a set comprehension: callers iterating the "
                "result inherit hash order; return sorted(...) or a "
                "frozenset consumed only for membership",
            )
        elif isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if name in _LISTING_CALLS and id(node) not in sorted_args:
                yield self.finding(
                    module,
                    node,
                    f"`{name}(...)` without sorted(...): directory order is "
                    "filesystem-dependent",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{node.func.id}(...)` materializes a set's hash order "
                    "into a sequence; use sorted(...)",
                )


# -- DET003: unseeded RNG ------------------------------------------------------

#: numpy.random attributes that are part of the *seeded* Generator API;
#: everything else under numpy.random is the legacy global-state API.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Module-level stdlib `random` functions backed by the hidden global
#: Random instance.
_STDLIB_RANDOM_GLOBALS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_RNG_FACTORIES = frozenset({"random.Random", "numpy.random.default_rng"})


def _call_has_seed(node: ast.Call) -> bool:
    return bool(node.args) or bool(node.keywords)


class UnseededRngRule(Rule):
    """DET003: every random stream derives from an explicit seed."""

    code = "DET003"
    title = "unseeded-rng"
    summary = (
        "np.random.default_rng()/random.Random() without a seed, "
        "module-level random.* calls, and the legacy np.random.* "
        "global-state API"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        flagged: set[int] = set()
        for node in module.walk():
            if isinstance(node, ast.Call):
                name = module.resolve(node.func)
                if name in _RNG_FACTORIES and not _call_has_seed(node):
                    flagged.add(id(node.func))
                    yield self.finding(
                        module,
                        node,
                        f"`{name}()` without a seed draws from OS entropy; "
                        "thread an explicit rng/seed through the call site",
                    )
                elif name == "random.SystemRandom":
                    flagged.add(id(node.func))
                    yield self.finding(
                        module,
                        node,
                        "`random.SystemRandom` is nondeterministic by "
                        "design and cannot be seeded",
                    )
                elif (
                    name is not None
                    and name.startswith("random.")
                    and name.split(".", 1)[1] in _STDLIB_RANDOM_GLOBALS
                ):
                    flagged.add(id(node.func))
                    yield self.finding(
                        module,
                        node,
                        f"module-level `{name}(...)` uses the hidden global "
                        "Random instance; use a seeded random.Random",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "default_factory":
                name = module.resolve(node.value)
                if name in _RNG_FACTORIES:
                    flagged.add(id(node.value))
                    yield self.finding(
                        module,
                        node.value,
                        f"`default_factory={name}` constructs an unseeded "
                        "RNG at instantiation time; require an explicit rng",
                    )
        # Legacy numpy.random global-state references (np.random.rand,
        # np.random.seed, np.random.RandomState, ...): flag the bare
        # reference so aliasing (`rand = np.random.rand`) is caught too.
        for node in module.walk():
            if not isinstance(node, ast.Attribute) or id(node) in flagged:
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            name = module.resolve(node)
            if (
                name is not None
                and name.startswith("numpy.random.")
                and name.count(".") == 2
                and name.rsplit(".", 1)[1] not in _NUMPY_RANDOM_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state API `{name}`; use a seeded "
                    "np.random.default_rng(...) Generator",
                )


# -- DET004: unsorted artifact JSON --------------------------------------------

_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

_SAVE_CALLS = frozenset(
    {"numpy.save", "numpy.savez", "numpy.savez_compressed", "json.dump"}
)


def _open_mode(node: ast.Call) -> str | None:
    """The constant mode string of an open()-style call, if present."""
    mode: ast.AST | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _writes_artifacts(module: Module) -> bool:
    """True when the module syntactically contains a file-write call."""
    if module.config.is_artifact_module(module.relpath):
        return True
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is not None and any(c in mode for c in "wax+"):
                return True
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_ATTRS:
            return True
        else:
            name = module.resolve(func)
            if name in _SAVE_CALLS:
                return True
            if name == "gzip.open":
                mode = _open_mode(node)
                if mode is not None and any(c in mode for c in "wax"):
                    return True
    return False


class UnsortedJsonRule(Rule):
    """DET004: artifact JSON is canonical (sorted keys) or it is not diffable."""

    code = "DET004"
    title = "unsorted-json"
    summary = (
        "json.dumps/json.dump without sort_keys=True in modules that "
        "write artifacts"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if not _writes_artifacts(module):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name not in ("json.dumps", "json.dump"):
                continue
            sort_keys = None
            for kw in node.keywords:
                if kw.arg == "sort_keys":
                    sort_keys = kw.value
            if sort_keys is None or (
                isinstance(sort_keys, ast.Constant) and sort_keys.value is False
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{name}` without sort_keys=True in an artifact-writing "
                    "module: key order would follow dict construction "
                    "history, not content",
                )


# -- DET005: sim/wall clock mixing ---------------------------------------------

_PROFILER_MODULE = "repro.telemetry.profiler"

#: The MetricsRegistry publish surface (sim-clock side).
_PUBLISH_ATTRS = frozenset(
    {"counter", "gauge", "histogram", "record_stats", "sample_tick"}
)


def _imports_profiler(module: Module) -> bool:
    if any(m.startswith(_PROFILER_MODULE) for m in module.imports.modules):
        return True
    return any(
        name.startswith(_PROFILER_MODULE + ".")
        for name in module.imports.names.values()
    )


def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ClockMixingRule(Rule):
    """DET005: one function, one clock."""

    code = "DET005"
    title = "clock-mixing"
    summary = (
        "functions in profiler-importing modules that both enter "
        "wall-clock phases and publish sim-clock metrics"
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if not _imports_profiler(module):
            return
        for func in module.functions():
            phases = False
            publishes = False
            for node in _own_nodes(func):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr == "phase":
                        phases = True
                    elif node.func.attr in _PUBLISH_ATTRS:
                        publishes = True
            if phases and publishes:
                yield self.finding(
                    module,
                    func,
                    f"function `{func.name}` both times wall-clock phases "
                    "and publishes sim-clock metrics; keep the two clocks "
                    "in separate functions (or pragma with the discipline "
                    "that keeps wall time out of the published values)",
                )


register_rule(WallClockRule())
register_rule(SetIterationRule())
register_rule(UnseededRngRule())
register_rule(UnsortedJsonRule())
register_rule(ClockMixingRule())
