"""The detlint CLI: ``python -m repro.detlint`` / ``scripts/detlint.py``.

Exit status is the gate: 0 when the tree is clean against the shipped
baseline, 1 when there are new findings or stale baseline entries.
Text output goes to stdout (one ``path:line: CODE message`` row per
finding, grep- and editor-clickable); ``--out`` additionally writes
the deterministic JSON artifact CI uploads; ``--stats`` prints the
per-rule / per-package suppression-debt tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.detlint.config import load_config
from repro.detlint.engine import LintReport, lint_paths
from repro.detlint.findings import DetlintError, load_baseline, write_baseline
from repro.detlint.rules import get_rule, rule_codes

#: Default checked-in policy and baseline locations (repo root).
DEFAULT_CONFIG_FILE = "detlint.toml"
DEFAULT_BASELINE_FILE = "detlint.baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.detlint",
        description=(
            "AST-based determinism & clock-discipline linter for the "
            "repro tree"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the configured paths)",
    )
    parser.add_argument(
        "--config",
        default=DEFAULT_CONFIG_FILE,
        help=f"policy file (default: {DEFAULT_CONFIG_FILE}; missing = built-in defaults)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_FILE,
        help=(
            "grandfathered-findings file "
            f"(default: {DEFAULT_BASELINE_FILE}; missing = empty)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the JSON findings artifact to FILE",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule and per-package finding counts",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current new findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _render_text(report: LintReport, *, verbose_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in report.findings:
        if finding.status == "new":
            lines.append(f"{finding.path}:{finding.line}: {finding.rule} {finding.message}")
        elif verbose_suppressed:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} "
                f"[{finding.status}: {finding.reason or 'baseline'}]"
            )
    for stale in report.stale_baseline:
        lines.append(
            f"stale baseline entry {stale}: finding no longer fires; "
            "run --update-baseline to drop it"
        )
    lines.append(
        f"{len(report.findings)} findings across {report.files_checked} files "
        f"({len(report.new)} new, {len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined)"
    )
    return "\n".join(lines)


def _render_stats(report: LintReport) -> str:
    stats = report.stats()
    lines = ["", "per-rule:"]
    width = max([len(k) for k in stats["by_rule"]] + [4])
    header = f"  {'rule'.ljust(width)}  new  suppressed  baselined"
    lines.append(header)
    for code, row in stats["by_rule"].items():
        lines.append(
            f"  {code.ljust(width)}  {row['new']:>3}  {row['suppressed']:>10}  "
            f"{row['baselined']:>9}"
        )
    lines.append("per-package:")
    width = max([len(k) for k in stats["by_package"]] + [7])
    lines.append(f"  {'package'.ljust(width)}  new  suppressed  baselined")
    for pkg, row in stats["by_package"].items():
        lines.append(
            f"  {pkg.ljust(width)}  {row['new']:>3}  {row['suppressed']:>10}  "
            f"{row['baselined']:>9}"
        )
    if not stats["by_rule"]:
        lines.append("  (no findings)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code in rule_codes():
            rule = get_rule(code)
            print(f"{code}  {rule.title}: {rule.summary}")
        print(
            "DET006  pragma-hygiene: suppression pragmas must parse, name "
            "a known rule, carry a reason, and suppress something"
        )
        return 0

    try:
        config = load_config(args.config)
        baseline = load_baseline(args.baseline)
        paths = list(args.paths) or list(config.paths)
        report = lint_paths(paths, config=config, baseline=baseline)
    except DetlintError as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        ids = {f.id for f in report.new} | {f.id for f in report.baselined}
        write_baseline(args.baseline, ids)
        print(f"baseline updated: {len(ids)} grandfathered findings")
        return 0

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render_text(report))
        if args.stats:
            print(_render_stats(report))

    return 0 if report.ok else 1
