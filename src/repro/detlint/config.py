"""Linter configuration: the zone allowlists, checked in as ``detlint.toml``.

The defaults below *are* the repo's policy; ``detlint.toml`` at the
repo root restates them so the allowlists are reviewable in one place
and extending a zone is a one-line diff.  Loading is stdlib-only
(:mod:`tomllib`), keeping the linter runnable in a bare CI container.

Zones are matched against POSIX paths relative to the lint root:
an entry ending in ``/`` is a directory prefix, anything else is an
exact relative path or a path suffix (so ``repro/telemetry/profiler.py``
matches whether the root is the repo or ``src``).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.detlint.findings import DetlintError

#: The wall-clock zone (DET001): the *only* places allowed to read the
#: machine clock.  The profiler is wall-clock by design; scripts and
#: benchmarks time real work and never feed simulation artifacts.
DEFAULT_WALLCLOCK_ZONES = (
    "repro/telemetry/profiler.py",
    "scripts/",
    "benchmarks/",
)

#: Modules always treated as artifact writers for DET004, even when no
#: file-write call is syntactically visible in them.
DEFAULT_ARTIFACT_MODULES: tuple[str, ...] = ()

#: Default lint roots, relative to the repository root.
DEFAULT_PATHS = ("src/repro",)


@dataclass(frozen=True)
class DetlintConfig:
    """Checked-in linter policy (see ``detlint.toml``)."""

    paths: tuple[str, ...] = DEFAULT_PATHS
    wallclock_zones: tuple[str, ...] = DEFAULT_WALLCLOCK_ZONES
    artifact_modules: tuple[str, ...] = DEFAULT_ARTIFACT_MODULES

    def in_wallclock_zone(self, relpath: str | Path) -> bool:
        """True when *relpath* may read the machine clock (DET001)."""
        return _matches(relpath, self.wallclock_zones)

    def is_artifact_module(self, relpath: str | Path) -> bool:
        """True when *relpath* is configured as an artifact writer."""
        return _matches(relpath, self.artifact_modules)


def _matches(relpath: str | Path, zones: tuple[str, ...]) -> bool:
    rel = Path(relpath).as_posix()
    for zone in zones:
        if zone.endswith("/"):
            if rel.startswith(zone) or f"/{zone}" in f"/{rel}":
                return True
        elif rel == zone or rel.endswith(f"/{zone}"):
            return True
    return False


DEFAULT_CONFIG = DetlintConfig()

_KNOWN_KEYS = frozenset({"paths", "wallclock_zones", "artifact_modules"})


def load_config(path: str | Path | None) -> DetlintConfig:
    """Load ``detlint.toml``; ``None`` or a missing file means defaults.

    The file holds one ``[detlint]`` table (detlint.toml-style); unknown
    keys raise so a typo cannot silently widen a zone.
    """
    if path is None:
        return DEFAULT_CONFIG
    path = Path(path)
    if not path.exists():
        return DEFAULT_CONFIG
    try:
        payload = tomllib.loads(path.read_text())
    except tomllib.TOMLDecodeError as exc:
        raise DetlintError(f"config {path} is not valid TOML: {exc}") from None
    table = payload.get("detlint", payload)
    if not isinstance(table, dict):
        raise DetlintError(f"config {path}: [detlint] must be a table")
    unknown = sorted(set(table) - _KNOWN_KEYS)
    if unknown:
        raise DetlintError(
            f"config {path}: unknown keys {unknown}; expected "
            f"{sorted(_KNOWN_KEYS)}"
        )
    kwargs: dict[str, tuple[str, ...]] = {}
    for key in _KNOWN_KEYS:
        if key in table:
            value = table[key]
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise DetlintError(
                    f"config {path}: {key} must be a list of strings"
                )
            kwargs[key] = tuple(value)
    return DetlintConfig(**kwargs)
