"""The findings engine: parse, check, suppress, baseline, report.

``lint_paths`` is the one entry point the CLI, the Makefile gate, and
the meta-test all share.  Its pipeline per module:

1. parse with :mod:`ast` (a syntax error is a hard
   :class:`DetlintError` — an unparseable module cannot be certified);
2. run every registered rule, collecting raw findings;
3. apply suppression pragmas — a valid pragma (known code, non-empty
   reason) marks its findings ``suppressed``; an invalid or unused one
   becomes a DET006 finding itself;
4. apply the baseline — grandfathered IDs become ``baselined``; stale
   baseline IDs (no longer firing) are reported so the baseline can
   only shrink.

Only ``new`` findings (and stale baseline entries) fail the gate.  The
whole pipeline is deterministic: files are visited in sorted order and
findings sort by ``(path, line, rule)``, so two runs over the same
tree emit byte-identical JSON artifacts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.detlint.config import DEFAULT_CONFIG, DetlintConfig
from repro.detlint.findings import Baseline, DetlintError, Finding
from repro.detlint.pragmas import scan_pragmas
from repro.detlint.rules import Module, all_rules, get_rule, rule_codes

#: Schema tag for the JSON findings artifact.
FINDINGS_SCHEMA = "repro.detlint/findings-v1"

#: The engine-owned pragma-hygiene rule code (not in the registry:
#: only the engine knows whether a pragma matched anything).
PRAGMA_RULE = "DET006"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "new"]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "suppressed"]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "baselined"]

    @property
    def ok(self) -> bool:
        """True when the gate passes (nothing new, no stale baseline)."""
        return not self.new and not self.stale_baseline

    def stats(self) -> dict[str, dict[str, dict[str, int]]]:
        """Per-rule and per-package counts by status (suppression debt)."""
        by_rule: dict[str, dict[str, int]] = {}
        by_package: dict[str, dict[str, int]] = {}
        for finding in self.findings:
            for table, key in ((by_rule, finding.rule), (by_package, finding.package)):
                row = table.setdefault(
                    key, {"new": 0, "suppressed": 0, "baselined": 0}
                )
                row[finding.status] += 1
        return {
            "by_rule": {k: by_rule[k] for k in sorted(by_rule)},
            "by_package": {k: by_package[k] for k in sorted(by_package)},
        }

    def to_dict(self) -> dict[str, object]:
        rules = {
            code: {
                "title": get_rule(code).title,
                "summary": get_rule(code).summary,
            }
            for code in rule_codes()
        }
        return {
            "schema": FINDINGS_SCHEMA,
            "files_checked": self.files_checked,
            "counts": {
                "new": len(self.new),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "rules": rules,
            "stats": self.stats(),
            "stale_baseline": sorted(self.stale_baseline),
            "findings": [f.to_dict() for f in self.findings],
        }


def _sort_key(finding: Finding) -> tuple[str, int, str]:
    return (finding.path, finding.line, finding.rule)


def lint_source(
    source: str,
    relpath: str,
    config: DetlintConfig = DEFAULT_CONFIG,
) -> list[Finding]:
    """Lint one module's source text; returns its findings, sorted.

    Pragma disposition is applied (``new`` vs ``suppressed`` plus any
    DET006 hygiene findings); the baseline is not — that belongs to
    :func:`lint_paths`, which owns whole-tree identity.
    """
    relpath = Path(relpath).as_posix()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        raise DetlintError(
            f"{relpath}:{exc.lineno}: cannot parse module: {exc.msg}"
        ) from None
    module = Module(relpath=relpath, source=source, tree=tree, config=config)
    raw: list[Finding] = []
    for rule in all_rules():
        raw.extend(rule.check(module))

    pragmas, malformed = scan_pragmas(source)
    known = set(rule_codes())
    findings: list[Finding] = []
    used: dict[tuple[int, str], int] = {}

    for finding in raw:
        suppressor = None
        for pragma in pragmas:
            if pragma.reason and pragma.matches(finding.rule, finding.line):
                suppressor = pragma
                break
        if suppressor is not None:
            used[(suppressor.line, finding.rule)] = (
                used.get((suppressor.line, finding.rule), 0) + 1
            )
            findings.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    rule=finding.rule,
                    message=finding.message,
                    status="suppressed",
                    reason=suppressor.reason,
                )
            )
        else:
            findings.append(finding)

    # Pragma hygiene (DET006): missing reason, unknown codes, unused
    # suppressions, and comments that look like pragmas but don't parse.
    for pragma in pragmas:
        if not pragma.reason:
            findings.append(
                Finding(
                    path=relpath,
                    line=pragma.line,
                    rule=PRAGMA_RULE,
                    message=(
                        "suppression pragma without a reason; write "
                        "`# detlint: ok[CODE] <why this is safe>`"
                    ),
                )
            )
            continue
        for code in pragma.codes:
            if code not in known:
                findings.append(
                    Finding(
                        path=relpath,
                        line=pragma.line,
                        rule=PRAGMA_RULE,
                        message=(
                            f"pragma names unknown rule {code!r}; "
                            f"expected one of {', '.join(sorted(known))}"
                        ),
                    )
                )
            elif used.get((pragma.line, code), 0) == 0:
                findings.append(
                    Finding(
                        path=relpath,
                        line=pragma.line,
                        rule=PRAGMA_RULE,
                        message=(
                            f"unused suppression for {code} (nothing to "
                            "suppress on its target line); remove the pragma"
                        ),
                    )
                )
    for bad in malformed:
        findings.append(
            Finding(
                path=relpath,
                line=bad.line,
                rule=PRAGMA_RULE,
                message=(
                    f"comment `{bad.text}` mentions detlint but does not "
                    "parse as a pragma; the syntax is "
                    "`# detlint: ok[CODE] <reason>`"
                ),
            )
        )
    return sorted(findings, key=_sort_key)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """The sorted .py files under *paths* (files pass through as-is)."""
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(p for p in path.rglob("*.py") if p.is_file())
        else:
            raise DetlintError(f"lint path does not exist: {path}")
    return sorted(set(files))


def lint_paths(
    paths: list[str | Path],
    config: DetlintConfig = DEFAULT_CONFIG,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Lint every ``.py`` file under *paths* against *config* + *baseline*.

    Args:
        paths: files or directory roots to scan.
        root: base for the relative paths findings carry (default: the
            current working directory; non-relative files fall back to
            their given path).
    """
    baseline = baseline or Baseline()
    rootpath = Path(root) if root is not None else Path.cwd()
    report = LintReport()
    seen_ids: set[str] = set()
    for file in iter_python_files([Path(p) for p in paths]):
        try:
            relpath = file.resolve().relative_to(rootpath.resolve())
        except ValueError:
            relpath = file
        source = file.read_text()
        for finding in lint_source(source, str(relpath), config):
            seen_ids.add(finding.id)
            if finding.status == "new" and finding.id in baseline:
                finding = Finding(
                    path=finding.path,
                    line=finding.line,
                    rule=finding.rule,
                    message=finding.message,
                    status="baselined",
                )
            report.findings.append(finding)
        report.files_checked += 1
    report.findings.sort(key=_sort_key)
    report.stale_baseline = sorted(baseline.ids - seen_ids)
    return report
