"""Findings: the linter's unit of output, and the baseline that grandfathers them.

A :class:`Finding` is one rule violation at one source location.  Its
identity — :func:`finding_id`, ``path:line:rule`` with a POSIX relative
path — is the stable key everything else keys on: the baseline file
stores IDs, the JSON artifact sorts by them, and CI diffs them across
runs.  Stability matters more than precision here: a finding that moves
by one line gets a new ID and resurfaces, which is the correct failure
mode for a gate (silently tracking drifting findings is how baselines
rot into permanent debt).

The baseline file is deliberately trivial: a sorted JSON list of IDs
under a schema tag.  The repo ships an **empty** baseline — every
pre-existing hazard was fixed or pragma'd when the gate landed — so any
entry appearing in it after that is visible, reviewable debt.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Schema tag written into baseline files; bump on layout change.
BASELINE_SCHEMA = "repro.detlint/baseline-v1"

#: How a finding was disposed of by the engine.
STATUSES = ("new", "suppressed", "baselined")


class DetlintError(ReproError):
    """Raised for malformed baselines, configs, or pragma syntax."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: POSIX path relative to the lint root (stable across
            machines; never absolute).
        line: 1-based source line the finding anchors to.
        rule: rule code (``DET001``...).
        message: human-readable description of the hazard.
        status: disposition — ``new`` fails the gate, ``suppressed``
            (pragma) and ``baselined`` (grandfathered) do not.
        reason: the pragma's mandatory justification, when suppressed.
    """

    path: str
    line: int
    rule: str
    message: str
    status: str = "new"
    reason: str = ""

    @property
    def id(self) -> str:
        return finding_id(self.path, self.line, self.rule)

    @property
    def package(self) -> str:
        """The repro sub-package the finding lives in (stats bucketing)."""
        parts = Path(self.path).parts
        if "repro" in parts:
            after = parts[parts.index("repro") + 1 :]
            if len(after) > 1:
                return "repro." + after[0]
            return "repro"
        return parts[0] if len(parts) > 1 else "."

    def to_dict(self) -> dict[str, object]:
        return {
            "id": self.id,
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "status": self.status,
            "reason": self.reason,
        }


def finding_id(path: str, line: int, rule: str) -> str:
    """The stable ``path:line:rule`` identity of a finding."""
    return f"{Path(path).as_posix()}:{line}:{rule}"


@dataclass(frozen=True)
class Baseline:
    """The set of grandfathered finding IDs plus bookkeeping."""

    ids: frozenset[str] = field(default_factory=frozenset)

    def __contains__(self, finding: Finding | str) -> bool:
        key = finding if isinstance(finding, str) else finding.id
        return key in self.ids


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Raises:
        DetlintError: on malformed JSON or a wrong schema tag — a
            corrupt baseline must fail loudly, not silently admit
            every finding.
    """
    path = Path(path)
    if not path.exists():
        return Baseline()
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DetlintError(f"baseline {path} is not valid JSON: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA
        or not isinstance(payload.get("findings"), list)
    ):
        raise DetlintError(
            f"baseline {path} does not match schema {BASELINE_SCHEMA!r}"
        )
    ids = payload["findings"]
    bad = [i for i in ids if not isinstance(i, str)]
    if bad:
        raise DetlintError(f"baseline {path} has non-string finding IDs: {bad!r}")
    return Baseline(ids=frozenset(ids))


def write_baseline(path: str | Path, ids: frozenset[str] | set[str]) -> Path:
    """Write *ids* as a baseline file (sorted, trailing newline)."""
    path = Path(path)
    payload = {"schema": BASELINE_SCHEMA, "findings": sorted(ids)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
