"""Per-line suppression pragmas: ``# detlint: ok[DET003] <reason>``.

A pragma acknowledges one specific hazard on one specific line and is
forced to say *why* it is acceptable — the reason is mandatory and the
linter itself enforces it (DET006), so suppressions stay reviewable
rather than accreting as bare markers.  Several codes may share one
pragma (``ok[DET001,DET005] ...``).

Placement: a pragma written on a code line suppresses findings on that
line; a pragma on a comment-only line suppresses findings on the next
line (for lines too long to carry the comment).

Scanning uses :mod:`tokenize`, not a regex over raw lines, so pragma
text inside string literals is never misread as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: The pragma grammar.  ``detlint: ok[CODE[,CODE...]] reason...``
PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*ok\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: A comment that mentions detlint but does not parse as a pragma —
#: flagged by DET006 so typos fail instead of silently not suppressing.
PRAGMA_HINT_RE = re.compile(r"#\s*detlint\b")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment.

    Attributes:
        line: the source line the pragma comment sits on.
        target_line: the line whose findings it suppresses (same line,
            or the next one for a comment-only line).
        codes: the rule codes it suppresses (sorted, deduplicated).
        reason: the mandatory justification text (may be empty here;
            DET006 rejects it downstream).
    """

    line: int
    target_line: int
    codes: tuple[str, ...]
    reason: str

    #: Set by the engine when the pragma suppressed at least one finding.
    def matches(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.codes


@dataclass(frozen=True)
class MalformedPragma:
    """A detlint-looking comment that failed to parse (DET006 fodder)."""

    line: int
    text: str


def scan_pragmas(
    source: str,
) -> tuple[tuple[Pragma, ...], tuple[MalformedPragma, ...]]:
    """Extract pragmas (and malformed pragma attempts) from *source*.

    Returns ``(pragmas, malformed)``.  Sources with tokenization errors
    return empty results; the engine reports the parse failure itself.
    """
    pragmas: list[Pragma] = []
    malformed: list[MalformedPragma] = []
    code_lines: set[int] = set()
    comments: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return (), ()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for row in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(row)
    for line, text in comments:
        match = PRAGMA_RE.search(text)
        if match is None:
            if PRAGMA_HINT_RE.search(text):
                malformed.append(MalformedPragma(line=line, text=text.strip()))
            continue
        codes = tuple(
            sorted({c.strip() for c in match.group("codes").split(",") if c.strip()})
        )
        target = line if line in code_lines else line + 1
        pragmas.append(
            Pragma(
                line=line,
                target_line=target,
                codes=codes,
                reason=match.group("reason").strip(),
            )
        )
    return tuple(pragmas), tuple(malformed)
