"""Qualified-name resolution for AST nodes, driven by a module's imports.

Rules match *canonical* dotted names (``numpy.random.default_rng``,
``time.perf_counter``), not surface spellings — so ``np.random.rand``,
``from time import perf_counter as pc; pc()`` and ``import time;
time.perf_counter()`` all resolve to the same key.  Resolution is
purely syntactic: it follows the module's ``import`` statements, never
type inference, so a method call on a local variable (``rng.random()``)
resolves to nothing rather than to :mod:`random` — exactly the
false-positive behavior a gate linter wants.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class ImportMap:
    """Local name -> canonical dotted prefix, from a module's imports."""

    names: dict[str, str] = field(default_factory=dict)
    #: Canonical module paths imported anywhere in the module (for
    #: module-level checks like DET005's "imports the profiler").
    modules: set[str] = field(default_factory=set)

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imap = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imap.modules.add(alias.name)
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
                    canonical = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    imap.names[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay repo-internal
                imap.modules.add(node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imap.names[local] = f"{node.module}.{alias.name}"
        return imap

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, or None.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``numpy.random.default_rng``; a chain whose root is not an
        imported name resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.names.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def canonicalize(name: str) -> str:
    """Fold spelling variants onto the canonical module path."""
    # numpy re-exports random under both `numpy.random` and the
    # historical `numpy.random.mtrand`; fold the latter.
    if name.startswith("numpy.random.mtrand."):
        return "numpy.random." + name[len("numpy.random.mtrand.") :]
    return name
