"""The detlint rule registry: pluggable determinism rules.

Mirrors the :mod:`repro.experiments.registry` ``RunKind`` pattern: a
:class:`Rule` is a registered object owning one invariant — a code
(``DET001``), a one-line summary for docs and ``--list-rules``, and a
``check`` that yields findings for one parsed module.  Registering a
new rule makes it reachable from the engine, the CLI, the stats
report, and the pragma checker with no dispatcher edits — adding a
determinism invariant is a new module-scoped class, not a patch to a
monolithic visitor.

Rules receive a :class:`Module` — the parsed tree plus the resolution
and zone helpers every check needs — and must be pure functions of it:
the linter's own output is part of the determinism story (two runs
over the same tree produce identical findings, which is what makes the
JSON artifact diffable in CI).
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

from repro.detlint.findings import DetlintError, Finding
from repro.detlint.resolve import ImportMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detlint.config import DetlintConfig

__all__ = [
    "Module",
    "Rule",
    "get_rule",
    "register_rule",
    "rule_codes",
    "unregister_rule",
]


@dataclass
class Module:
    """One parsed source module, as rules see it."""

    relpath: str
    source: str
    tree: ast.Module
    config: "DetlintConfig"
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap.from_tree(self.tree)

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain (or None)."""
        from repro.detlint.resolve import canonicalize

        name = self.imports.resolve(node)
        return None if name is None else canonicalize(name)

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in self.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class Rule(abc.ABC):
    """One registered determinism invariant.

    Attributes:
        code: the stable rule code (``DET001``) — registry key, pragma
            target, and finding-ID component.
        title: short name for tables (``wall-clock``).
        summary: one line for docs and ``--list-rules``.
    """

    code: ClassVar[str]
    title: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, module: Module) -> Iterable[Finding]:
        """Yield findings for *module*.  Must be deterministic."""

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        """A finding anchored at *node*'s line in *module*."""
        return Finding(
            path=Path(module.relpath).as_posix(),
            line=getattr(node, "lineno", 1),
            rule=self.code,
            message=message,
        )


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, Rule] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in DET rules on first registry access.

    Same shape as the run-kind registry: lazy registration with
    rollback, so a failed import resurfaces identically on every
    access instead of decaying into an empty registry.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    before = set(_REGISTRY)
    try:
        import repro.detlint.checks  # noqa: F401  (registers on import)
    except BaseException:
        for code in sorted(set(_REGISTRY) - before):
            del _REGISTRY[code]
        raise
    _BUILTINS_LOADED = True


def register_rule(rule: Rule) -> Rule:
    """Register *rule* under ``rule.code``; returns it for chaining.

    Raises:
        DetlintError: for an empty or duplicate code — two rules
            shadowing one code would make pragmas ambiguous.
    """
    code = getattr(rule, "code", "")
    if not code or not isinstance(code, str):
        raise DetlintError(f"rule {rule!r} must define a non-empty string `code`")
    if code in _REGISTRY:
        raise DetlintError(
            f"rule {code!r} is already registered "
            f"({_REGISTRY[code].__class__.__name__}); unregister it first"
        )
    _REGISTRY[code] = rule
    return rule


def unregister_rule(code: str) -> Rule:
    """Remove and return a registered rule (test/plugin teardown hook)."""
    _ensure_builtins()
    try:
        return _REGISTRY.pop(code)
    except KeyError:
        raise DetlintError(f"rule {code!r} is not registered") from None


def rule_codes() -> tuple[str, ...]:
    """All registered rule codes, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look up a registered rule by code.

    Raises:
        DetlintError: for an unknown code, listing the registry.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise DetlintError(
            f"unknown rule {code!r}; expected one of {rule_codes()}"
        ) from None


def all_rules() -> tuple[Rule, ...]:
    """The registered rules in code order (the engine's iteration set)."""
    _ensure_builtins()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))
