"""Exception hierarchy for the WhiteFi reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ChannelError(ReproError):
    """An invalid UHF channel index, number, or WhiteFi (F, W) tuple."""


class SpectrumMapError(ReproError):
    """Malformed or incompatible spectrum map."""


class NoChannelAvailableError(ReproError):
    """Spectrum assignment found no (F, W) channel free at every node."""


class SimulationError(ReproError):
    """Inconsistent discrete-event simulator state."""


class UnknownRunKindError(SimulationError):
    """A run kind name with no registration in the RunKind registry.

    A distinct subclass so :class:`~repro.experiments.parallel.ParallelRunner`
    can tell "this worker process lacks a plugin registration" (retry
    sequentially in the parent, which has it) from any other simulation
    failure (fail fast).
    """


class RadioError(ReproError):
    """Invalid radio operation (e.g. decoding while mistuned)."""


class DiscoveryError(ReproError):
    """AP discovery failed or was invoked with an impossible configuration."""


class SignalError(ReproError):
    """Invalid IQ trace or signal-processing parameter."""


class ProtocolError(ReproError):
    """WhiteFi control-plane protocol violation."""
