"""Declarative experiment harness: specs, builders, sweeps, results.

The paper's evaluation (Sections 5.1-5.4) is a matrix of scenarios —
channel widths x traffic intensities x background BSS counts x churn
rates x seeds.  This package turns each cell of that matrix into data:

* :mod:`repro.experiments.spec` — frozen, JSON-round-trippable
  :class:`ScenarioSpec` / :class:`ExperimentSpec` dataclasses describing
  a scenario (spectrum, foreground BSS, background pool, incumbents,
  churn, traffic model, duration, seed) and what to run on it.
* :mod:`repro.experiments.scenario` — :class:`ScenarioBuilder`
  materializes an Engine/Medium/node world from a spec; the single
  place scenario wiring lives.
* :mod:`repro.experiments.runs` — the run kinds (static, OPT baselines,
  adaptive WhiteFi, full disconnection protocol) and the
  :func:`run_experiment` dispatcher.
* :mod:`repro.experiments.results` — structured :class:`ExperimentResult`
  records, aggregation helpers, and a spec-hash-keyed result cache.
* :mod:`repro.experiments.parallel` — :class:`ParallelRunner` fans a
  spec x seed grid across worker processes with deterministic per-seed
  streams, falling back to in-process sequential execution.
"""

from repro.experiments.parallel import ParallelRunner, sweep_seeds
from repro.experiments.results import (
    ExperimentResult,
    ResultCache,
    SummaryStats,
    mean_by,
    summarize,
)
from repro.experiments.runs import (
    run_experiment,
    run_opt_baselines,
    run_protocol,
    run_static,
    run_whitefi,
)
from repro.experiments.scenario import ScenarioBuilder, ScenarioConfig, World
from repro.experiments.spec import (
    BackgroundPoolSpec,
    BackgroundSpec,
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)

__all__ = [
    "BackgroundPoolSpec",
    "BackgroundSpec",
    "ExperimentSpec",
    "ExperimentResult",
    "MicSpec",
    "ParallelRunner",
    "ResultCache",
    "ScenarioBuilder",
    "ScenarioConfig",
    "ScenarioSpec",
    "SpatialSpec",
    "SummaryStats",
    "TrafficSpec",
    "World",
    "mean_by",
    "run_experiment",
    "run_opt_baselines",
    "run_protocol",
    "run_static",
    "run_whitefi",
    "summarize",
    "sweep_seeds",
]
