"""Declarative experiment harness: specs, run kinds, sweeps, results.

The paper's evaluation (Sections 5.1-5.4) is a matrix of scenarios —
channel widths x traffic intensities x background BSS counts x churn
rates x locales x seeds.  This package turns each cell of that matrix
into data and each axis into a plugin:

* :mod:`repro.experiments.spec` — frozen, JSON-round-trippable
  :class:`ScenarioSpec` / :class:`ExperimentSpec` dataclasses describing
  a scenario (spectrum, foreground BSS, background pool, incumbents,
  churn, traffic model, duration, seed) and what to run on it.
* :mod:`repro.experiments.registry` — the pluggable :class:`RunKind`
  registry and :class:`Probe` API: each registered kind owns its spec
  validation, execution, and metric extraction;
  :func:`run_experiment` is a thin registry lookup and ``RUN_KINDS``
  is derived from the registry.
* :mod:`repro.experiments.kinds` — the nine built-in kinds:
  ``static``, ``opt``, ``whitefi``, ``protocol`` (world simulations,
  Figures 10-14), ``discovery`` (AP-discovery races, Figures 8-9),
  ``sift`` (detection/classification accuracy, Table 1), and the
  :mod:`repro.wsdb` trio — ``citywide`` (many APs on one metro
  geolocation database), ``roaming`` (mobile clients under the FCC
  re-check rule), ``querystorm`` (a sharded database cluster under
  storm load, with optional PAWS-style push).
* :mod:`repro.experiments.probes` — composable metric extractors
  (throughput, airtime, switch log, disconnection timeline, discovery
  latency, SIFT confusion counts) that populate ``ExperimentResult``.
* :mod:`repro.experiments.scenario` — :class:`ScenarioBuilder`
  materializes a world from a spec (engine/medium worlds, protocol
  BSSs, discovery sessions, SIFT captures); the single place scenario
  wiring lives.
* :mod:`repro.experiments.runs` — the imperative run functions behind
  the world-simulation kinds (static, OPT baselines, adaptive WhiteFi,
  full protocol).
* :mod:`repro.experiments.results` — structured :class:`ExperimentResult`
  records with a per-kind ``metrics`` payload, aggregation helpers, and
  a spec-hash-keyed result cache.
* :mod:`repro.experiments.parallel` — :class:`ParallelRunner` fans a
  spec x seed grid across worker processes with deterministic per-seed
  streams, falling back to byte-identical sequential execution.
"""

from repro.experiments.parallel import ParallelRunner, sweep_seeds
from repro.experiments.registry import (
    Probe,
    RunKind,
    get_run_kind,
    register_run_kind,
    run_experiment,
    run_kind_names,
    unregister_run_kind,
)
from repro.experiments.results import (
    ExperimentResult,
    ResultCache,
    SummaryStats,
    mean_by,
    metric_value,
    summarize,
)
from repro.experiments.runs import (
    run_opt_baselines,
    run_protocol,
    run_static,
    run_whitefi,
)
from repro.experiments.scenario import ScenarioBuilder, ScenarioConfig, World
from repro.experiments.spec import (
    BackgroundPoolSpec,
    BackgroundSpec,
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)

# Ensure the built-in kinds are registered as soon as the package is
# imported (direct spec/registry users get them lazily regardless).
from repro.experiments import kinds as _builtin_kinds  # noqa: F401  isort: skip

__all__ = [
    "BackgroundPoolSpec",
    "BackgroundSpec",
    "ExperimentSpec",
    "ExperimentResult",
    "MicSpec",
    "ParallelRunner",
    "Probe",
    "RUN_KINDS",
    "ResultCache",
    "RunKind",
    "ScenarioBuilder",
    "ScenarioConfig",
    "ScenarioSpec",
    "SpatialSpec",
    "SummaryStats",
    "TrafficSpec",
    "World",
    "get_run_kind",
    "mean_by",
    "metric_value",
    "register_run_kind",
    "run_experiment",
    "run_kind_names",
    "run_opt_baselines",
    "run_protocol",
    "run_static",
    "run_whitefi",
    "summarize",
    "sweep_seeds",
    "unregister_run_kind",
]


def __getattr__(name: str):
    # RUN_KINDS stays importable from here while being derived from the
    # live registry (plugin registrations included).
    if name == "RUN_KINDS":
        return run_kind_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
