"""The built-in run kinds: the paper's whole evaluation matrix.

Each kind is a :class:`~repro.experiments.registry.RunKind` plugin
owning its spec validation, its world-building hook on
:class:`~repro.experiments.scenario.ScenarioBuilder`, its execution,
and its probe set:

========== ==================================================== =========================================
kind       simulates                                            probes
========== ==================================================== =========================================
static     foreground BSS fixed on one (F, W)                   throughput, switch-log, timeline, airtime
opt        omniscient per-width static baselines (Figs 10-13)   + nested per-baseline records
whitefi    adaptive MCham assignment loop (Figs 10-13)          + MCham timeline
protocol   full message-level BSS (Fig 14 / Section 5.3)        goodput, switch-log, disconnections
discovery  L-SIFT / J-SIFT / baseline AP races (Figs 8-9)       discovery latency + scan counters
sift       SIFT detection/classification accuracy (Table 1)     detection rate + width confusion
citywide   many APs on one metro wsdb (post-FCC-2010 regime)    per-AP throughput, disagreement, db cache
roaming    mobile clients on the wsdb (100 m re-check rule)     re-queries, handoffs, hit rate, violations
querystorm sharded wsdb cluster under storm load (+ push)       shed/coalesce counters, shard stats, violations
replay     a recorded storm trace re-driven through the cluster querystorm metrics + trace provenance
========== ==================================================== =========================================

Importing this module registers all ten; adding an evaluation axis is
a new ``RunKind`` subclass plus ``register_run_kind`` — no dispatcher
edits anywhere.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import constants
from repro.errors import SimulationError
from repro.experiments.probes import (
    AirtimeProbe,
    BaselinesProbe,
    CitywideProbe,
    DisconnectionProbe,
    DiscoveryProbe,
    MchamTimelineProbe,
    ProtocolGoodputProbe,
    ProtocolSwitchLogProbe,
    QuerystormProbe,
    ReplayProbe,
    RoamingProbe,
    SiftAccuracyProbe,
    SiftConfusionProbe,
    SwitchLogProbe,
    ThroughputProbe,
    TimelineProbe,
)
from repro.experiments.registry import (
    RunKind,
    assemble_result,
    register_run_kind,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runs import (
    run_opt_baselines,
    run_protocol,
    run_static,
    run_whitefi,
)
from repro.experiments.scenario import ScenarioBuilder, build_config
from repro.experiments.spec import ExperimentSpec, TrafficSpec
from repro.spectrum.channels import WhiteFiChannel

__all__ = [
    "CitywideKind",
    "DiscoveryKind",
    "OptKind",
    "ProtocolKind",
    "QuerystormKind",
    "RoamingKind",
    "SiftKind",
    "StaticKind",
    "WhiteFiKind",
]


# -- shared validation helpers -------------------------------------------------
#
# The philosophy (unchanged from the monolithic ExperimentSpec checks):
# reject scenario features and kind-specific knobs a run kind would
# silently ignore where intent is unambiguous — plausible-looking
# results from an unsimulated feature are worse than an error.  Knobs
# with None defaults are unambiguous (setting one states intent) and
# are rejected outside their owner kind; tuning knobs with non-None
# defaults (reeval_interval_us, probe_duration_us, aggregation, ...)
# stay unchecked so one scenario template can be reused across kinds.


def _reject_mics(
    spec: ExperimentSpec,
    reason: str = (
        "does not simulate microphone incumbents; "
        "use kind 'protocol' or drop mics"
    ),
) -> None:
    if spec.scenario.mics:
        raise SimulationError(f"kind {spec.kind!r} {reason}")


def _reject_backgrounds(spec: ExperimentSpec) -> None:
    if spec.scenario.backgrounds or spec.scenario.background_pool:
        raise SimulationError(
            f"kind {spec.kind!r} does not simulate background pairs; "
            "use a scenario without backgrounds"
        )


def _reject_channel(spec: ExperimentSpec) -> None:
    if spec.channel is not None:
        raise SimulationError(
            f"kind {spec.kind!r} picks its own channel; "
            "a fixed channel only applies to kind 'static'"
        )


def _reject_timeline(spec: ExperimentSpec) -> None:
    if spec.timeline_interval_us is not None:
        raise SimulationError(
            f"kind {spec.kind!r} does not sample a throughput timeline"
        )


def _reject_custom_traffic(spec: ExperimentSpec, reason: str) -> None:
    if spec.scenario.traffic != TrafficSpec():
        raise SimulationError(
            f"kind {spec.kind!r} {reason}; "
            "a custom TrafficSpec would be ignored"
        )


def _reject_spatial(spec: ExperimentSpec) -> None:
    if spec.scenario.spatial is not None:
        raise SimulationError(
            f"kind {spec.kind!r} uses a single client-side spectrum map; "
            "spatial variation only applies to the world-simulation kinds"
        )


def _reject_foreign_knobs(spec: ExperimentSpec, *owned: str) -> None:
    """Reject kind-specific knobs (None defaults) set for another kind."""
    owners = {
        "hysteresis_margin": ("whitefi",),
        "ap_weight": ("whitefi",),
        "run_until_us": ("protocol",),
        "discovery_algorithm": ("discovery",),
        "sift_width_mhz": ("sift",),
        "sift_rate_mbps": ("sift",),
        "sift_num_packets": ("sift",),
        "citywide_aps": ("citywide", "roaming", "querystorm", "replay"),
        "citywide_extent_km": ("citywide", "roaming", "querystorm", "replay"),
        "citywide_mic_events": (
            "citywide",
            "roaming",
            "querystorm",
            "replay",
        ),
        "roaming_clients": ("roaming", "querystorm", "replay"),
        "roaming_speed_mps": ("roaming", "querystorm", "replay"),
        "roaming_recheck_m": ("roaming", "querystorm", "replay"),
        "storm_shards": ("querystorm", "replay"),
        "storm_offered_qps": ("querystorm", "replay"),
        "storm_push": ("querystorm", "replay"),
        "storm_rate_limit_qps": ("querystorm", "replay"),
        "storm_shed_policy": ("querystorm", "replay"),
        "engine": ("roaming", "querystorm", "replay"),
        "storm_trace": ("querystorm", "replay"),
        "telemetry": ("citywide", "roaming", "querystorm", "replay"),
        "spans": ("roaming", "querystorm", "replay"),
        "span_sample": ("roaming", "querystorm", "replay"),
    }
    for knob, owner_kinds in owners.items():
        if knob not in owned and getattr(spec, knob) is not None:
            names = " / ".join(repr(k) for k in owner_kinds)
            raise SimulationError(
                f"kind {spec.kind!r} does not use {knob}; "
                f"it only applies to kind {names}"
            )


# -- shared wsdb deployment knobs ----------------------------------------------
#
# The citywide_* knobs describe the metro deployment every wsdb kind
# (citywide / roaming / querystorm) runs against; one validator and one
# resolver keep the three kinds agreeing on their semantics instead of
# each carrying its own copy of the checks and the km -> m conversion.


def _validate_citywide_deployment(spec: ExperimentSpec) -> None:
    """Validate the shared citywide_* metro-deployment knobs."""
    if spec.citywide_aps is None or spec.citywide_aps < 1:
        raise SimulationError(
            f"kind {spec.kind!r} requires citywide_aps >= 1 "
            f"(the fixed metro deployment), got {spec.citywide_aps!r}"
        )
    if spec.citywide_extent_km is not None and spec.citywide_extent_km <= 0:
        raise SimulationError(
            f"citywide_extent_km must be > 0, got {spec.citywide_extent_km!r}"
        )
    if spec.citywide_mic_events is not None and spec.citywide_mic_events < 0:
        raise SimulationError(
            "citywide_mic_events must be >= 0, "
            f"got {spec.citywide_mic_events!r}"
        )


def _citywide_extent_m(spec: ExperimentSpec) -> float | None:
    """The metro plane edge in meters (None: the wsdb default)."""
    if spec.citywide_extent_km is None:
        return None
    return spec.citywide_extent_km * 1_000.0


def _validate_roaming_clients(spec: ExperimentSpec) -> None:
    """Validate the mobile-population knobs roaming and querystorm share."""
    if spec.roaming_speed_mps is not None and spec.roaming_speed_mps <= 0:
        raise SimulationError(
            f"roaming_speed_mps must be > 0, got {spec.roaming_speed_mps!r}"
        )
    if spec.roaming_recheck_m is not None and spec.roaming_recheck_m <= 0:
        raise SimulationError(
            f"roaming_recheck_m must be > 0, got {spec.roaming_recheck_m!r}"
        )


def _validate_engine(spec: ExperimentSpec) -> None:
    """Validate the mobile-engine knob roaming and querystorm share."""
    # Imported lazily like every wsdb reach-down: the mobility driver
    # owns the engine registry.
    from repro.wsdb.mobility import ENGINES

    if spec.engine is not None and spec.engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {spec.engine!r}; expected one of {ENGINES}"
        )


def _validate_telemetry(spec: ExperimentSpec) -> None:
    """Validate the telemetry knob every wsdb kind shares."""
    from repro.telemetry import TELEMETRY_MODES

    if spec.telemetry is not None and spec.telemetry not in TELEMETRY_MODES:
        raise SimulationError(
            f"unknown telemetry mode {spec.telemetry!r}; "
            f"expected one of {TELEMETRY_MODES}"
        )


def _telemetry_session(spec: ExperimentSpec):
    """A fresh sim-clock registry when the spec asks for one, else None.

    None keeps the driver's pre-telemetry path byte-identical — the
    ``telemetry="off"`` parity contract.
    """
    if spec.telemetry != "on":
        return None
    from repro.telemetry import MetricsRegistry

    return MetricsRegistry()


def _validate_spans(spec: ExperimentSpec) -> None:
    """Validate the span-tracing knobs the mobile wsdb kinds share."""
    from repro.telemetry.spans import SPANS_MODES, parse_span_sample

    if spec.spans is not None and spec.spans not in SPANS_MODES:
        raise SimulationError(
            f"unknown spans mode {spec.spans!r}; "
            f"expected one of {SPANS_MODES}"
        )
    if spec.span_sample is not None:
        if spec.spans != "on":
            raise SimulationError(
                "span_sample requires spans='on' "
                f"(got spans={spec.spans!r})"
            )
        parse_span_sample(spec.span_sample)


def _spans_session(spec: ExperimentSpec):
    """A fresh span recorder when the spec asks for one, else None.

    None keeps the driver's spans-free path byte-identical — the
    ``spans="off"`` parity contract.
    """
    if spec.spans != "on":
        return None
    from repro.telemetry.spans import SpanRecorder

    return SpanRecorder(sample=spec.span_sample)


def _roaming_kwargs(spec: ExperimentSpec) -> dict[str, float]:
    """Driver overrides for the set mobile-population tuning knobs."""
    kwargs: dict[str, float] = {}
    if spec.roaming_speed_mps is not None:
        kwargs["speed_mps"] = spec.roaming_speed_mps
    if spec.roaming_recheck_m is not None:
        kwargs["recheck_m"] = spec.roaming_recheck_m
    return kwargs


def _reject_wsdb_world_features(spec: ExperimentSpec, traffic_reason: str) -> None:
    """The scenario features none of the wsdb kinds simulate."""
    _reject_channel(spec)
    _reject_backgrounds(spec)
    _reject_spatial(spec)
    _reject_timeline(spec)
    _reject_custom_traffic(spec, traffic_reason)
    _reject_mics(
        spec,
        "generates its own microphone registrations; "
        "use citywide_mic_events instead of scenario mics",
    )


#: The probe set every RunResult-producing kind shares.
_RUN_PROBES = (
    ThroughputProbe(),
    SwitchLogProbe(),
    TimelineProbe(),
    AirtimeProbe(),
)


def _archive_run(
    kind: RunKind, run, spec: ExperimentSpec, kind_name: str
) -> ExperimentResult:
    """Archive a rich in-process RunResult under an explicit kind name.

    Used for the nested per-baseline records of kind "opt", whose kind
    strings ("opt-5mhz", ...) differ from the producing spec's.
    """
    return assemble_result(
        kind,
        spec,
        {"run": run},
        kind_name=kind_name,
        probes=_RUN_PROBES + (MchamTimelineProbe(),),
    )


# -- world-simulation kinds (engine/medium worlds) -----------------------------


class StaticKind(RunKind):
    """Foreground BSS fixed on one (F, W) for the whole run."""

    name = "static"
    summary = "foreground BSS fixed on one (F, W) channel"
    probes = _RUN_PROBES

    def validate_spec(self, spec: ExperimentSpec) -> None:
        if spec.channel is None:
            raise SimulationError("kind 'static' requires a channel")
        _reject_mics(spec)
        _reject_foreign_knobs(spec)

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        config = build_config(spec.scenario)
        run = run_static(
            config,
            WhiteFiChannel(*spec.channel),
            timeline_interval_us=spec.timeline_interval_us,
        )
        return {"spec": spec, "run": run}


class WhiteFiKind(RunKind):
    """The adaptive WhiteFi spectrum-assignment loop (Figures 10-13)."""

    name = "whitefi"
    summary = "adaptive MCham assignment loop with hysteresis"
    probes = _RUN_PROBES + (MchamTimelineProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        _reject_channel(spec)
        _reject_mics(spec)
        _reject_foreign_knobs(spec, "hysteresis_margin", "ap_weight")

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        config = build_config(spec.scenario)
        run = run_whitefi(
            config,
            reeval_interval_us=spec.reeval_interval_us,
            hysteresis_margin=(
                constants.HYSTERESIS_MARGIN
                if spec.hysteresis_margin is None
                else spec.hysteresis_margin
            ),
            ap_weight=spec.ap_weight,
            aggregation=spec.aggregation,
            timeline_interval_us=spec.timeline_interval_us,
        )
        return {"spec": spec, "run": run}


class OptKind(RunKind):
    """The paper's omniscient per-width static baselines."""

    name = "opt"
    summary = "omniscient OPT 5/10/20 MHz static baselines"
    probes = _RUN_PROBES + (BaselinesProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        _reject_channel(spec)
        _reject_mics(spec)
        _reject_timeline(spec)
        _reject_foreign_knobs(spec)

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        config = build_config(spec.scenario)
        baselines = run_opt_baselines(
            config, probe_duration_us=spec.probe_duration_us
        )
        converted = tuple(
            (name, None if run is None else _archive_run(self, run, spec, name))
            for name, run in baselines.items()
            if name != "opt"
        )
        return {
            "spec": spec,
            "run": baselines["opt"],
            "duration_us": config.duration_us,
            "baselines": converted,
        }


class ProtocolKind(RunKind):
    """The full message-level BSS (Section 5.3 / Figure 14)."""

    name = "protocol"
    summary = "full BSS protocol: beacons, sensing, chirps, recovery"
    probes = (
        ProtocolGoodputProbe(),
        ProtocolSwitchLogProbe(),
        DisconnectionProbe(),
    )

    def validate_spec(self, spec: ExperimentSpec) -> None:
        _reject_channel(spec)
        _reject_backgrounds(spec)
        _reject_timeline(spec)
        _reject_foreign_knobs(spec, "run_until_us")
        _reject_custom_traffic(
            spec, "uses the BSS's built-in saturating downlink flow"
        )

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        bss, horizon, boot = run_protocol(
            spec.scenario, run_until_us=spec.run_until_us
        )
        return {
            "spec": spec,
            "bss": bss,
            "horizon_us": horizon,
            "boot_channel": boot,
        }


# -- measurement kinds (RF-environment worlds) ---------------------------------


class DiscoveryKind(RunKind):
    """AP-discovery races: baseline vs L-SIFT vs J-SIFT (Figures 8-9)."""

    name = "discovery"
    summary = "timed AP-discovery race on the scenario's spectrum map"
    probes = (DiscoveryProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        from repro.core.discovery import DISCOVERY_ALGORITHMS, discovery_algorithm
        from repro.errors import DiscoveryError

        if spec.discovery_algorithm is None:
            raise SimulationError(
                "kind 'discovery' requires discovery_algorithm; one of "
                f"{tuple(sorted(DISCOVERY_ALGORITHMS))}"
            )
        try:
            # The algorithm registry owns the unknown-name message.
            discovery_algorithm(spec.discovery_algorithm)
        except DiscoveryError as err:
            raise SimulationError(str(err)) from None
        _reject_channel(spec)
        _reject_mics(spec)
        _reject_backgrounds(spec)
        _reject_spatial(spec)
        _reject_timeline(spec)
        _reject_custom_traffic(
            spec, "races a lone beaconing AP against a scanning client"
        )
        _reject_foreign_knobs(spec, "discovery_algorithm")

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        from repro.core.discovery import discovery_algorithm

        session, ap_channel = ScenarioBuilder(
            spec.scenario
        ).build_discovery_session()
        outcome = discovery_algorithm(spec.discovery_algorithm).discover(
            session
        )
        return {"spec": spec, "outcome": outcome, "ap_channel": ap_channel}


class SiftKind(RunKind):
    """SIFT detection/classification accuracy sweeps (Table 1)."""

    name = "sift"
    summary = "SIFT accuracy over one synthesized iperf capture"
    probes = (SiftAccuracyProbe(), SiftConfusionProbe())

    def validate_spec(self, spec: ExperimentSpec) -> None:
        if spec.sift_width_mhz is None or spec.sift_rate_mbps is None:
            raise SimulationError(
                "kind 'sift' requires sift_width_mhz and sift_rate_mbps"
            )
        if spec.sift_width_mhz not in constants.CHANNEL_WIDTHS_MHZ:
            raise SimulationError(
                f"sift_width_mhz {spec.sift_width_mhz!r} is not a WhiteFi "
                f"width; expected one of {constants.CHANNEL_WIDTHS_MHZ}"
            )
        if spec.sift_rate_mbps <= 0:
            raise SimulationError(
                f"sift_rate_mbps must be > 0, got {spec.sift_rate_mbps!r}"
            )
        if spec.sift_num_packets is not None and spec.sift_num_packets < 1:
            raise SimulationError(
                f"sift_num_packets must be >= 1, got {spec.sift_num_packets!r}"
            )
        _reject_channel(spec)
        _reject_mics(spec)
        _reject_backgrounds(spec)
        _reject_spatial(spec)
        _reject_timeline(spec)
        _reject_custom_traffic(
            spec, "synthesizes its own iperf burst schedule"
        )
        _reject_foreign_knobs(
            spec, "sift_width_mhz", "sift_rate_mbps", "sift_num_packets"
        )

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        from repro.sift.analyzer import SiftAnalyzer
        from repro.sift.workloads import sift_workload_metrics

        trace, bursts, duration_us = ScenarioBuilder(
            spec.scenario
        ).build_sift_capture(
            spec.sift_width_mhz, spec.sift_rate_mbps, spec.sift_num_packets
        )
        scan = SiftAnalyzer().scan(trace)
        workload = sift_workload_metrics(
            # One Data-ACK pair per sent packet is the ground truth.
            scan, bursts, duration_us, spec.sift_width_mhz, len(bursts) // 2
        )
        return {
            "spec": spec,
            "scan": scan,
            "workload": workload,
            "true_width_mhz": spec.sift_width_mhz,
        }


class CitywideKind(RunKind):
    """City-scale White-Fi over a geolocation database (wsdb).

    Many APs across a metro plane query the
    :class:`~repro.wsdb.service.WhiteSpaceDatabase` (instead of
    sensing), pick channels with the existing MCham assignment, and
    recover from mid-session microphone registrations via their backup
    channels.  The scenario's occupied channels seed the metro dial;
    every placement, EIRP, and mic event derives from the scenario
    seed.
    """

    name = "citywide"
    summary = "many APs sharing one metro white-space database"
    probes = (CitywideProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        _validate_citywide_deployment(spec)
        _validate_telemetry(spec)
        _reject_wsdb_world_features(
            spec, "models AP load analytically via MCham, not packet flows"
        )
        _reject_foreign_knobs(
            spec,
            "citywide_aps",
            "citywide_extent_km",
            "citywide_mic_events",
            "telemetry",
        )

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        from repro.wsdb.citywide import simulate_citywide

        db = ScenarioBuilder(spec.scenario).build_citywide_db(
            extent_m=_citywide_extent_m(spec)
        )
        city = simulate_citywide(
            db,
            num_aps=spec.citywide_aps,
            duration_us=spec.scenario.duration_us,
            seed=spec.scenario.seed,
            mic_events=spec.citywide_mic_events or 0,
            telemetry=_telemetry_session(spec),
        )
        return {"spec": spec, "city": city}


class RoamingKind(RunKind):
    """Mobile clients roaming a metro wsdb under the 100 m re-check rule.

    The portable-device workload of the FCC regime: ``roaming_clients``
    mobile clients follow seeded waypoint paths across the
    ``citywide_aps`` deployment, re-querying the
    :class:`~repro.wsdb.service.WhiteSpaceDatabase` only on crossing a
    quantization-square boundary (``roaming_recheck_m``) or TTL
    expiry, associating with the nearest AP their response permits and
    vacating channels when a path enters a mic protection zone.
    ``roaming_recheck_m`` also sets the database's response cell edge,
    keeping the cell-granular protocol aligned with the re-check rule.
    """

    name = "roaming"
    summary = "mobile clients re-querying a metro wsdb as they move"
    probes = (RoamingProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        if spec.roaming_clients is None or spec.roaming_clients < 1:
            raise SimulationError(
                "kind 'roaming' requires roaming_clients >= 1, "
                f"got {spec.roaming_clients!r}"
            )
        _validate_citywide_deployment(spec)
        _validate_roaming_clients(spec)
        _validate_engine(spec)
        _validate_telemetry(spec)
        _validate_spans(spec)
        _reject_wsdb_world_features(
            spec, "models association and compliance, not packet flows"
        )
        _reject_foreign_knobs(
            spec,
            "roaming_clients",
            "roaming_speed_mps",
            "roaming_recheck_m",
            "citywide_aps",
            "citywide_extent_km",
            "citywide_mic_events",
            "engine",
            "telemetry",
            "spans",
            "span_sample",
        )

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        from repro.wsdb.mobility import simulate_roaming

        db = ScenarioBuilder(spec.scenario).build_citywide_db(
            extent_m=_citywide_extent_m(spec),
            cache_resolution_m=spec.roaming_recheck_m,
        )
        roaming = simulate_roaming(
            db,
            num_aps=spec.citywide_aps,
            num_clients=spec.roaming_clients,
            duration_us=spec.scenario.duration_us,
            seed=spec.scenario.seed,
            mic_events=spec.citywide_mic_events or 0,
            engine=spec.engine or "scalar",
            telemetry=_telemetry_session(spec),
            spans=_spans_session(spec),
            **_roaming_kwargs(spec),
        )
        return {"spec": spec, "roaming": roaming}


class QuerystormKind(RunKind):
    """A sharded wsdb cluster under storm load, with optional push.

    The service-tier workload: ``storm_shards`` cell-aligned shards
    (each its own database over its territory's incumbent subset)
    behind a batching frontend, serving ``storm_offered_qps`` synthetic
    requests per second *plus* the ``roaming_clients`` mobile
    population and the ``citywide_aps`` deployment's control traffic.
    With ``storm_push`` the clients register for PAWS-style zone
    notifications and vacate protected channels the tick a microphone
    registers, instead of riding a stale response to the next FCC
    re-check — the violation-window closure ``bench_wsdb_cluster``
    measures against pull-only runs.

    ``storm_trace`` optionally replaces the synthetic generator with a
    recorded trace's query stream (``repro.traces``); the ``replay``
    kind below is the same run with the trace *required* — the
    bench-against-captured-traffic configuration.
    """

    name = "querystorm"
    summary = "sharded wsdb cluster under a query storm (optional push)"
    probes = (QuerystormProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        # Imported lazily like every wsdb reach-down: the cluster
        # geometry and policy registry own these checks' semantics.
        from repro.wsdb.cluster.frontend import SHED_POLICIES
        from repro.wsdb.cluster.router import cells_per_side, shard_grid
        from repro.wsdb.model import DEFAULT_EXTENT_M
        from repro.wsdb.service import DEFAULT_CACHE_RESOLUTION_M

        if spec.storm_shards is None or spec.storm_shards < 1:
            raise SimulationError(
                f"kind {spec.kind!r} requires storm_shards >= 1, "
                f"got {spec.storm_shards!r}"
            )
        if spec.storm_offered_qps is not None and spec.storm_offered_qps < 0:
            raise SimulationError(
                f"storm_offered_qps must be >= 0, got {spec.storm_offered_qps!r}"
            )
        if spec.storm_rate_limit_qps is not None and spec.storm_rate_limit_qps <= 0:
            raise SimulationError(
                "storm_rate_limit_qps must be > 0 (or None for unlimited), "
                f"got {spec.storm_rate_limit_qps!r}"
            )
        if (
            spec.storm_shed_policy is not None
            and spec.storm_shed_policy not in SHED_POLICIES
        ):
            raise SimulationError(
                f"unknown storm_shed_policy {spec.storm_shed_policy!r}; "
                f"expected one of {tuple(sorted(SHED_POLICIES))}"
            )
        if spec.roaming_clients is not None and spec.roaming_clients < 0:
            raise SimulationError(
                f"{spec.kind} roaming_clients must be >= 0, "
                f"got {spec.roaming_clients!r}"
            )
        _validate_citywide_deployment(spec)
        _validate_roaming_clients(spec)
        _validate_engine(spec)
        _validate_telemetry(spec)
        _validate_spans(spec)
        # Shard-grid feasibility, checked eagerly with the same
        # geometry the router will use: an infeasible spec must fail
        # at construction, not mid-fan-out inside a ParallelRunner.
        extent_m = _citywide_extent_m(spec) or DEFAULT_EXTENT_M
        resolution_m = spec.roaming_recheck_m or DEFAULT_CACHE_RESOLUTION_M
        cells = cells_per_side(extent_m, resolution_m)
        cols, rows = shard_grid(spec.storm_shards)
        if cols > cells or rows > cells:
            raise SimulationError(
                f"storm_shards={spec.storm_shards} needs a {cols}x{rows} "
                f"grid, but the metro has only {cells} response cells per "
                "axis; lower storm_shards, raise citywide_extent_km, or "
                "shrink roaming_recheck_m"
            )
        _reject_wsdb_world_features(
            spec, "models cluster load and compliance, not packet flows"
        )
        _reject_foreign_knobs(
            spec,
            "storm_shards",
            "storm_offered_qps",
            "storm_push",
            "storm_rate_limit_qps",
            "storm_shed_policy",
            "roaming_clients",
            "roaming_speed_mps",
            "roaming_recheck_m",
            "citywide_aps",
            "citywide_extent_km",
            "citywide_mic_events",
            "engine",
            "storm_trace",
            "telemetry",
            "spans",
            "span_sample",
        )

    def execute(self, spec: ExperimentSpec) -> Mapping[str, Any]:
        from repro.wsdb.cluster import simulate_querystorm

        router = ScenarioBuilder(spec.scenario).build_wsdb_cluster(
            num_shards=spec.storm_shards,
            extent_m=_citywide_extent_m(spec),
            cache_resolution_m=spec.roaming_recheck_m,
        )
        storm_source = None
        if spec.storm_trace is not None:
            from repro.traces.replay import TraceWorkload

            storm_source = TraceWorkload.open(spec.storm_trace)
        storm = simulate_querystorm(
            router,
            num_aps=spec.citywide_aps,
            num_clients=spec.roaming_clients or 0,
            duration_us=spec.scenario.duration_us,
            seed=spec.scenario.seed,
            offered_qps=spec.storm_offered_qps or 0.0,
            push=bool(spec.storm_push),
            mic_events=spec.citywide_mic_events or 0,
            rate_limit_qps=spec.storm_rate_limit_qps,
            policy=spec.storm_shed_policy or "reject",
            engine=spec.engine or "scalar",
            storm_source=storm_source,
            telemetry=_telemetry_session(spec),
            spans=_spans_session(spec),
            **_roaming_kwargs(spec),
        )
        return {"spec": spec, "storm": storm}


class ReplayKind(QuerystormKind):
    """A recorded storm trace re-driven through the cluster.

    Identical to ``querystorm`` except the workload: ``storm_trace``
    is *required*, and its recorded query stream is fed back through
    the frontend in place of the synthetic generator — benches run
    against captured traffic.  ``storm_offered_qps`` is accepted purely
    as a report annotation (set it to the source run's value and the
    replay's metrics compare key-for-key equal to the source's);
    the replayed load itself comes entirely from the trace.

    Replaying a run recorded with the same deployment/seed knobs
    reproduces the source report bit-identically on either engine —
    the contract ``tests/experiments/test_replay_kind.py`` and the
    ``bench_trace_replay`` smoke pin.
    """

    name = "replay"
    summary = "re-drive a recorded storm trace through the wsdb cluster"
    probes = (ReplayProbe(),)

    def validate_spec(self, spec: ExperimentSpec) -> None:
        if not spec.storm_trace:
            raise SimulationError(
                "kind 'replay' requires storm_trace (a recorded "
                f"repro.traces file), got {spec.storm_trace!r}"
            )
        super().validate_spec(spec)


for _kind in (
    StaticKind(),
    WhiteFiKind(),
    OptKind(),
    ProtocolKind(),
    DiscoveryKind(),
    SiftKind(),
    CitywideKind(),
    RoamingKind(),
    QuerystormKind(),
    ReplayKind(),
):
    register_run_kind(_kind)
