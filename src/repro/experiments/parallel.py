"""Parallel seed sweeps: fan a spec x seed grid across processes.

``ParallelRunner`` executes a grid of :class:`ExperimentSpec` jobs on a
``concurrent.futures.ProcessPoolExecutor``.  Every job travels as
canonical JSON and comes back as canonical JSON, so the parallel path,
the sequential fallback, and the result cache all produce byte-identical
records: simulations seed every stream from the scenario's master seed
(via :mod:`repro.sim.rng`), never from process-global state.

On machines (or sandboxes) where worker processes are unavailable, the
runner degrades to in-process sequential execution with identical
results — parallelism is purely a wall-clock optimization.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.errors import UnknownRunKindError
from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult, ResultCache
from repro.experiments.spec import ExperimentSpec
from repro.sim.rng import stream_seed

__all__ = ["ParallelRunner", "sweep_seeds"]


def sweep_seeds(master_seed: int, count: int) -> tuple[int, ...]:
    """*count* independent scenario seeds derived from one master seed.

    Pure and stable across processes: repeat runs of a sweep regenerate
    the same seed grid (and therefore hit the result cache).
    """
    return tuple(stream_seed(master_seed, "sweep", i) for i in range(count))


def _execute_json(payload: str) -> str:
    """Worker entry point: spec JSON in, result JSON out."""
    spec = ExperimentSpec.from_json(payload)
    return run_experiment(spec).to_json()


class ParallelRunner:
    """Executes experiment grids across worker processes.

    Args:
        max_workers: worker process count.  ``None`` uses the CPU count;
            ``0`` or ``1`` forces in-process sequential execution.
        cache: optional spec-hash-keyed result cache consulted before
            dispatch and updated after every run.
        profiler: optional wall-clock
            :class:`~repro.telemetry.PhaseProfiler`; grids then time
            their "plan" (grid expansion + cache probing) and
            "fan-out" (execution, parallel or sequential) phases.
            Wall-clock only — results stay byte-identical with or
            without it.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        profiler=None,
    ):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        self.max_workers = max_workers
        self.cache = cache
        if profiler is None:
            from repro.telemetry import NULL_PROFILER

            profiler = NULL_PROFILER
        self.profiler = profiler
        #: How the last grid actually executed ("parallel", "sequential",
        #: or "cached" when every cell hit the cache) — for diagnostics.
        self.last_execution_mode: str | None = None

    # -- grid construction -----------------------------------------------------

    @staticmethod
    def expand_grid(
        specs: ExperimentSpec | Iterable[ExperimentSpec],
        seeds: Sequence[int] | None = None,
    ) -> list[ExperimentSpec]:
        """The job list for a spec x seed grid, in deterministic order.

        With ``seeds=None`` each spec runs once under its own scenario
        seed; otherwise every spec is re-seeded with every seed (specs
        outer, seeds inner).
        """
        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        jobs: list[ExperimentSpec] = []
        for spec in specs:
            if seeds is None:
                jobs.append(spec)
            else:
                jobs.extend(spec.with_seed(seed) for seed in seeds)
        return jobs

    # -- execution -------------------------------------------------------------

    def run_grid(
        self,
        specs: ExperimentSpec | Iterable[ExperimentSpec],
        seeds: Sequence[int] | None = None,
    ) -> list[ExperimentResult]:
        """Run the spec x seed grid; results in grid order.

        Cached cells are returned without execution.  The remaining jobs
        run on worker processes when ``max_workers > 1`` (falling back to
        sequential execution if the pool cannot be created), in-process
        otherwise.
        """
        with self.profiler.phase("plan"):
            jobs = self.expand_grid(specs, seeds)
            results: dict[int, ExperimentResult] = {}
            pending: list[tuple[int, ExperimentSpec]] = []
            seen_hashes: dict[str, int] = {}
            duplicates: list[tuple[int, int]] = []
            for i, job in enumerate(jobs):
                first = seen_hashes.get(job.spec_hash)
                if first is not None:
                    # Identical cell already in this grid: run once,
                    # share.
                    duplicates.append((i, first))
                    continue
                seen_hashes[job.spec_hash] = i
                cached = (
                    self.cache.get(job.spec_hash)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    results[i] = cached
                else:
                    pending.append((i, job))

        with self.profiler.phase("fan-out"):
            if not pending:
                self.last_execution_mode = "cached"
            elif self.max_workers > 1:
                self.last_execution_mode = "parallel"
                try:
                    self._run_parallel(pending, results)
                except (OSError, BrokenExecutor, UnknownRunKindError):
                    # Process pools need fork/spawn and semaphores
                    # (OSError inside restricted sandboxes) and workers
                    # can die mid-sweep (BrokenProcessPool): degrade
                    # gracefully, re-running only the cells that did
                    # not complete.  UnknownRunKindError from a worker
                    # covers plugin RunKinds under spawn-based
                    # multiprocessing (the registration only exists in
                    # the parent): the sequential path can still run
                    # them.  Any other simulation failure is
                    # deterministic and propagates without a wasteful
                    # sequential replay.
                    self.last_execution_mode = "sequential"
                    remaining = [p for p in pending if p[0] not in results]
                    self._run_sequential(remaining, results)
            else:
                self.last_execution_mode = "sequential"
                self._run_sequential(pending, results)

        for index, first in duplicates:
            results[index] = results[first]
        return [results[i] for i in range(len(jobs))]

    def _store(self, index: int, payload: str, results: dict) -> None:
        result = ExperimentResult.from_json(payload)
        results[index] = result
        if self.cache is not None:
            try:
                self.cache.put(result)
            except OSError:
                # The cache is an optimization: an unwritable directory
                # or full disk must not abort the sweep (or trip the
                # broken-pool fallback and recompute the grid).
                pass

    def _run_sequential(
        self, pending: list[tuple[int, ExperimentSpec]], results: dict
    ) -> None:
        for index, job in pending:
            self._store(index, _execute_json(job.to_json()), results)

    def _run_parallel(
        self, pending: list[tuple[int, ExperimentSpec]], results: dict
    ) -> None:
        workers = min(self.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            payloads = executor.map(
                _execute_json, [job.to_json() for _, job in pending]
            )
            for (index, _), payload in zip(pending, payloads):
                self._store(index, payload, results)
