"""Composable metric probes shared by the built-in run kinds.

Each probe reads one family of raw artifacts (see the conventional keys
below) and emits a flat mapping; :func:`repro.experiments.registry.assemble_result`
routes keys that name ``ExperimentResult`` fields into the typed record
and everything else into the per-kind ``metrics`` payload.

Conventional artifact keys:

* ``"run"`` — a :class:`~repro.experiments.runs.RunResult` (or None),
  produced by the world-simulation kinds (static / opt / whitefi).
* ``"duration_us"`` — measured-window fallback when ``"run"`` is None
  (an OPT sweep with no valid channel).
* ``"bss"`` / ``"horizon_us"`` / ``"boot_channel"`` — a finished
  :class:`~repro.core.network.WhiteFiBss` (protocol kind).
* ``"outcome"`` / ``"ap_channel"`` — a
  :class:`~repro.core.discovery.DiscoveryOutcome` plus the hidden AP's
  channel (discovery kind).
* ``"scan"`` / ``"workload"`` — a SIFT scan over a synthesized capture
  plus its ground truth (sift kind).
* ``"city"`` — the plain-data report of one
  :func:`repro.wsdb.citywide.simulate_citywide` session (citywide
  kind).
* ``"roaming"`` — the plain-data report of one
  :func:`repro.wsdb.mobility.simulate_roaming` session (roaming kind).
* ``"storm"`` — the plain-data report of one
  :func:`repro.wsdb.cluster.simulate_querystorm` session (querystorm
  kind).

A new kind composes these freely — reusing ``"run"`` gets the whole
throughput/airtime/switch-log family for free — or adds its own probe
emitting payload metrics only.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

__all__ = [
    "AirtimeProbe",
    "BaselinesProbe",
    "CitywideProbe",
    "DisconnectionProbe",
    "DiscoveryProbe",
    "MchamTimelineProbe",
    "ProtocolGoodputProbe",
    "ProtocolSwitchLogProbe",
    "QuerystormProbe",
    "ReplayProbe",
    "RoamingProbe",
    "SiftAccuracyProbe",
    "SiftConfusionProbe",
    "SwitchLogProbe",
    "ThroughputProbe",
    "TimelineProbe",
    "channel_tuple",
]


def channel_tuple(channel) -> tuple[int, float] | None:
    """(center_index, width_mhz) of a WhiteFiChannel (None passthrough)."""
    if channel is None:
        return None
    return (channel.center_index, channel.width_mhz)


class ThroughputProbe:
    """Goodput over the measured window (from a ``RunResult``)."""

    name = "throughput"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        run = raw.get("run")
        if run is None:
            return {
                "aggregate_mbps": 0.0,
                "per_client_mbps": 0.0,
                "duration_us": float(raw.get("duration_us", 0.0)),
            }
        return {
            "aggregate_mbps": run.aggregate_mbps,
            "per_client_mbps": run.per_client_mbps,
            "duration_us": run.duration_us,
        }


class SwitchLogProbe:
    """The (time, channel) switch log of a ``RunResult``."""

    name = "switch-log"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        run = raw.get("run")
        if run is None:
            return {"channel_history": ()}
        return {
            "channel_history": tuple(
                (t, c.center_index, c.width_mhz) for t, c in run.channel_history
            )
        }


class TimelineProbe:
    """Windowed throughput samples of a ``RunResult``."""

    name = "throughput-timeline"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        run = raw.get("run")
        return {
            "throughput_timeline": ()
            if run is None
            else tuple(run.throughput_timeline)
        }


class AirtimeProbe:
    """Per-UHF-channel busy fraction of a ``RunResult``."""

    name = "airtime"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        run = raw.get("run")
        return {
            "airtime_by_channel": ()
            if run is None
            else tuple(sorted(run.airtime_by_channel.items()))
        }


class MchamTimelineProbe:
    """Per-width best MCham score samples of a ``RunResult``."""

    name = "mcham-timeline"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        run = raw.get("run")
        return {
            "mcham_timeline": ()
            if run is None
            else tuple(
                (t, tuple(sorted(scores.items())))
                for t, scores in run.mcham_timeline
            )
        }


class BaselinesProbe:
    """Pass-through for pre-converted per-baseline sub-results (OPT)."""

    name = "baselines"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        return {"baselines": raw.get("baselines", ())}


class ProtocolGoodputProbe:
    """BSS-wide goodput over the full protocol horizon."""

    name = "protocol-goodput"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        bss = raw["bss"]
        horizon = raw["horizon_us"]
        delivered = bss.ap_node.delivered_bytes + sum(
            node.delivered_bytes for _, node in bss.clients
        )
        mbps = delivered * 8.0 / horizon if horizon > 0 else 0.0
        return {
            "aggregate_mbps": mbps,
            "per_client_mbps": mbps / max(len(bss.clients), 1),
            "duration_us": horizon,
        }


class ProtocolSwitchLogProbe:
    """Boot channel plus every post-recovery retune of the BSS."""

    name = "protocol-switch-log"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        bss = raw["bss"]
        boot = raw["boot_channel"]
        history: list[tuple[float, int, float]] = []
        if boot is not None:
            history.append((0.0, boot.center_index, boot.width_mhz))
        for episode in bss.disconnections:
            if (
                episode.reconnected_us is not None
                and episode.new_channel is not None
            ):
                history.append(
                    (
                        episode.reconnected_us,
                        episode.new_channel.center_index,
                        episode.new_channel.width_mhz,
                    )
                )
        return {"channel_history": tuple(history)}


class DisconnectionProbe:
    """The Section 5.3 disconnection/recovery episode timeline."""

    name = "disconnections"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        from repro.experiments.results import DisconnectionRecord

        bss = raw["bss"]
        return {
            "disconnections": tuple(
                DisconnectionRecord(
                    mic_onset_us=e.mic_onset_us,
                    vacated_us=e.vacated_us,
                    chirp_heard_us=e.chirp_heard_us,
                    reconnected_us=e.reconnected_us,
                    new_channel=channel_tuple(e.new_channel),
                )
                for e in bss.disconnections
            )
        }


class DiscoveryProbe:
    """AP-discovery race metrics (Figures 8-9).

    Emits the discovered channel as the run's single switch-log entry
    (so ``final_channel`` works uniformly) plus a payload with the
    latency breakdown: total elapsed time, SIFT scans, beacon dwells,
    and whether the race found the hidden AP.
    """

    name = "discovery"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        outcome = raw["outcome"]
        found = channel_tuple(outcome.channel)
        history = (
            ((outcome.elapsed_us, found[0], found[1]),) if found else ()
        )
        return {
            "duration_us": outcome.elapsed_us,
            "channel_history": history,
            "discovery_us": outcome.elapsed_us,
            "discovery_succeeded": outcome.succeeded,
            "discovered_channel": found,
            "ap_channel": channel_tuple(raw["ap_channel"]),
            "sift_scans": outcome.sift_scans,
            "beacon_dwells": outcome.beacon_dwells,
            "scanned_indices": tuple(outcome.scanned_indices),
        }


class CitywideProbe:
    """City-scale deployment metrics off one ``simulate_citywide`` report.

    Routes the city's aggregate/mean throughput into the typed result
    fields (per "client" reads per AP at city scale) and everything
    else — assignment outcomes, mic-displacement accounting, the
    availability-disagreement summary, and the flattened wsdb cache
    counters (``db_*``) — into the payload.
    """

    name = "citywide"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        city = raw["city"]
        metrics: dict[str, Any] = {
            "aggregate_mbps": city["aggregate_mbps"],
            "per_client_mbps": city["mean_ap_mbps"],
            "duration_us": city["duration_us"],
        }
        for key in (
            "num_aps",
            "assigned_aps",
            "unserved_aps",
            "min_ap_mbps",
            "width_counts",
            "availability_disagreement",
            "mic_events",
            "displaced_aps",
            "backup_recoveries",
            "full_reassignments",
            "outages",
            "noncompliant_aps",
            "per_ap",
        ):
            metrics[key] = city[key]
        for key, value in city["db"].items():
            metrics[f"db_{key}"] = value
        if "telemetry" in city:
            metrics["telemetry"] = city["telemetry"]
        return metrics


class RoamingProbe:
    """Mobile-client metrics off one ``simulate_roaming`` report.

    Everything is payload: re-query counts (the pull-based 100 m
    re-check rule), handoffs, channel vacations, connectivity and
    violation-free fractions, the mic-displacement accounting shared
    with the citywide kind, and the flattened wsdb cache counters
    (``db_*`` — the cell-granular protocol's hit rate is the headline
    number for dense mobile deployments).
    """

    name = "roaming"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        roaming = raw["roaming"]
        metrics: dict[str, Any] = {"duration_us": roaming["duration_us"]}
        for key in (
            "num_aps",
            "num_clients",
            "tick_us",
            "speed_mps",
            "recheck_m",
            "assigned_aps",
            "requeries",
            "requeries_per_client",
            "handoffs",
            "vacations",
            "connected_ticks",
            "disconnected_ticks",
            "connected_fraction",
            "violation_ticks",
            "violation_free_fraction",
            "mic_events",
            "displaced_aps",
            "backup_recoveries",
            "full_reassignments",
            "outages",
            "per_client",
        ):
            metrics[key] = roaming[key]
        for key, value in roaming["db"].items():
            metrics[f"db_{key}"] = value
        if "telemetry" in roaming:
            metrics["telemetry"] = roaming["telemetry"]
        if "spans" in roaming:
            metrics["spans"] = roaming["spans"]
        return metrics


class QuerystormProbe:
    """Cluster metrics off one ``simulate_querystorm`` report.

    Everything is payload: storm/admission accounting (requests, shed,
    served-stale, coalesced — flattened ``frontend_*``), push fan-out
    (``push_*``, None-safe when the run was pull-only), the mobility
    and compliance numbers shared with the roaming kind, the
    per-shard database snapshots, and the aggregated cluster counters
    (``db_*`` — ``db_candidates_per_query`` is the sharding headline).
    """

    name = "querystorm"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        storm = raw["storm"]
        metrics: dict[str, Any] = {"duration_us": storm["duration_us"]}
        for key in (
            "num_aps",
            "num_clients",
            "num_shards",
            "shard_grid",
            "tick_us",
            "speed_mps",
            "recheck_m",
            "offered_qps",
            "push",
            "rate_limit_qps",
            "shed_policy",
            "storm_queries",
            "assigned_aps",
            "requeries",
            "deferred_requeries",
            "push_refreshes",
            "handoffs",
            "vacations",
            "connected_ticks",
            "disconnected_ticks",
            "connected_fraction",
            "violation_ticks",
            "violation_us",
            "violation_free_fraction",
            "mic_events",
            "displaced_aps",
            "backup_recoveries",
            "full_reassignments",
            "outages",
            "per_shard",
        ):
            metrics[key] = storm[key]
        for key, value in storm["frontend"].items():
            metrics[f"frontend_{key}"] = value
        for key, value in (storm["push_stats"] or {}).items():
            metrics[f"push_{key}"] = value
        for key, value in storm["db"].items():
            metrics[f"db_{key}"] = value
        if "telemetry" in storm:
            metrics["telemetry"] = storm["telemetry"]
        if "spans" in storm:
            metrics["spans"] = storm["spans"]
        return metrics


class ReplayProbe(QuerystormProbe):
    """The querystorm metrics plus trace-replay provenance.

    A replayed storm reports through the full querystorm metric set
    (so source and replay runs compare key-for-key), with two
    annotations on top: ``storm_trace`` (the trace the workload came
    from) and ``replayed_queries`` (the storm queries actually
    re-issued — the trace's query-event count once the run covers the
    whole recording).
    """

    name = "replay"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        metrics = dict(super().extract(raw))
        metrics["storm_trace"] = raw["spec"].storm_trace
        metrics["replayed_queries"] = raw["storm"]["storm_queries"]
        return metrics


class SiftAccuracyProbe:
    """Table 1 detection-rate metrics over one synthesized iperf run."""

    name = "sift-accuracy"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        workload = raw["workload"]
        return {
            "duration_us": workload["capture_us"],
            "sift_sent": workload["sent"],
            "sift_detected": workload["detected"],
            "detection_rate": workload["detection_rate"],
            "airtime_measured": workload["airtime_fraction"],
            "busy_us_measured": workload["busy_us_measured"],
            "busy_us_true": workload["busy_us_true"],
        }


class SiftConfusionProbe:
    """Width-classification confusion counts of one SIFT scan.

    For a capture whose ground truth is a single width, a perfect
    classifier puts every matched exchange in that width's bucket;
    off-width counts are confusions (the reduced-amplitude 5 MHz
    leading edge is the paper's canonical source).
    """

    name = "sift-confusion"

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        scan = raw["scan"]
        true_width = raw["true_width_mhz"]
        counts = Counter(e.width_mhz for e in scan.exchanges)
        total = sum(counts.values())
        correct = counts.get(true_width, 0)
        return {
            "true_width_mhz": true_width,
            "width_counts": tuple(sorted(counts.items())),
            "classification_accuracy": correct / total if total else 0.0,
        }
