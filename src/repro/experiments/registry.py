"""The RunKind registry: pluggable experiment kinds and metric probes.

The paper's evaluation is one matrix — spectrum assignment (Figures
10-13), the disconnection protocol (Figure 14 / Section 5.3), AP
discovery races (Figures 8-9), and SIFT accuracy (Table 1) — and every
slice of it runs through the same pipeline::

    ExperimentSpec --> RunKind.execute --> raw artifacts --> Probes
                                                        --> ExperimentResult

A :class:`RunKind` is a registered object owning everything one
evaluation axis needs:

* **spec validation** (:meth:`RunKind.validate_spec`) — the checks that
  used to be if/elif branches in ``ExperimentSpec.__post_init__``;
* **execution** (:meth:`RunKind.execute`) — building a world via
  :class:`~repro.experiments.scenario.ScenarioBuilder` and running it,
  returning a dict of raw artifacts;
* **probes** (:attr:`RunKind.probes`) — composable metric extractors
  that read those artifacts and populate the
  :class:`~repro.experiments.results.ExperimentResult`: keys matching
  result fields fill the typed record, everything else lands in the
  per-kind ``metrics`` payload.

:func:`run_experiment` is a thin registry lookup; registering a new
kind makes it available to :class:`ParallelRunner` sweeps, the result
cache, and the JSON spec format with no dispatcher edits.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Protocol

from repro.errors import SimulationError, UnknownRunKindError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.results import ExperimentResult
    from repro.experiments.spec import ExperimentSpec

__all__ = [
    "Probe",
    "RunKind",
    "assemble_result",
    "get_run_kind",
    "probe_metrics",
    "register_run_kind",
    "run_experiment",
    "run_kind_names",
    "unregister_run_kind",
]


class Probe(Protocol):
    """A composable metric extractor.

    Probes read the raw artifacts a :class:`RunKind` produced and return
    a flat mapping.  Keys that name :class:`ExperimentResult` fields
    (``aggregate_mbps``, ``channel_history``, ...) populate the typed
    record; any other key becomes an entry of the result's per-kind
    ``metrics`` payload.  Probes must be deterministic functions of the
    artifacts — they run in worker processes and their output is part of
    the byte-identical result contract.
    """

    name: str

    def extract(self, raw: Mapping[str, Any]) -> Mapping[str, Any]:
        """Metrics extracted from the raw run artifacts."""
        ...


class RunKind(abc.ABC):
    """One pluggable experiment kind (an axis of the evaluation matrix).

    Subclasses define:

    Attributes:
        name: the spec's ``kind`` string (registry key).
        summary: one line for docs and error messages — what the kind
            simulates.
        probes: metric extractors applied to :meth:`execute`'s artifacts.
    """

    name: ClassVar[str]
    summary: ClassVar[str] = ""
    probes: ClassVar[tuple[Probe, ...]] = ()

    def validate_spec(self, spec: "ExperimentSpec") -> None:
        """Reject spec/kind combinations this kind would silently ignore.

        Called from ``ExperimentSpec.__post_init__`` after generic
        normalization; raise :class:`SimulationError` on any scenario
        feature or tuning knob the kind does not consume where intent
        is unambiguous.
        """

    @abc.abstractmethod
    def execute(self, spec: "ExperimentSpec") -> Mapping[str, Any]:
        """Run the experiment; returns the raw artifacts probes read.

        Must be fully deterministic in *spec* (derive every random
        stream from ``spec.scenario.seed``): the same spec produces the
        same artifacts — and therefore a byte-identical result — in any
        process.
        """


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, RunKind] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in kinds on first registry access.

    Import-time registration would cycle (kinds need the scenario
    builder, which needs the spec module, whose validation needs the
    registry), so the built-ins register lazily — any lookup path works
    even when only ``repro.experiments.spec`` was imported.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    before = set(_REGISTRY)
    try:
        import repro.experiments.kinds  # noqa: F401  (registers on import)
    except BaseException:
        # Roll back partial registrations and leave the flag unset: the
        # root-cause error must resurface identically on every access,
        # not decay into an empty registry ("unknown run kind 'static'")
        # or a wedged one ("'static' is already registered").  Sorted:
        # cleanup order must not depend on set hash order.
        for name in sorted(set(_REGISTRY) - before):
            del _REGISTRY[name]
        raise
    _BUILTINS_LOADED = True


def register_run_kind(kind: RunKind) -> RunKind:
    """Register *kind* under ``kind.name``; returns it for chaining.

    Raises:
        SimulationError: when the name is empty or already registered —
            two kinds silently shadowing each other would make the same
            spec JSON mean different experiments.
    """
    name = getattr(kind, "name", "")
    if not name or not isinstance(name, str):
        raise SimulationError(
            f"run kind {kind!r} must define a non-empty string `name`"
        )
    if name in _REGISTRY:
        raise SimulationError(
            f"run kind {name!r} is already registered "
            f"({_REGISTRY[name].__class__.__name__}); unregister it first"
        )
    _REGISTRY[name] = kind
    return kind


def unregister_run_kind(name: str) -> RunKind:
    """Remove and return a registered kind (test/plugin teardown hook)."""
    _ensure_builtins()
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise SimulationError(f"run kind {name!r} is not registered") from None


def run_kind_names() -> tuple[str, ...]:
    """All registered kind names, sorted — the public ``RUN_KINDS`` set."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_run_kind(name: str) -> RunKind:
    """Look up a registered kind.

    Raises:
        UnknownRunKindError: for an unknown name, listing the
            registered kinds in sorted order.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownRunKindError(
            f"unknown run kind {name!r}; expected one of {run_kind_names()}"
        ) from None


# -- execution -----------------------------------------------------------------


def _result_field_names() -> frozenset[str]:
    from repro.experiments.results import ExperimentResult

    return frozenset(
        f.name for f in dataclasses.fields(ExperimentResult)
    ) - {"kind", "spec_hash", "seed", "metrics"}


def probe_metrics(
    probes: tuple[Probe, ...], raw: Mapping[str, Any]
) -> tuple[dict[str, Any], tuple[tuple[str, Any], ...]]:
    """Run *probes* over *raw*; returns (result fields, metrics payload).

    Probe outputs merge in probe order; a key produced twice is a
    programming error in the probe set and raises.
    """
    field_names = _result_field_names()
    fields: dict[str, Any] = {}
    metrics: list[tuple[str, Any]] = []
    seen: set[str] = set()
    for probe in probes:
        for key, value in probe.extract(raw).items():
            if key in seen:
                raise SimulationError(
                    f"probe {probe.name!r} re-emits metric {key!r} "
                    "already produced by an earlier probe"
                )
            seen.add(key)
            if key in field_names:
                fields[key] = value
            else:
                metrics.append((key, value))
    return fields, tuple(metrics)


def assemble_result(
    kind: RunKind,
    spec: "ExperimentSpec",
    raw: Mapping[str, Any],
    *,
    kind_name: str | None = None,
    probes: tuple[Probe, ...] | None = None,
) -> "ExperimentResult":
    """Run *kind*'s probes over *raw* and build the archival record.

    Args:
        kind_name: record-kind override for sub-results whose kind
            string differs from the producing spec's (OPT's nested
            "opt-5mhz"/... baselines).
        probes: probe-set override (default: ``kind.probes``).
    """
    from repro.experiments.results import ExperimentResult

    fields, metrics = probe_metrics(
        kind.probes if probes is None else probes, raw
    )
    return ExperimentResult(
        kind=spec.kind if kind_name is None else kind_name,
        spec_hash=spec.spec_hash,
        seed=spec.scenario.seed,
        metrics=metrics,
        **fields,
    )


def run_experiment(spec: "ExperimentSpec") -> "ExperimentResult":
    """Execute one declarative experiment and archive the result.

    A thin registry dispatch: look the kind up, execute, probe.  Fully
    deterministic in *spec* — the same spec (including the scenario
    seed) produces a byte-identical ``ExperimentResult`` JSON encoding
    in any process, the property ``ParallelRunner`` relies on.

    Raises:
        SimulationError: for an unregistered ``spec.kind``.
    """
    kind = get_run_kind(spec.kind)
    return assemble_result(kind, spec, kind.execute(spec))
