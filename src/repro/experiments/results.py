"""Structured experiment results, aggregation, and caching.

``ExperimentResult`` is the archive-grade record of one run: every field
is plain data with a canonical JSON form, so results from worker
processes, caches, and live runs are interchangeable — and comparable
byte for byte, which is how the parallel/sequential equivalence
guarantee is tested.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

__all__ = [
    "DisconnectionRecord",
    "ExperimentResult",
    "ResultCache",
    "SummaryStats",
    "mean_by",
    "summarize",
]


@dataclass(frozen=True)
class DisconnectionRecord:
    """One disconnection/reconnection episode (Section 5.3 timeline).

    Attributes:
        mic_onset_us: when the incumbent became active.
        vacated_us: when the detecting node left the main channel.
        chirp_heard_us: when the AP's backup scan picked up the chirp.
        reconnected_us: when data flow resumed on the new channel.
        new_channel: (center_index, width_mhz) of the recovery channel.
    """

    mic_onset_us: float
    vacated_us: float | None = None
    chirp_heard_us: float | None = None
    reconnected_us: float | None = None
    new_channel: tuple[int, float] | None = None

    def __post_init__(self) -> None:
        if self.new_channel is not None:
            center, width = self.new_channel
            object.__setattr__(self, "new_channel", (int(center), float(width)))

    @property
    def recovery_time_us(self) -> float | None:
        """Total outage: mic onset to resumed operation."""
        if self.reconnected_us is None:
            return None
        return self.reconnected_us - self.mic_onset_us


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics from one experiment run, in archival (JSON-able) form.

    Attributes:
        kind: the run kind that produced this record.
        spec_hash: content hash of the producing ``ExperimentSpec``.
        seed: the scenario master seed.
        aggregate_mbps: total foreground goodput over the measured window.
        per_client_mbps: aggregate divided by the client count.
        duration_us: measured window length.
        channel_history: (time_us, center_index, width_mhz) switch log.
        throughput_timeline: (window_end_us, mbps) samples.
        airtime_by_channel: per-UHF-channel busy fraction over the
            measured window, as (channel, fraction) pairs.
        mcham_timeline: (time_us, ((width, best score), ...)) samples.
        disconnections: Section 5.3 episode timeline (protocol runs).
        baselines: kind "opt" only — per-baseline summary metrics.
    """

    kind: str
    spec_hash: str
    seed: int
    aggregate_mbps: float
    per_client_mbps: float
    duration_us: float
    channel_history: tuple[tuple[float, int, float], ...] = ()
    throughput_timeline: tuple[tuple[float, float], ...] = ()
    airtime_by_channel: tuple[tuple[int, float], ...] = ()
    mcham_timeline: tuple[
        tuple[float, tuple[tuple[float, float], ...]], ...
    ] = ()
    disconnections: tuple[DisconnectionRecord, ...] = ()
    baselines: tuple[tuple[str, "ExperimentResult | None"], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "channel_history",
            tuple((float(t), int(c), float(w)) for t, c, w in self.channel_history),
        )
        object.__setattr__(
            self,
            "throughput_timeline",
            tuple((float(t), float(m)) for t, m in self.throughput_timeline),
        )
        object.__setattr__(
            self,
            "airtime_by_channel",
            tuple((int(c), float(f)) for c, f in self.airtime_by_channel),
        )
        object.__setattr__(
            self,
            "mcham_timeline",
            tuple(
                (float(t), tuple((float(w), float(s)) for w, s in scores))
                for t, scores in self.mcham_timeline
            ),
        )
        object.__setattr__(self, "disconnections", tuple(self.disconnections))
        object.__setattr__(self, "baselines", tuple(self.baselines))

    # -- derived views --------------------------------------------------------

    @property
    def final_channel(self) -> tuple[int, float] | None:
        """(center_index, width_mhz) in use at the end of the run."""
        if not self.channel_history:
            return None
        _, center, width = self.channel_history[-1]
        return (center, width)

    @property
    def num_switches(self) -> int:
        """Channel switches after the initial selection."""
        return max(len(self.channel_history) - 1, 0)

    def airtime_fraction(self, uhf_index: int) -> float:
        """Busy fraction measured on one UHF channel (0 when untracked)."""
        for channel, fraction in self.airtime_by_channel:
            if channel == uhf_index:
                return fraction
        return 0.0

    def baseline(self, name: str) -> "ExperimentResult | None":
        """Look up one named baseline result (kind "opt" records)."""
        for key, result in self.baselines:
            if key == name:
                return result
        return None

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-data representation (JSON-compatible)."""
        data = asdict(self)
        data["baselines"] = [
            [name, None if result is None else result.to_dict()]
            for name, result in self.baselines
        ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        data["disconnections"] = tuple(
            DisconnectionRecord(**d) for d in data.get("disconnections", ())
        )
        data["baselines"] = tuple(
            (name, None if result is None else cls.from_dict(result))
            for name, result in data.get("baselines", ())
        )
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# -- aggregation ---------------------------------------------------------------


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate statistics of one metric over a result set."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float


def _metric_values(
    results: Iterable[ExperimentResult], metric: str
) -> list[float]:
    return [float(getattr(r, metric)) for r in results]


def summarize(
    results: Iterable[ExperimentResult], metric: str = "per_client_mbps"
) -> SummaryStats:
    """Mean/min/max/stddev of *metric* across *results*.

    Raises:
        ValueError: for an empty result set.
    """
    values = _metric_values(results, metric)
    if not values:
        raise ValueError("cannot summarize an empty result set")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return SummaryStats(
        count=len(values),
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        stddev=math.sqrt(variance),
    )


def mean_by(
    results: Sequence[ExperimentResult],
    key: Callable[[ExperimentResult], Hashable],
    metric: str = "per_client_mbps",
) -> dict[Hashable, float]:
    """Mean of *metric* grouped by *key* — the seed-sweep reducer.

    >>> # mean throughput per spec, across seeds:
    >>> # mean_by(results, key=lambda r: r.spec_hash)
    """
    groups: dict[Hashable, list[float]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(
            float(getattr(result, metric))
        )
    return {k: sum(v) / len(v) for k, v in groups.items()}


# -- caching -------------------------------------------------------------------


class ResultCache:
    """Spec-hash-keyed result store: one JSON file per experiment.

    The key is ``ExperimentSpec.spec_hash``, which covers every spec
    field including the scenario seed — a sweep re-run after an
    interruption only executes the missing cells.  Entries live under a
    per-code-version subdirectory (the ``repro`` package version), so a
    persistent cache never serves numbers computed by an older
    simulator: bump the version when simulation behavior changes.
    """

    def __init__(
        self, directory: str | pathlib.Path, version: str | None = None
    ):
        if version is None:
            import repro

            version = getattr(repro, "__version__", "0")
        self.directory = pathlib.Path(directory) / f"v{version}"

    def _path(self, spec_hash: str) -> pathlib.Path:
        return self.directory / f"{spec_hash}.json"

    def get(self, spec_hash: str) -> ExperimentResult | None:
        """The cached result for *spec_hash*, or None.

        An unreadable or corrupted entry (e.g. a half-written file from
        an interrupted sweep) counts as a miss: the cell re-runs and the
        entry is overwritten.
        """
        path = self._path(spec_hash)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return ExperimentResult.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, result: ExperimentResult) -> pathlib.Path:
        """Store *result* under its spec hash; returns the file path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(result.spec_hash)
        path.write_text(result.to_json())
        return path

    def __contains__(self, spec_hash: str) -> bool:
        return self._path(spec_hash).exists()
