"""Structured experiment results, aggregation, and caching.

``ExperimentResult`` is the archive-grade record of one run: every field
is plain data with a canonical JSON form, so results from worker
processes, caches, and live runs are interchangeable — and comparable
byte for byte, which is how the parallel/sequential equivalence
guarantee is tested.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

__all__ = [
    "DisconnectionRecord",
    "ExperimentResult",
    "ResultCache",
    "SummaryStats",
    "mean_by",
    "metric_value",
    "summarize",
]


@dataclass(frozen=True)
class DisconnectionRecord:
    """One disconnection/reconnection episode (Section 5.3 timeline).

    Attributes:
        mic_onset_us: when the incumbent became active.
        vacated_us: when the detecting node left the main channel.
        chirp_heard_us: when the AP's backup scan picked up the chirp.
        reconnected_us: when data flow resumed on the new channel.
        new_channel: (center_index, width_mhz) of the recovery channel.
    """

    mic_onset_us: float
    vacated_us: float | None = None
    chirp_heard_us: float | None = None
    reconnected_us: float | None = None
    new_channel: tuple[int, float] | None = None

    def __post_init__(self) -> None:
        if self.new_channel is not None:
            center, width = self.new_channel
            object.__setattr__(self, "new_channel", (int(center), float(width)))

    @property
    def recovery_time_us(self) -> float | None:
        """Total outage: mic onset to resumed operation."""
        if self.reconnected_us is None:
            return None
        return self.reconnected_us - self.mic_onset_us


def _freeze(value: Any) -> Any:
    """Recursively normalize JSON containers to hashable plain data.

    Mappings become sorted (key, value) tuples: the canonical JSON form
    must be hashable and round-trip losslessly, which dicts (whose JSON
    keys are always strings) cannot guarantee.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics from one experiment run, in archival (JSON-able) form.

    The typed fields cover the world-simulation metric families; run
    kinds whose observables do not fit them (discovery latency, SIFT
    confusion counts, any plugin kind) publish a per-kind ``metrics``
    payload instead — probe outputs routed by
    :func:`repro.experiments.registry.probe_metrics`.

    Attributes:
        kind: the run kind that produced this record.
        spec_hash: content hash of the producing ``ExperimentSpec``.
        seed: the scenario master seed.
        aggregate_mbps: total foreground goodput over the measured window.
        per_client_mbps: aggregate divided by the client count.
        duration_us: measured window length.
        channel_history: (time_us, center_index, width_mhz) switch log.
        throughput_timeline: (window_end_us, mbps) samples.
        airtime_by_channel: per-UHF-channel busy fraction over the
            measured window, as (channel, fraction) pairs.
        mcham_timeline: (time_us, ((width, best score), ...)) samples.
        disconnections: Section 5.3 episode timeline (protocol runs).
        baselines: kind "opt" only — per-baseline summary metrics.
        metrics: per-kind payload as (name, value) pairs of plain JSON
            data, in probe-emission order; read with :meth:`metric`.
    """

    kind: str
    spec_hash: str
    seed: int
    aggregate_mbps: float = 0.0
    per_client_mbps: float = 0.0
    duration_us: float = 0.0
    channel_history: tuple[tuple[float, int, float], ...] = ()
    throughput_timeline: tuple[tuple[float, float], ...] = ()
    airtime_by_channel: tuple[tuple[int, float], ...] = ()
    mcham_timeline: tuple[
        tuple[float, tuple[tuple[float, float], ...]], ...
    ] = ()
    disconnections: tuple[DisconnectionRecord, ...] = ()
    baselines: tuple[tuple[str, "ExperimentResult | None"], ...] = ()
    metrics: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "channel_history",
            tuple((float(t), int(c), float(w)) for t, c, w in self.channel_history),
        )
        object.__setattr__(
            self,
            "throughput_timeline",
            tuple((float(t), float(m)) for t, m in self.throughput_timeline),
        )
        object.__setattr__(
            self,
            "airtime_by_channel",
            tuple((int(c), float(f)) for c, f in self.airtime_by_channel),
        )
        object.__setattr__(
            self,
            "mcham_timeline",
            tuple(
                (float(t), tuple((float(w), float(s)) for w, s in scores))
                for t, scores in self.mcham_timeline
            ),
        )
        object.__setattr__(self, "disconnections", tuple(self.disconnections))
        object.__setattr__(self, "baselines", tuple(self.baselines))
        object.__setattr__(self, "metrics", _freeze(self.metrics))

    # -- derived views --------------------------------------------------------

    @property
    def final_channel(self) -> tuple[int, float] | None:
        """(center_index, width_mhz) in use at the end of the run."""
        if not self.channel_history:
            return None
        _, center, width = self.channel_history[-1]
        return (center, width)

    @property
    def num_switches(self) -> int:
        """Channel switches after the initial selection."""
        return max(len(self.channel_history) - 1, 0)

    def airtime_fraction(self, uhf_index: int) -> float:
        """Busy fraction measured on one UHF channel (0 when untracked)."""
        for channel, fraction in self.airtime_by_channel:
            if channel == uhf_index:
                return fraction
        return 0.0

    def baseline(self, name: str) -> "ExperimentResult | None":
        """Look up one named baseline result (kind "opt" records)."""
        for key, result in self.baselines:
            if key == name:
                return result
        return None

    def metric(self, name: str, default: Any = None) -> Any:
        """Look up one per-kind payload metric by name.

        >>> # result.metric("discovery_us"), result.metric("detection_rate")
        """
        for key, value in self.metrics:
            if key == name:
                return value
        return default

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-data representation (JSON-compatible)."""
        data = asdict(self)
        data["baselines"] = [
            [name, None if result is None else result.to_dict()]
            for name, result in self.baselines
        ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        data["disconnections"] = tuple(
            DisconnectionRecord(**d) for d in data.get("disconnections", ())
        )
        data["baselines"] = tuple(
            (name, None if result is None else cls.from_dict(result))
            for name, result in data.get("baselines", ())
        )
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# -- aggregation ---------------------------------------------------------------


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate statistics of one metric over a result set."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float


def metric_value(result: ExperimentResult, metric: str) -> float:
    """One numeric metric: a typed field, payload entry, or property.

    Lookup order: dataclass fields, then the per-kind ``metrics``
    payload (so a payload entry is never shadowed by a same-named
    method or property), then derived properties (``num_switches``).

    Raises:
        ValueError: when the result carries no such metric, or it is
            not numeric.
    """
    if any(f.name == metric for f in dataclasses.fields(result)):
        value = getattr(result, metric)
    else:
        value = result.metric(metric)
        if value is None:
            value = getattr(result, metric, None)
            if callable(value):  # methods are never metrics
                value = None
    if value is None:
        raise ValueError(
            f"result of kind {result.kind!r} has no metric {metric!r}"
        )
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"metric {metric!r} of kind {result.kind!r} is not numeric: "
            f"{value!r}"
        ) from None


def _metric_values(
    results: Iterable[ExperimentResult], metric: str
) -> list[float]:
    return [metric_value(r, metric) for r in results]


def summarize(
    results: Iterable[ExperimentResult], metric: str = "per_client_mbps"
) -> SummaryStats:
    """Mean/min/max/stddev of *metric* across *results*.

    The metric may be a typed field (``aggregate_mbps``) or a payload
    entry (``discovery_us``, ``detection_rate``).

    Raises:
        ValueError: for an empty result set.
    """
    values = _metric_values(results, metric)
    if not values:
        raise ValueError("cannot summarize an empty result set")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return SummaryStats(
        count=len(values),
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        stddev=math.sqrt(variance),
    )


def mean_by(
    results: Sequence[ExperimentResult],
    key: Callable[[ExperimentResult], Hashable],
    metric: str = "per_client_mbps",
) -> dict[Hashable, float]:
    """Mean of *metric* grouped by *key* — the seed-sweep reducer.

    >>> # mean throughput per spec, across seeds:
    >>> # mean_by(results, key=lambda r: r.spec_hash)
    """
    groups: dict[Hashable, list[float]] = {}
    for result in results:
        groups.setdefault(key(result), []).append(metric_value(result, metric))
    return {k: sum(v) / len(v) for k, v in groups.items()}


# -- caching -------------------------------------------------------------------


class ResultCache:
    """Spec-hash-keyed result store: one JSON file per experiment.

    The key is ``ExperimentSpec.spec_hash``, which covers every spec
    field including the scenario seed — a sweep re-run after an
    interruption only executes the missing cells.  Entries live under a
    per-code-version subdirectory (the ``repro`` package version), so a
    persistent cache never serves numbers computed by an older
    simulator: bump the version when simulation behavior changes.
    """

    def __init__(
        self, directory: str | pathlib.Path, version: str | None = None
    ):
        if version is None:
            import repro

            version = getattr(repro, "__version__", "0")
        self.directory = pathlib.Path(directory) / f"v{version}"

    def _path(self, spec_hash: str) -> pathlib.Path:
        return self.directory / f"{spec_hash}.json"

    def get(self, spec_hash: str) -> ExperimentResult | None:
        """The cached result for *spec_hash*, or None.

        An unreadable or corrupted entry (e.g. a half-written file from
        an interrupted sweep) counts as a miss: the cell re-runs and the
        entry is overwritten.
        """
        path = self._path(spec_hash)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return ExperimentResult.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, result: ExperimentResult) -> pathlib.Path:
        """Store *result* under its spec hash; returns the file path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(result.spec_hash)
        path.write_text(result.to_json())
        return path

    def __contains__(self, spec_hash: str) -> bool:
        return self._path(spec_hash).exists()
