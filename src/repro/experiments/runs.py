"""Experiment run kinds: static, OPT baselines, WhiteFi, full protocol.

This module reproduces the Section 5.4 experimental harness:

* **Static runs** fix the foreground BSS on one ``(F, W)`` for the whole
  simulation — the building block of the ``OPT 5/10/20 MHz`` baselines.
* **OPT** baselines pick, per width, the statically best channel by
  probing every candidate with a short simulation and then measuring the
  winner over the full duration ("OPT is an ideal, omniscient algorithm
  that for every experiment run picks the channel with maximum
  throughput").
* **WhiteFi runs** use the adaptive assignment loop: every re-evaluation
  interval the AP collects per-node airtime observations and spectrum
  maps, scores all candidates with MCham, and switches subject to
  hysteresis.
* **Protocol runs** exercise the full message-level BSS
  (:class:`repro.core.network.WhiteFiBss`): beacons, reports, incumbent
  sensing, chirping, and reconnection (Section 5.3).

These are the imperative workhorses the world-simulation
:class:`~repro.experiments.registry.RunKind` plugins
(:mod:`repro.experiments.kinds`) drive; declarative dispatch lives in
:func:`repro.experiments.registry.run_experiment` (re-exported here for
compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import constants
from repro.core.assignment import ChannelAssigner, SwitchReason
from repro.core.mcham import mcham
from repro.errors import NoChannelAvailableError
from repro.spectrum.channels import WhiteFiChannel
from repro.experiments.registry import run_experiment
from repro.experiments.scenario import (
    ScenarioBuilder,
    ScenarioConfig,
    World,
)
from repro.experiments.spec import ScenarioSpec

__all__ = [
    "RunResult",
    "find_opt_static",
    "run_experiment",
    "run_opt_baselines",
    "run_protocol",
    "run_static",
    "run_whitefi",
]


@dataclass
class RunResult:
    """Metrics from one simulation run (rich in-process form).

    Attributes:
        aggregate_mbps: total foreground goodput over the measured window.
        per_client_mbps: aggregate divided by the client count.
        duration_us: measured window length.
        channel_history: (time_us, channel) switch log (static runs have
            a single entry).
        throughput_timeline: (window_end_us, mbps) samples when timeline
            sampling was requested.
        mcham_timeline: (time_us, {width: best score}) samples for
            WhiteFi runs.
        airtime_by_channel: per-UHF-channel busy fraction over the
            measured window.
    """

    aggregate_mbps: float
    per_client_mbps: float
    duration_us: float
    channel_history: list[tuple[float, WhiteFiChannel]] = field(default_factory=list)
    throughput_timeline: list[tuple[float, float]] = field(default_factory=list)
    mcham_timeline: list[tuple[float, dict[float, float]]] = field(default_factory=list)
    airtime_by_channel: dict[int, float] = field(default_factory=dict)

    @property
    def final_channel(self) -> WhiteFiChannel | None:
        """The channel in use at the end of the run."""
        return self.channel_history[-1][1] if self.channel_history else None


def _measure(
    world: World,
    start_us: float,
    end_us: float,
    timeline_interval_us: float | None,
) -> tuple[float, list[tuple[float, float]], dict[int, float]]:
    """Run the world from *start_us* to *end_us*, sampling throughput.

    Returns:
        (mbps, throughput timeline, per-channel airtime fractions).
    """
    timeline: list[tuple[float, float]] = []
    baseline_bytes = world.foreground_delivered_bytes()
    baseline_busy = [
        world.medium.busy_integral_us(c)
        for c in range(world.config.num_channels)
    ]
    if timeline_interval_us is None:
        world.engine.run_until(end_us)
    else:
        t = start_us
        prev_bytes = baseline_bytes
        while t < end_us:
            window_end = min(t + timeline_interval_us, end_us)
            world.engine.run_until(window_end)
            now_bytes = world.foreground_delivered_bytes()
            # The final window may be partial; divide by its true span.
            window = window_end - t
            timeline.append((window_end, (now_bytes - prev_bytes) * 8.0 / window))
            prev_bytes = now_bytes
            t = window_end
    delivered = world.foreground_delivered_bytes() - baseline_bytes
    duration = end_us - start_us
    mbps = delivered * 8.0 / duration if duration > 0 else 0.0
    airtime: dict[int, float] = {}
    if duration > 0:
        for c in range(world.config.num_channels):
            busy = world.medium.busy_integral_us(c) - baseline_busy[c]
            if busy > 0.0:
                airtime[c] = busy / duration
    return mbps, timeline, airtime


def run_static(
    config: ScenarioConfig,
    channel: WhiteFiChannel,
    *,
    timeline_interval_us: float | None = None,
) -> RunResult:
    """Simulate the foreground BSS fixed on *channel* for the full run."""
    world = ScenarioBuilder(config).build_world()
    world.engine.run_until(config.warmup_us)
    world.start_foreground(channel)
    start = config.warmup_us
    end = start + config.duration_us
    mbps, timeline, airtime = _measure(world, start, end, timeline_interval_us)
    return RunResult(
        aggregate_mbps=mbps,
        per_client_mbps=mbps / max(config.num_clients, 1),
        duration_us=config.duration_us,
        channel_history=[(start, channel)],
        throughput_timeline=timeline,
        airtime_by_channel=airtime,
    )


def find_opt_static(
    config: ScenarioConfig,
    width_mhz: float,
    *,
    probe_duration_us: float = 1_500_000.0,
) -> tuple[WhiteFiChannel | None, RunResult | None]:
    """The best static channel of a given width, by exhaustive probing.

    Every candidate position is probed with a short simulation; the
    winner is then measured over the full duration.  Returns
    ``(None, None)`` when the width has no valid position.
    """
    candidates = [
        c for c in config.candidate_channels() if c.width_mhz == width_mhz
    ]
    if not candidates:
        return None, None
    if len(candidates) == 1:
        best = candidates[0]
    else:
        probe_config = replace(config, duration_us=probe_duration_us)
        scores = []
        for channel in candidates:
            result = run_static(probe_config, channel)
            scores.append((result.aggregate_mbps, channel))
        best = max(scores, key=lambda s: s[0])[1]
    return best, run_static(config, best)


def run_opt_baselines(
    config: ScenarioConfig,
    *,
    probe_duration_us: float = 1_500_000.0,
) -> dict[str, RunResult | None]:
    """All four paper baselines: OPT 5/10/20 MHz and overall OPT.

    OPT is the best of the per-width winners (the paper's omniscient
    static choice).
    """
    results: dict[str, RunResult | None] = {}
    best_overall: RunResult | None = None
    for width in constants.CHANNEL_WIDTHS_MHZ:
        _, result = find_opt_static(
            config, width, probe_duration_us=probe_duration_us
        )
        results[f"opt-{width:g}mhz"] = result
        if result is not None and (
            best_overall is None
            or result.aggregate_mbps > best_overall.aggregate_mbps
        ):
            best_overall = result
    results["opt"] = best_overall
    return results


def run_whitefi(
    config: ScenarioConfig,
    *,
    reeval_interval_us: float = 2_000_000.0,
    hysteresis_margin: float = constants.HYSTERESIS_MARGIN,
    ap_weight: float | None = None,
    aggregation: str = "product",
    timeline_interval_us: float | None = None,
) -> RunResult:
    """Simulate the adaptive WhiteFi spectrum-assignment loop.

    The AP re-evaluates the channel every *reeval_interval_us*: it takes
    fresh airtime observations for itself and each client (spectrum maps
    are per-node under spatial variation), scores every candidate with
    MCham, and switches when the hysteresis margin is cleared.

    Args:
        reeval_interval_us: period of the assignment loop.
        hysteresis_margin: voluntary-switch margin (0 = ablation).
        ap_weight: AP weighting override (None = paper's N-times rule).
        aggregation: MCham aggregation ("product"/"min"/"max").
        timeline_interval_us: optional throughput sampling period.
    """
    world = ScenarioBuilder(config).build_world()
    assigner = ChannelAssigner(
        num_channels=config.num_channels,
        hysteresis_margin=hysteresis_margin,
        ap_weight=ap_weight,
        aggregation=aggregation,
    )
    ap_map = config.effective_ap_map()
    client_maps = config.effective_client_maps()
    channel_history: list[tuple[float, WhiteFiChannel]] = []
    mcham_timeline: list[tuple[float, dict[float, float]]] = []

    def observations():
        ap_obs = world.sensor.observe("whitefi")
        # All foreground nodes share the collision domain, so their
        # ground-truth observations coincide; per-node maps still differ.
        client_obs = [ap_obs] * config.num_clients
        return ap_obs, client_obs

    def record_mcham(ap_obs, client_obs) -> None:
        del client_obs  # the timeline tracks the AP's plain metric
        best_by_width: dict[float, float] = {}
        for candidate in config.candidate_channels():
            # Figures 10/14 plot the plain MCham metric per width (the
            # best candidate of each width), not the N-weighted network
            # score used for the decision.
            value = mcham(candidate, ap_obs, aggregation=aggregation)
            width = candidate.width_mhz
            best_by_width[width] = max(best_by_width.get(width, 0.0), value)
        mcham_timeline.append((world.engine.now_us, best_by_width))

    # Warmup: sense the background before picking the boot channel.
    world.engine.run_until(config.warmup_us)
    ap_obs, client_obs = observations()
    decision = assigner.evaluate(
        ap_map,
        ap_obs,
        client_maps,
        client_obs,
        reason=SwitchReason.BOOT,
    )
    record_mcham(ap_obs, client_obs)
    world.start_foreground(decision.channel)
    channel_history.append((world.engine.now_us, decision.channel))

    start = config.warmup_us
    end = start + config.duration_us

    def reevaluate() -> None:
        if world.engine.now_us >= end:
            return
        ap_obs, client_obs = observations()
        try:
            decision = assigner.evaluate(
                ap_map,
                ap_obs,
                client_maps,
                client_obs,
                reason=SwitchReason.PERIODIC,
            )
        except NoChannelAvailableError:
            world.engine.schedule(reeval_interval_us, reevaluate)
            return
        record_mcham(ap_obs, client_obs)
        if decision.switched:
            world.retune_foreground(decision.channel)
            channel_history.append((world.engine.now_us, decision.channel))
        world.engine.schedule(reeval_interval_us, reevaluate)

    world.engine.schedule(reeval_interval_us, reevaluate)
    mbps, timeline, airtime = _measure(world, start, end, timeline_interval_us)
    return RunResult(
        aggregate_mbps=mbps,
        per_client_mbps=mbps / max(config.num_clients, 1),
        duration_us=config.duration_us,
        channel_history=channel_history,
        throughput_timeline=timeline,
        mcham_timeline=mcham_timeline,
        airtime_by_channel=airtime,
    )


def run_protocol(
    spec: ScenarioSpec,
    *,
    run_until_us: float | None = None,
    **bss_kwargs,
):
    """Run the full-protocol BSS (Section 5.3) over a scenario.

    Boots a :class:`~repro.core.network.WhiteFiBss` with the spec's
    spectrum maps and microphone incumbents, runs the engine to the
    horizon, and returns the live BSS for inspection.

    Args:
        run_until_us: simulation horizon (default: warmup + duration).
        **bss_kwargs: forwarded to ``WhiteFiBss`` (e.g.
            ``backup_scan_interval_us``).

    Returns:
        (bss, horizon_us, boot_channel) — the channel the BSS selected
        at start-up, before any disconnection recovery retuned it.
    """
    builder = ScenarioBuilder(spec)
    engine, _, _, bss = builder.build_protocol_bss(**bss_kwargs)
    horizon = (
        run_until_us
        if run_until_us is not None
        else spec.warmup_us + spec.duration_us
    )
    bss.start()
    boot = bss.ap_ctrl.state.main_channel
    engine.run_until(horizon)
    return bss, horizon, boot
