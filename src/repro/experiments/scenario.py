"""Materializing scenarios: spec -> config -> live simulation world.

``ScenarioSpec`` (pure data) resolves to ``ScenarioConfig`` (spectrum-map
objects, expanded background pool, per-node variation applied), which
``ScenarioBuilder`` turns into a running world: engine, medium, nodes,
background traffic — the wiring that used to be duplicated between
``sim/runner.py`` and ``core/network.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.sim.rng import spawn_rng, stream_seed
from repro.sim.sensors import GroundTruthSensor
from repro.sim.traffic import (
    CbrSource,
    MarkovChurn,
    RoundRobinSaturatingSource,
    SaturatingSource,
    ScheduledActivity,
)
from repro.sim.world import NodeRoster
from repro.spectrum.channels import WhiteFiChannel, valid_channels
from repro.spectrum.spectrum_map import SpectrumMap, union_all
from repro.spectrum.variation import per_node_maps
from repro.experiments.spec import BackgroundSpec, ScenarioSpec, TrafficSpec

__all__ = ["ScenarioBuilder", "ScenarioConfig", "World", "build_config"]


@dataclass
class ScenarioConfig:
    """A resolved experiment scenario (maps materialized, pool expanded).

    Attributes:
        base_map: incumbent occupancy shared by all nodes (per-node maps
            may override it under spatial variation).
        num_clients: foreground clients associated with the AP.
        backgrounds: background pair specifications.
        duration_us: measured simulation time (after warmup).
        warmup_us: sensing warmup before the foreground BSS starts.
        seed: master seed; all randomness derives from it.
        ap_map / client_maps: per-node spectrum maps (default: base_map).
        downlink / uplink: enable saturating foreground flows.
        payload_bytes: foreground UDP payload.
    """

    base_map: SpectrumMap
    num_clients: int = 1
    backgrounds: Sequence[BackgroundSpec] = ()
    duration_us: float = 5_000_000.0
    warmup_us: float = 500_000.0
    seed: int = 0
    ap_map: SpectrumMap | None = None
    client_maps: Sequence[SpectrumMap] | None = None
    downlink: bool = True
    uplink: bool = True
    payload_bytes: int = 1000

    @property
    def num_channels(self) -> int:
        """UHF index space size."""
        return len(self.base_map)

    def effective_ap_map(self) -> SpectrumMap:
        """The AP's spectrum map (base map unless overridden)."""
        return self.ap_map if self.ap_map is not None else self.base_map

    def effective_client_maps(self) -> list[SpectrumMap]:
        """Per-client spectrum maps (base map unless overridden)."""
        if self.client_maps is not None:
            if len(self.client_maps) != self.num_clients:
                raise SimulationError(
                    f"{len(self.client_maps)} client maps for "
                    f"{self.num_clients} clients"
                )
            return list(self.client_maps)
        return [self.base_map] * self.num_clients

    def union_map(self) -> SpectrumMap:
        """OR of the AP's and all clients' maps."""
        return union_all([self.effective_ap_map(), *self.effective_client_maps()])

    def candidate_channels(self) -> list[WhiteFiChannel]:
        """Channels free at every foreground node."""
        return valid_channels(self.union_map().free_indices(), self.num_channels)


def build_config(spec: ScenarioSpec) -> ScenarioConfig:
    """Resolve a declarative spec into a runnable config.

    Expands the background pool (random placements drawn from a stream
    derived from the scenario seed, so every worker process agrees) and
    applies spatial variation to derive per-node maps.
    """
    base_map = SpectrumMap.from_free(spec.free_indices, spec.num_channels)
    backgrounds = list(spec.backgrounds)
    pool = spec.background_pool
    if pool is not None:
        free = base_map.free_indices()
        if not free and (pool.per_free_channel or pool.random_count):
            raise SimulationError("background pool on a fully-occupied map")
        for index in free:
            for _ in range(pool.per_free_channel):
                backgrounds.append(
                    BackgroundSpec(
                        index,
                        pool.inter_packet_delay_us,
                        pool.payload_bytes,
                        churn=pool.churn,
                    )
                )
        placement_rng = random.Random(stream_seed(spec.seed, "background-pool"))
        for _ in range(pool.random_count):
            backgrounds.append(
                BackgroundSpec(
                    placement_rng.choice(free),
                    pool.inter_packet_delay_us,
                    pool.payload_bytes,
                    churn=pool.churn,
                )
            )

    ap_map: SpectrumMap | None = None
    client_maps: list[SpectrumMap] | None = None
    if spec.spatial is not None and spec.spatial.flip_probability > 0.0:
        maps = per_node_maps(
            base_map,
            spec.num_clients + 1,
            spec.spatial.flip_probability,
            seed=spec.seed,
        )
        ap_map, client_maps = maps[0], maps[1:]
    if spec.ap_free_indices is not None:
        ap_map = SpectrumMap.from_free(spec.ap_free_indices, spec.num_channels)
    if spec.client_free_indices is not None:
        client_maps = [
            SpectrumMap.from_free(free, spec.num_channels)
            for free in spec.client_free_indices
        ]

    return ScenarioConfig(
        base_map=base_map,
        num_clients=spec.num_clients,
        backgrounds=backgrounds,
        duration_us=spec.duration_us,
        warmup_us=spec.warmup_us,
        seed=spec.seed,
        ap_map=ap_map,
        client_maps=client_maps,
        downlink=spec.traffic.downlink,
        uplink=spec.traffic.uplink,
        payload_bytes=spec.traffic.payload_bytes,
    )


class World:
    """A built simulation world (engine, medium, nodes, traffic)."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        engine = Engine()
        medium = Medium(engine, config.num_channels)
        self.roster = NodeRoster(engine, medium, random.Random(config.seed))
        self.sensor = GroundTruthSensor(medium)
        self.ap: SimNode | None = None
        self.clients: list[SimNode] = []
        self._build_background()

    # Substrate accessors (the roster owns the shared pieces).

    @property
    def engine(self) -> Engine:
        """The simulation engine."""
        return self.roster.engine

    @property
    def medium(self) -> Medium:
        """The shared collision domain."""
        return self.roster.medium

    @property
    def rng(self) -> random.Random:
        """The scenario's master random stream."""
        return self.roster.rng

    @property
    def nodes(self) -> dict[str, SimNode]:
        """All registered stations by id."""
        return self.roster.nodes

    def _build_background(self) -> None:
        config = self.config
        for i, spec in enumerate(config.backgrounds):
            if not config.base_map.is_free(spec.uhf_index):
                raise SimulationError(
                    f"background pair {i} on occupied channel {spec.uhf_index}"
                )
            channel = WhiteFiChannel(spec.uhf_index, 5.0)
            bss = f"bg{i}"
            ap = self.roster.add_node(f"bg{i}-ap", bss, channel)
            self.roster.add_node(f"bg{i}-cl", bss, channel)
            self.medium.register_ap(bss, channel.spanned_indices)
            source = CbrSource(
                self.engine,
                ap,
                f"bg{i}-cl",
                spec.inter_packet_delay_us,
                spec.payload_bytes,
                start_us=self.rng.uniform(
                    0.0, max(spec.inter_packet_delay_us, 1_000.0)
                ),
            )
            if spec.churn is not None:
                mean_active, mean_passive = spec.churn
                MarkovChurn(
                    self.engine,
                    source,
                    mean_active,
                    mean_passive,
                    spawn_rng(self.rng, f"bg{i}-churn"),
                )
            elif spec.active_windows is not None:
                ScheduledActivity(self.engine, source, list(spec.active_windows))

    def start_foreground(self, channel: WhiteFiChannel) -> None:
        """Create the foreground BSS on *channel* and start its flows."""
        config = self.config
        self.ap = self.roster.add_node("ap", "whitefi", channel)
        self.medium.register_ap("whitefi", channel.spanned_indices)
        client_ids = []
        for i in range(config.num_clients):
            client = self.roster.add_node(f"client{i}", "whitefi", channel)
            self.clients.append(client)
            client_ids.append(client.node_id)
        if config.downlink:
            RoundRobinSaturatingSource(
                self.ap, client_ids, config.payload_bytes
            ).start()
        if config.uplink:
            for client in self.clients:
                SaturatingSource(client, "ap", config.payload_bytes).start()

    def retune_foreground(self, channel: WhiteFiChannel) -> None:
        """Switch the whole foreground BSS to *channel*."""
        assert self.ap is not None
        self.medium.register_ap("whitefi", channel.spanned_indices)
        self.ap.retune(channel)
        for client in self.clients:
            client.retune(channel)

    def foreground_delivered_bytes(self) -> int:
        """Total foreground goodput counter (downlink + uplink)."""
        assert self.ap is not None
        total = self.ap.delivered_bytes
        total += sum(c.delivered_bytes for c in self.clients)
        return total


class ScenarioBuilder:
    """Materializes specs: config resolution plus world construction.

    Accepts either a declarative :class:`ScenarioSpec` or an
    already-resolved :class:`ScenarioConfig`.
    """

    def __init__(self, scenario: ScenarioSpec | ScenarioConfig):
        if isinstance(scenario, ScenarioSpec):
            self.spec: ScenarioSpec | None = scenario
            self.config = build_config(scenario)
        else:
            self.spec = None
            self.config = scenario

    def build_world(self) -> World:
        """A fresh world (engine, medium, background traffic) for one run."""
        return World(self.config)

    def build_discovery_session(self, *, dwell_us: float | None = None):
        """A fresh AP-discovery race world (Section 5.2 / Figures 8-9).

        Hides a beaconing AP on a seed-chosen candidate ``(F, W)`` of
        the scenario's spectrum map and wires the client's two radios
        (SIFT scanner + main transceiver) into a
        :class:`~repro.core.discovery.DiscoverySession` over a synthetic
        RF environment.  Every random draw (AP placement, beacon phase,
        probabilistic frame decoding) derives from the scenario seed, so
        the race is byte-reproducible in any process.

        Args:
            dwell_us: listen/capture duration override (default: one
                beacon interval plus margin).

        Returns:
            (session, ap_channel) — the session is ready for one
            ``algorithm.discover(session)`` call; ``ap_channel`` is the
            hidden ground truth.
        """
        # Imported here, like build_protocol_bss: the discovery stack
        # (synthetic RF environment + radios) sits above sim and would
        # otherwise load into every spec-only consumer.
        import numpy as np

        from repro.core.discovery import DiscoverySession
        from repro.phy.environment import BeaconingAp, RfEnvironment
        from repro.radio.scanner import Scanner
        from repro.radio.transceiver import Transceiver

        config = self.config
        candidates = valid_channels(
            config.base_map.free_indices(), config.num_channels
        )
        if not candidates:
            raise SimulationError(
                "discovery needs at least one candidate (F, W) channel; "
                "the scenario map admits none"
            )
        seed = config.seed
        placement_rng = np.random.default_rng(
            stream_seed(seed, "discovery-placement")
        )
        ap_channel = candidates[int(placement_rng.integers(len(candidates)))]
        env = RfEnvironment(
            num_channels=config.num_channels,
            seed=stream_seed(seed, "discovery-env"),
        )
        env.add_transmitter(
            BeaconingAp(
                ap_channel,
                phase_us=float(placement_rng.uniform(0, 100_000)),
            )
        )
        session = DiscoverySession(
            Scanner(env),
            Transceiver(
                env,
                rng=np.random.default_rng(stream_seed(seed, "discovery-radio")),
            ),
            config.base_map,
            **({} if dwell_us is None else {"dwell_us": dwell_us}),
        )
        return session, ap_channel

    def build_sift_capture(
        self,
        width_mhz: float,
        rate_mbps: float,
        num_packets: int | None = None,
    ):
        """A synthesized iperf capture for SIFT accuracy runs (Table 1).

        The capture's burst schedule and noise derive from the scenario
        seed; the spectrum map plays no role (the paper's methodology is
        a single bench link observed by the scanner).

        Returns:
            (trace, bursts, capture_duration_us) — raw IQ plus the
            ground-truth schedule.
        """
        from repro.sift.workloads import PACKETS_PER_RUN, synthesize_iperf_capture

        return synthesize_iperf_capture(
            width_mhz,
            rate_mbps,
            seed=stream_seed(self.config.seed, "sift-capture"),
            num_packets=PACKETS_PER_RUN if num_packets is None else num_packets,
        )

    def build_citywide_metro(self, extent_m: float | None = None):
        """The metro ground truth every wsdb run kind shares.

        The ``citywide``, ``roaming``, and ``querystorm`` kinds all
        build their metro from the same ``"citywide-metro"`` seed
        stream, so the three workloads run against identical ground
        truth for one scenario.  The scenario's occupied channels
        become the metro dial (:func:`repro.wsdb.model.generate_metro`
        places 1-2 TV transmitter sites per occupied channel, with
        positions, EIRPs, and therefore protected contours drawn from a
        stream derived from the scenario seed).

        Args:
            extent_m: metro plane edge override (default: the wsdb
                default, 20 km).
        """
        # Imported here like the other stacks above sim: wsdb must not
        # load into every spec-only consumer.
        from repro.wsdb.model import DEFAULT_EXTENT_M, generate_metro

        config = self.config
        return generate_metro(
            config.base_map.occupied_indices(),
            extent_m=DEFAULT_EXTENT_M if extent_m is None else extent_m,
            seed=stream_seed(config.seed, "citywide-metro"),
            num_channels=config.num_channels,
        )

    def build_citywide_db(
        self,
        extent_m: float | None = None,
        cache_resolution_m: float | None = None,
    ):
        """A fresh geolocation white-space database for one wsdb run.

        Wraps :meth:`build_citywide_metro` in a
        :class:`~repro.wsdb.service.WhiteSpaceDatabase` with a cold
        response cache and zeroed counters, so cache metrics are a pure
        function of the spec.

        Args:
            extent_m: metro plane edge override (default: the wsdb
                default, 20 km).
            cache_resolution_m: response-cell edge override (default:
                the wsdb default, 100 m).  The roaming kind passes its
                ``roaming_recheck_m`` here so the cell-granular
                protocol stays aligned with the re-check rule.
        """
        from repro.wsdb.service import (
            DEFAULT_CACHE_RESOLUTION_M,
            WhiteSpaceDatabase,
        )

        return WhiteSpaceDatabase(
            self.build_citywide_metro(extent_m),
            cache_resolution_m=(
                DEFAULT_CACHE_RESOLUTION_M
                if cache_resolution_m is None
                else cache_resolution_m
            ),
        )

    def build_wsdb_cluster(
        self,
        num_shards: int,
        extent_m: float | None = None,
        cache_resolution_m: float | None = None,
    ):
        """A fresh sharded database tier for one cluster run.

        The same ``"citywide-metro"`` ground truth as
        :meth:`build_citywide_db`, served by a
        :class:`~repro.wsdb.cluster.ShardRouter` of *num_shards*
        cell-aligned shards — so a querystorm run and a citywide run on
        one scenario disagree only in how the service tier is
        organized, never in what is true on the ground.

        Args:
            num_shards: shard count (the ``querystorm`` kind passes
                ``storm_shards``).
            extent_m: metro plane edge override (default: the wsdb
                default, 20 km).
            cache_resolution_m: response-cell edge override (default:
                the wsdb default, 100 m).
        """
        from repro.wsdb.cluster import ShardRouter
        from repro.wsdb.service import DEFAULT_CACHE_RESOLUTION_M

        return ShardRouter(
            self.build_citywide_metro(extent_m),
            num_shards=num_shards,
            cache_resolution_m=(
                DEFAULT_CACHE_RESOLUTION_M
                if cache_resolution_m is None
                else cache_resolution_m
            ),
        )

    def build_protocol_bss(self, **bss_kwargs):
        """A fresh full-protocol BSS world for one run.

        Wires an :class:`IncumbentField` (TV stations on the occupied
        channels, microphones from the spec) and a
        :class:`repro.core.network.WhiteFiBss` with per-node maps.

        Returns:
            (engine, medium, incumbents, bss) — the engine is not yet run.
        """
        # Imported here: core sits above sim but below experiments, and
        # module-level import would pull the whole protocol stack into
        # every spec-only consumer.
        from repro.core.network import WhiteFiBss
        from repro.spectrum.incumbents import (
            IncumbentField,
            TvStation,
            WirelessMicrophone,
        )

        if self.spec is None:
            raise SimulationError(
                "protocol worlds need a declarative ScenarioSpec "
                "(microphone incumbents are not part of ScenarioConfig)"
            )
        spec = self.spec
        config = self.config
        # Mirror the ExperimentSpec kind-mismatch guards for callers
        # that reach the protocol world directly (run_protocol): a
        # silently-unloaded medium would fake Section 5.3 conditions.
        if config.backgrounds:
            raise SimulationError(
                "protocol worlds do not simulate background pairs; "
                "use a scenario without backgrounds"
            )
        if spec.traffic != TrafficSpec():
            raise SimulationError(
                "protocol worlds use the BSS's built-in saturating "
                "downlink flow; a custom TrafficSpec would be ignored"
            )
        engine = Engine()
        medium = Medium(engine, config.num_channels)
        incumbents = IncumbentField(
            config.num_channels,
            tv_stations=[
                TvStation(i) for i in config.base_map.occupied_indices()
            ],
        )
        for mic_spec in spec.mics:
            mic = WirelessMicrophone(mic_spec.uhf_index)
            for start_us, end_us in mic_spec.sessions:
                mic.add_session(start_us, end_us)
            incumbents.add_microphone(mic)
        bss = WhiteFiBss(
            engine,
            medium,
            incumbents,
            config.effective_ap_map(),
            config.effective_client_maps(),
            seed=config.seed,
            **bss_kwargs,
        )
        return engine, medium, incumbents, bss
