"""Declarative scenario and experiment specifications.

Every spec here is a frozen dataclass of plain data — no engine handles,
no spectrum-map objects — so a complete experiment can be serialized to
JSON, shipped to a worker process, hashed for result caching, and diffed
in a results archive.  :mod:`repro.experiments.scenario` materializes a
spec into a live simulation world.

The scenario vocabulary follows the paper's evaluation matrix
(Section 5.4): a foreground BSS on a fragmented UHF map, a pool of
background AP/client pairs with CBR traffic, optional two-state Markov
churn or scripted activity windows (Figures 13/14), optional per-node
spatial variation of the spectrum map (Figure 12), and optional
wireless-microphone incumbents (Section 5.3).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping, Sequence

from repro.errors import SimulationError

__all__ = [
    "BackgroundPoolSpec",
    "BackgroundSpec",
    "ExperimentSpec",
    "MicSpec",
    "RUN_KINDS",
    "ScenarioSpec",
    "SpatialSpec",
    "TrafficSpec",
]


def __getattr__(name: str):
    # RUN_KINDS is derived from the RunKind registry (the single source
    # of truth), so plugin registrations show up here too.  Resolved
    # lazily (PEP 562) because the registry's built-ins import this
    # module.
    if name == "RUN_KINDS":
        from repro.experiments.registry import run_kind_names

        return run_kind_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _tuple2(value: Sequence[float] | None) -> tuple[float, float] | None:
    """Normalize an optional 2-sequence (JSON gives lists) to a tuple."""
    if value is None:
        return None
    a, b = value
    return (float(a), float(b))


@dataclass(frozen=True)
class BackgroundSpec:
    """One background AP/client pair.

    Attributes:
        uhf_index: the 5 MHz channel the pair occupies.
        inter_packet_delay_us: CBR injection period.
        payload_bytes: CBR payload size.
        churn: optional (mean_active_us, mean_passive_us) Markov gating.
        active_windows: optional scripted (start_us, end_us) activity
            windows (Figure 14); mutually exclusive with churn.
    """

    uhf_index: int
    inter_packet_delay_us: float
    payload_bytes: int = 1000
    churn: tuple[float, float] | None = None
    active_windows: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.churn is not None and self.active_windows is not None:
            raise SimulationError(
                "churn and active_windows are mutually exclusive"
            )
        object.__setattr__(self, "churn", _tuple2(self.churn))
        if self.active_windows is not None:
            object.__setattr__(
                self,
                "active_windows",
                tuple(_tuple2(w) for w in self.active_windows),
            )


@dataclass(frozen=True)
class BackgroundPoolSpec:
    """A pool of identically-parameterized background pairs.

    The builder expands the pool into concrete :class:`BackgroundSpec`
    entries: ``per_free_channel`` pairs on every free UHF channel
    (Figures 12/13 place one or two per channel), plus ``random_count``
    pairs each dropped on a uniformly-random free channel (Figure 11),
    using a stream derived deterministically from the scenario seed.

    Attributes:
        random_count: randomly-placed pairs.
        per_free_channel: deterministically-placed pairs per free channel.
        inter_packet_delay_us: CBR injection period for every pair.
        payload_bytes: CBR payload size for every pair.
        churn: optional Markov gating applied to every pair.
    """

    random_count: int = 0
    per_free_channel: int = 0
    inter_packet_delay_us: float = 30_000.0
    payload_bytes: int = 1000
    churn: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.random_count < 0 or self.per_free_channel < 0:
            raise SimulationError("background pool counts must be >= 0")
        object.__setattr__(self, "churn", _tuple2(self.churn))


@dataclass(frozen=True)
class MicSpec:
    """A wireless microphone incumbent with scripted sessions.

    Attributes:
        uhf_index: the UHF channel the microphone occupies when active.
        sessions: (start_us, end_us) activity intervals.
    """

    uhf_index: int
    sessions: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sessions", tuple(_tuple2(s) for s in self.sessions)
        )


@dataclass(frozen=True)
class TrafficSpec:
    """Foreground BSS traffic model.

    Attributes:
        downlink: AP runs a round-robin saturating source to the clients.
        uplink: every client runs a saturating source to the AP.
        payload_bytes: UDP payload size of the foreground flows.
    """

    downlink: bool = True
    uplink: bool = True
    payload_bytes: int = 1000


@dataclass(frozen=True)
class SpatialSpec:
    """Figure 12 spatial variation: per-node map bit flips.

    Attributes:
        flip_probability: probability of flipping each map entry per node.
    """

    flip_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_probability <= 1.0:
            raise SimulationError(
                f"flip probability {self.flip_probability!r} outside [0, 1]"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable experiment scenario.

    Attributes:
        free_indices: incumbent-free UHF channels of the base map.
        num_channels: UHF index space size.
        num_clients: foreground clients associated with the AP.
        backgrounds: explicit background pairs.
        background_pool: optional pool expanded by the builder.
        mics: wireless-microphone incumbents (protocol scenarios).
        traffic: foreground traffic model.
        spatial: optional per-node spectrum-map variation.
        ap_free_indices: explicit AP map override (default: base map).
        client_free_indices: explicit per-client map overrides.
        duration_us: measured simulation time (after warmup).
        warmup_us: sensing warmup before the foreground BSS starts.
        seed: master seed; all randomness derives from it.
    """

    free_indices: tuple[int, ...]
    num_channels: int = 30
    num_clients: int = 1
    backgrounds: tuple[BackgroundSpec, ...] = ()
    background_pool: BackgroundPoolSpec | None = None
    mics: tuple[MicSpec, ...] = ()
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    spatial: SpatialSpec | None = None
    ap_free_indices: tuple[int, ...] | None = None
    client_free_indices: tuple[tuple[int, ...], ...] | None = None
    duration_us: float = 5_000_000.0
    warmup_us: float = 500_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "free_indices", tuple(self.free_indices))
        object.__setattr__(self, "backgrounds", tuple(self.backgrounds))
        object.__setattr__(self, "mics", tuple(self.mics))
        if self.ap_free_indices is not None:
            object.__setattr__(
                self, "ap_free_indices", tuple(self.ap_free_indices)
            )
        if self.client_free_indices is not None:
            object.__setattr__(
                self,
                "client_free_indices",
                tuple(tuple(m) for m in self.client_free_indices),
            )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this scenario with a different master seed."""
        return replace(self, seed=seed)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-data representation (JSON-compatible)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        data["backgrounds"] = tuple(
            BackgroundSpec(**b) for b in data.get("backgrounds", ())
        )
        pool = data.get("background_pool")
        data["background_pool"] = (
            BackgroundPoolSpec(**pool) if pool is not None else None
        )
        data["mics"] = tuple(MicSpec(**m) for m in data.get("mics", ()))
        traffic = data.get("traffic")
        if isinstance(traffic, Mapping):
            data["traffic"] = TrafficSpec(**traffic)
        spatial = data.get("spatial")
        data["spatial"] = SpatialSpec(**spatial) if spatial is not None else None
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ExperimentSpec:
    """A scenario plus what to run on it.

    Attributes:
        scenario: the environment.
        kind: a registered run kind — built-ins: "whitefi" (adaptive
            assignment loop), "static" (fixed channel), "opt" (all four
            omniscient static baselines), "protocol" (full BSS with
            beacons/chirps/disconnections), "discovery" (timed AP
            discovery race), "sift" (SIFT accuracy over a synthesized
            capture), "citywide" (many APs sharing one metro
            white-space database), "roaming" (mobile clients
            re-querying the database under the 100 m re-check rule),
            "querystorm" (a sharded database cluster under storm load,
            with optional PAWS-style push).
        channel: (center_index, width_mhz) for kind "static".
        reeval_interval_us: WhiteFi assignment-loop period.
        hysteresis_margin: voluntary-switch margin override (None =
            paper default).
        ap_weight: AP weighting override (None = paper's N-times rule).
        aggregation: MCham aggregation ("product"/"min"/"max").
        timeline_interval_us: optional throughput sampling period.
        probe_duration_us: per-candidate probe length for kind "opt".
        run_until_us: simulation horizon for kind "protocol" (None =
            warmup + duration).
        discovery_algorithm: kind "discovery" — "baseline", "l-sift",
            or "j-sift".
        sift_width_mhz: kind "sift" — true channel width of the
            synthesized capture.
        sift_rate_mbps: kind "sift" — iperf injection rate.
        sift_num_packets: kind "sift" — packets per run (None = the
            paper's 110).
        citywide_aps: kinds "citywide"/"roaming"/"querystorm" — number
            of APs placed across the metro plane.
        citywide_extent_km: kinds "citywide"/"roaming"/"querystorm" —
            metro plane edge length (None = the wsdb default, 20 km).
        citywide_mic_events: kinds "citywide"/"roaming"/"querystorm" —
            mid-session microphone registrations (None = 0).
        roaming_clients: kinds "roaming"/"querystorm" — mobile clients
            following seeded waypoint paths.
        roaming_speed_mps: kinds "roaming"/"querystorm" — client speed
            (None = the mobility default, 14 m/s).
        roaming_recheck_m: kinds "roaming"/"querystorm" — movement
            granularity of the FCC re-check rule; also sets the
            database's response cell edge so the protocol and the rule
            stay aligned (None = the wsdb default, 100 m).
        storm_shards: kind "querystorm" — cell-aligned shard count of
            the database cluster.
        storm_offered_qps: kind "querystorm" — synthetic storm load in
            requests per simulated second (None = 0, no storm).
        storm_push: kind "querystorm" — register clients for
            PAWS-style push notifications, closing the pull model's
            violation window (None = False, pull-only).
        storm_rate_limit_qps: kind "querystorm" — frontend token-bucket
            admission rate (None = unlimited, nothing is shed).
        storm_shed_policy: kind "querystorm" — how over-limit requests
            are answered: "reject" or "serve-stale" (None = "reject").
        engine: kinds "roaming"/"querystorm" — the mobile-client
            engine: "scalar" (the reference per-client loop) or
            "vector" (the columnar numpy engine, bit-identical reports,
            scales to millions of clients).  None = "scalar".
        storm_trace: kinds "querystorm"/"replay" — path to a recorded
            trace (``repro.traces`` JSONL or columnar ``.npz``) whose
            query stream replaces the synthetic storm generator;
            required by "replay".  The *path string* participates in
            ``spec_hash`` (the file's content does not — re-recording
            over a path invalidates caches manually).
        telemetry: kinds "citywide"/"roaming"/"querystorm"/"replay" —
            "on" attaches a sim-clock :class:`repro.telemetry`
            metrics registry to the run and surfaces its snapshot as
            the result's ``metrics["telemetry"]`` payload; "off" (the
            None default) keeps every report byte-identical to the
            pre-telemetry path.  Metrics are deterministic functions
            of the spec, never of wall-clock time, so they cache and
            replay like any other result field.
        spans: kinds "roaming"/"querystorm"/"replay" — "on" attaches a
            sim-clock :class:`repro.telemetry.spans.SpanRecorder` to
            the run and surfaces its span table as the result's
            ``metrics["spans"]`` payload (request-scoped trees with
            tail-latency attribution); "off" (the None default) keeps
            every report byte-identical to the spans-free path.
        span_sample: kinds "roaming"/"querystorm"/"replay" — the
            deterministic sampling policy when ``spans="on"``: "off"
            (keep every trace, the default), "head-N" (keep 1-in-N by
            trace-id hash), or "tail" (keep only traces that waited,
            i.e. nonzero duration).  Latency bucket counts and the
            tail threshold always cover *all* served requests; sampling
            limits only which trees are retained.

    The kind is resolved through the
    :mod:`~repro.experiments.registry` and validation is delegated to
    the kind object itself (``RunKind.validate_spec``): each kind
    rejects combinations it would silently ignore where intent is
    unambiguous (mics outside protocol runs, a fixed channel outside
    static runs, ...).  Tuning knobs with non-None defaults
    (``reeval_interval_us``, ``probe_duration_us``, ...) are consulted
    only by their own kind and left untouched otherwise, so one
    scenario template can be re-used across kinds; note the unused
    values still participate in ``spec_hash``.
    """

    scenario: ScenarioSpec
    kind: str = "whitefi"
    channel: tuple[int, float] | None = None
    reeval_interval_us: float = 2_000_000.0
    hysteresis_margin: float | None = None
    ap_weight: float | None = None
    aggregation: str = "product"
    timeline_interval_us: float | None = None
    probe_duration_us: float = 1_500_000.0
    run_until_us: float | None = None
    discovery_algorithm: str | None = None
    sift_width_mhz: float | None = None
    sift_rate_mbps: float | None = None
    sift_num_packets: int | None = None
    citywide_aps: int | None = None
    citywide_extent_km: float | None = None
    citywide_mic_events: int | None = None
    roaming_clients: int | None = None
    roaming_speed_mps: float | None = None
    roaming_recheck_m: float | None = None
    storm_shards: int | None = None
    storm_offered_qps: float | None = None
    storm_push: bool | None = None
    storm_rate_limit_qps: float | None = None
    storm_shed_policy: str | None = None
    engine: str | None = None
    storm_trace: str | None = None
    telemetry: str | None = None
    spans: str | None = None
    span_sample: str | None = None

    def __post_init__(self) -> None:
        # Resolve the kind first: unknown kinds raise here, listing the
        # registered names sorted.
        from repro.experiments.registry import get_run_kind

        run_kind = get_run_kind(self.kind)
        if self.channel is not None:
            center, width = self.channel
            object.__setattr__(self, "channel", (int(center), float(width)))
        # Normalize numeric kind knobs so equivalent spellings (5 vs
        # 5.0) share one canonical JSON form and therefore one
        # spec_hash / cache key.
        if self.sift_width_mhz is not None:
            object.__setattr__(self, "sift_width_mhz", float(self.sift_width_mhz))
        if self.sift_rate_mbps is not None:
            object.__setattr__(self, "sift_rate_mbps", float(self.sift_rate_mbps))
        if self.sift_num_packets is not None:
            object.__setattr__(
                self, "sift_num_packets", int(self.sift_num_packets)
            )
        if self.citywide_aps is not None:
            object.__setattr__(self, "citywide_aps", int(self.citywide_aps))
        if self.citywide_extent_km is not None:
            object.__setattr__(
                self, "citywide_extent_km", float(self.citywide_extent_km)
            )
        if self.citywide_mic_events is not None:
            object.__setattr__(
                self, "citywide_mic_events", int(self.citywide_mic_events)
            )
        if self.roaming_clients is not None:
            object.__setattr__(self, "roaming_clients", int(self.roaming_clients))
        if self.roaming_speed_mps is not None:
            object.__setattr__(
                self, "roaming_speed_mps", float(self.roaming_speed_mps)
            )
        if self.roaming_recheck_m is not None:
            object.__setattr__(
                self, "roaming_recheck_m", float(self.roaming_recheck_m)
            )
        if self.storm_shards is not None:
            object.__setattr__(self, "storm_shards", int(self.storm_shards))
        if self.storm_offered_qps is not None:
            object.__setattr__(
                self, "storm_offered_qps", float(self.storm_offered_qps)
            )
        if self.storm_push is not None:
            object.__setattr__(self, "storm_push", bool(self.storm_push))
        if self.storm_rate_limit_qps is not None:
            object.__setattr__(
                self, "storm_rate_limit_qps", float(self.storm_rate_limit_qps)
            )
        if self.engine is not None:
            object.__setattr__(self, "engine", str(self.engine))
        if self.storm_trace is not None:
            object.__setattr__(self, "storm_trace", str(self.storm_trace))
        if self.telemetry is not None:
            object.__setattr__(self, "telemetry", str(self.telemetry))
        if self.spans is not None:
            object.__setattr__(self, "spans", str(self.spans))
        if self.span_sample is not None:
            object.__setattr__(self, "span_sample", str(self.span_sample))
        run_kind.validate_spec(self)

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """A copy of this experiment with a different scenario seed."""
        return replace(self, scenario=self.scenario.with_seed(seed))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-data representation (JSON-compatible)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown experiment spec fields: {sorted(unknown)}"
            )
        data["scenario"] = ScenarioSpec.from_dict(data["scenario"])
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (stable key order, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @property
    def spec_hash(self) -> str:
        """A stable content hash — the result-cache key.

        Two specs hash equally iff their canonical JSON is identical,
        so the hash covers every field including the scenario seed.
        """
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]
