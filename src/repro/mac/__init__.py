"""MAC substrate: frame taxonomy and DCF (CSMA/CA) parameters.

WhiteFi deliberately reuses the Wi-Fi MAC (Section 6: "The success of LBT
protocols (e.g., Wi-Fi) in the ISM bands made it a natural choice for
white space networking"), with every timing parameter scaled by the
channel width.
"""

from repro.mac.frames import Frame, FrameType
from repro.mac.csma import BackoffState, DcfParameters, dcf_for_width

__all__ = [
    "Frame",
    "FrameType",
    "BackoffState",
    "DcfParameters",
    "dcf_for_width",
]
