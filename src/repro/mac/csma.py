"""DCF (CSMA/CA) parameters and backoff bookkeeping.

The simulator implements the classic 802.11 distributed coordination
function with width-scaled timing, plus the paper's multi-channel carrier
sense rule (Section 5.4): "a node spanning multiple UHF channels will
transmit a packet only if no carrier is sensed on any of those channels."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import constants
from repro.errors import SimulationError
from repro.phy.timing import WidthTiming, timing_for_width


@dataclass(frozen=True)
class DcfParameters:
    """DCF constants at one channel width.

    Attributes:
        timing: the width's PHY timing.
        cw_min: minimum contention window (slots).
        cw_max: maximum contention window (slots).
        max_retries: MAC retry limit before a frame is dropped.
    """

    timing: WidthTiming
    cw_min: int = constants.CW_MIN
    cw_max: int = constants.CW_MAX
    max_retries: int = constants.MAX_RETRIES

    @property
    def slot_us(self) -> float:
        """Slot duration (us)."""
        return self.timing.slot_us

    @property
    def difs_us(self) -> float:
        """DIFS duration (us)."""
        return self.timing.difs_us

    @property
    def sifs_us(self) -> float:
        """SIFS duration (us)."""
        return self.timing.sifs_us

    def ack_timeout_us(self) -> float:
        """How long a sender waits for an ACK before declaring loss."""
        return self.sifs_us + self.timing.ack_duration_us + 2 * self.slot_us


def dcf_for_width(width_mhz: float) -> DcfParameters:
    """DCF parameters for a channel width."""
    return DcfParameters(timing=timing_for_width(width_mhz))


@dataclass
class BackoffState:
    """Per-node DCF backoff state machine data.

    The contention window doubles on every failed attempt (collision /
    missing ACK) and resets on success, per 802.11.
    """

    params: DcfParameters
    rng: random.Random
    retries: int = 0
    cw: int = field(init=False)
    slots_remaining: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.cw = self.params.cw_min
        self.draw()

    def draw(self) -> int:
        """Draw a fresh uniform backoff in [0, cw] and return it."""
        self.slots_remaining = self.rng.randint(0, self.cw)
        return self.slots_remaining

    def on_failure(self) -> bool:
        """Register a failed attempt.

        Returns:
            True if the frame should be retried, False if the retry limit
            was exhausted (frame dropped).
        """
        self.retries += 1
        self.cw = min(2 * self.cw + 1, self.params.cw_max)
        self.draw()
        return self.retries <= self.params.max_retries

    def on_success(self) -> None:
        """Reset the window after a successful exchange."""
        self.retries = 0
        self.cw = self.params.cw_min
        self.draw()

    def consume_slot(self) -> None:
        """Count down one idle slot.

        Raises:
            SimulationError: if no slots remain (caller logic error).
        """
        if self.slots_remaining <= 0:
            raise SimulationError("backoff consumed below zero")
        self.slots_remaining -= 1

    @property
    def ready(self) -> bool:
        """True when the countdown reached zero and TX may start."""
        return self.slots_remaining == 0
