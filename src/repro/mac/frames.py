"""MAC frame taxonomy for WhiteFi.

Frames carry just enough structure for the simulator and control plane:
on-air size (which fixes duration at a given width) plus the control
payloads WhiteFi adds — the backup channel in beacons, spectrum maps and
airtime vectors in client reports, and white-space availability in
chirps.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro import constants
from repro.errors import ProtocolError


class FrameType(enum.Enum):
    """On-air frame types used by WhiteFi."""

    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"
    CTS = "cts"
    PROBE_REQUEST = "probe-request"
    PROBE_RESPONSE = "probe-response"
    #: Client -> AP control message carrying spectrum map + airtime vector.
    REPORT = "report"
    #: AP -> clients broadcast announcing a channel switch.
    CHANNEL_SWITCH = "channel-switch"
    #: Backup-channel distress signal (length carries the OOK SSID code).
    CHIRP = "chirp"


#: Default on-air sizes (bytes) by frame type.
_DEFAULT_SIZES = {
    FrameType.DATA: 1000 + constants.DATA_HEADER_BYTES,
    FrameType.ACK: constants.ACK_FRAME_BYTES,
    FrameType.BEACON: constants.BEACON_FRAME_BYTES,
    FrameType.CTS: constants.CTS_FRAME_BYTES,
    FrameType.PROBE_REQUEST: 44,
    FrameType.PROBE_RESPONSE: constants.BEACON_FRAME_BYTES,
    FrameType.REPORT: 44 + 2 * constants.NUM_UHF_CHANNELS,
    FrameType.CHANNEL_SWITCH: 36,
    FrameType.CHIRP: 70,
}

_frame_ids = itertools.count()


@dataclass
class Frame:
    """One MAC frame.

    Attributes:
        frame_type: taxonomy entry.
        source: sender node id.
        destination: receiver node id, or "*" for broadcast.
        size_bytes: on-air size including MAC header and FCS.
        payload: structured control payload (e.g. a NodeReport, a new
            channel); opaque to the MAC.
        frame_id: unique id for tracing.
    """

    frame_type: FrameType
    source: str
    destination: str = "*"
    size_bytes: int = 0
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = _DEFAULT_SIZES[self.frame_type]
        if self.size_bytes < constants.ACK_FRAME_BYTES:
            raise ProtocolError(
                f"frame smaller than the minimum MAC frame: {self.size_bytes} bytes"
            )

    @property
    def is_broadcast(self) -> bool:
        """True for broadcast frames (no ACK expected)."""
        return self.destination == "*"

    @property
    def expects_ack(self) -> bool:
        """True when the receiver must ACK one SIFS after reception."""
        return not self.is_broadcast and self.frame_type in (
            FrameType.DATA,
            FrameType.REPORT,
            FrameType.PROBE_REQUEST,
            FrameType.PROBE_RESPONSE,
        )


def data_frame(source: str, destination: str, payload_bytes: int) -> Frame:
    """A data frame with *payload_bytes* of payload (header added)."""
    if payload_bytes < 0:
        raise ProtocolError(f"payload must be >= 0 bytes, got {payload_bytes}")
    return Frame(
        FrameType.DATA,
        source,
        destination,
        size_bytes=payload_bytes + constants.DATA_HEADER_BYTES,
    )


def beacon_frame(source: str, backup_channel: Any = None) -> Frame:
    """A beacon advertising the AP's backup channel (Section 4.3)."""
    return Frame(
        FrameType.BEACON, source, "*", payload={"backup_channel": backup_channel}
    )


def report_frame(source: str, destination: str, report: Any) -> Frame:
    """A client's periodic spectrum/airtime report (Section 4.1)."""
    return Frame(FrameType.REPORT, source, destination, payload=report)


def channel_switch_frame(source: str, new_channel: Any) -> Frame:
    """The AP's broadcast announcing a switch to *new_channel*."""
    return Frame(
        FrameType.CHANNEL_SWITCH, source, "*", payload={"new_channel": new_channel}
    )
