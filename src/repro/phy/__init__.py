"""PHY substrate: per-width timing, IQ synthesis, capture model.

WhiteFi's PHY is a width-scaled 802.11a OFDM: operating a Wi-Fi card at a
reduced PLL clock stretches every on-air duration by ``20 / W``.  SIFT
consumes raw time-domain (I, Q) amplitude, so this package synthesizes
exactly that observable:

* :mod:`repro.phy.timing` — symbol/SIFS/DIFS/slot and frame durations.
* :mod:`repro.phy.iq` — IQ trace containers at the USRP sample rate.
* :mod:`repro.phy.waveform` — burst envelope synthesis (incl. the 5 MHz
  ramp-up artifact of Figure 5).
* :mod:`repro.phy.noise` — AWGN and attenuation.
* :mod:`repro.phy.capture` — the USRP capture model (8 MHz span, 1 MS/s).
* :mod:`repro.phy.environment` — an RF environment mapping transmitter
  schedules to captured IQ.
"""

from repro.phy.timing import WidthTiming, timing_for_width, frame_airtime_us
from repro.phy.iq import IqTrace
from repro.phy.waveform import BurstSpec, synthesize_bursts
from repro.phy.noise import attenuate_db, awgn_amplitude
from repro.phy.capture import CaptureRequest, capture_overlaps_channel
from repro.phy.environment import RfEnvironment, ScheduledFrame

__all__ = [
    "WidthTiming",
    "timing_for_width",
    "frame_airtime_us",
    "IqTrace",
    "BurstSpec",
    "synthesize_bursts",
    "attenuate_db",
    "awgn_amplitude",
    "CaptureRequest",
    "capture_overlaps_channel",
    "RfEnvironment",
    "ScheduledFrame",
]
