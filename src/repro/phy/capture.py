"""The USRP scanner capture model.

Hardware constraints from Section 3 / 4.2.1:

* the TVRX front end spans at most **8 MHz** per capture, so one scan can
  only see transmitters whose channel overlaps that span;
* the host samples a **1 MHz** band around the scan center at 1 MS/s
  (1.024 us per sample), delivered in 2048-sample blocks;
* a transmitter is visible whenever its (F, W) band overlaps the sampled
  band — the center frequencies need not match, which is what gives SIFT
  its ``F +/- W/2`` center-frequency uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import SignalError
from repro.spectrum.channels import US_BAND_PLAN, UhfBandPlan, WhiteFiChannel


@dataclass(frozen=True)
class CaptureRequest:
    """One scanner capture: a center UHF index plus a dwell time.

    Attributes:
        center_index: usable-UHF-channel index whose center frequency the
            scanner tunes to.
        duration_us: capture dwell time.
    """

    center_index: int
    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise SignalError(
                f"capture duration must be positive, got {self.duration_us}"
            )

    def center_frequency_mhz(self, plan: UhfBandPlan = US_BAND_PLAN) -> float:
        """Physical scan center frequency in MHz."""
        return plan.center_frequency_mhz(self.center_index)


def capture_overlaps_channel(
    scan_center_index: int,
    channel: WhiteFiChannel,
    plan: UhfBandPlan = US_BAND_PLAN,
) -> bool:
    """True when a scan of UHF channel *scan_center_index* can see *channel*.

    Scanning a UHF channel means observing its full 6 MHz band: the TVRX
    front end spans 8 MHz around the channel center, and the digital
    downconverter can place the 1 MHz sampled slice anywhere inside that
    span, so any transmitter energy falling within the scanned channel's
    band is observable.  A width-W transmitter is therefore visible iff
    its band ``[Fc - W/2, Fc + W/2]`` overlaps the scanned channel's band
    ``[Fs - 3, Fs + 3]`` MHz.

    In UHF-index terms this reproduces the paper's span semantics exactly:
    a 5 MHz transmitter is visible from 1 scan center, 10 MHz from 3, and
    20 MHz from 5 (``Section 4``: a 10 MHz channel spans 3 UHF channels, a
    20 MHz channel spans 5) — the property J-SIFT's staggered search
    exploits, and the source of SIFT's ``F +/- W/2`` center uncertainty.

    The check runs in usable-channel index space (matching the paper's
    treatment of the 30 channels as contiguous, channel 37 simply absent),
    so Algorithm 1's stepping arithmetic holds everywhere in the band.
    """
    del plan  # visibility is index-based; the plan parameter is kept for API symmetry
    return abs(scan_center_index - channel.center_index) <= channel.span // 2


def visible_center_indices(
    channel: WhiteFiChannel, num_channels: int = constants.NUM_UHF_CHANNELS
) -> tuple[int, ...]:
    """All scan centers from which *channel* is visible.

    >>> visible_center_indices(WhiteFiChannel(10, 20.0))
    (8, 9, 10, 11, 12)
    """
    half = channel.span // 2
    lo = max(0, channel.center_index - half)
    hi = min(num_channels - 1, channel.center_index + half)
    return tuple(range(lo, hi + 1))


def center_uncertainty_indices(
    scan_center_index: int,
    width_mhz: float,
    num_channels: int = constants.NUM_UHF_CHANNELS,
) -> tuple[int, ...]:
    """Candidate transmitter centers given a detection at a scan center.

    This is the ``F +/- E`` with ``E = +/- W/2`` of Section 4.2.1: when
    SIFT reports width ``W`` from a scan at index ``s``, the transmitter's
    true center can be any index within ``span // 2`` of ``s`` (clipped to
    positions where the channel fits in the band).
    """
    half = constants.span_channels(width_mhz) // 2
    candidates = []
    for center in range(scan_center_index - half, scan_center_index + half + 1):
        lo = center - half
        hi = center + half
        if lo >= 0 and hi < num_channels:
            candidates.append(center)
    return tuple(candidates)
