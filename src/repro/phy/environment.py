"""A synthetic RF environment: transmitter schedules -> captured IQ.

The environment is the glue between the protocol world (who transmits
what, when, on which (F, W) channel) and the signal world SIFT lives in
(amplitude samples at 1.024 us).  A scanner capture at a UHF center index
sees bursts from every transmitter whose channel overlaps the sampled
band, each rendered over a common noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from repro import constants
from repro.errors import SignalError
from repro.phy.capture import capture_overlaps_channel
from repro.phy.iq import IqTrace
from repro.phy.noise import DEFAULT_NOISE_RMS, DEFAULT_SIGNAL_RMS
from repro.phy.timing import timing_for_width
from repro.phy.waveform import (
    BurstSpec,
    beacon_cts_bursts,
    data_ack_bursts,
    synthesize_bursts,
)
from repro.spectrum.channels import WhiteFiChannel


@dataclass(frozen=True)
class ScheduledFrame:
    """A frame on the air at an absolute environment time.

    Attributes:
        channel: the (F, W) WhiteFi channel the frame is sent on.
        burst: time-domain envelope with **absolute** ``start_us``.
    """

    channel: WhiteFiChannel
    burst: BurstSpec


class Transmitter(Protocol):
    """Anything that can report its frames within a time window."""

    def frames_in(self, t0_us: float, t1_us: float) -> Iterable[ScheduledFrame]:
        """Frames whose on-air interval intersects ``[t0_us, t1_us)``."""
        ...


@dataclass
class BeaconingAp:
    """An AP emitting beacon + CTS-to-self pairs every beacon interval.

    Optionally also carries Data-ACK traffic (for airtime-measurement
    scenarios).  Used by the discovery experiments: "the AP started to
    beacon on a randomly chosen UHF channel and channel width".

    Attributes:
        channel: the AP's operating channel.
        amplitude_rms: received amplitude at the scanner.
        beacon_interval_us: TBTT (102.4 ms by default).
        phase_us: offset of the first beacon.
        data_payload_bytes / data_gap_us: optional Data-ACK stream; the
            stream is laid out back-to-back with the given gap, skipping
            beacon slots.
    """

    channel: WhiteFiChannel
    amplitude_rms: float = DEFAULT_SIGNAL_RMS
    beacon_interval_us: float = constants.BEACON_INTERVAL_US
    phase_us: float = 0.0
    data_payload_bytes: int = 0
    data_gap_us: float = 0.0

    def _beacons_in(self, t0_us: float, t1_us: float) -> Iterable[ScheduledFrame]:
        timing = timing_for_width(self.channel.width_mhz)
        pair_len = (
            timing.beacon_duration_us + timing.sifs_us + timing.cts_duration_us
        )
        # First beacon index whose pair could intersect the window.
        k = max(0, int(np.floor((t0_us - self.phase_us - pair_len) / self.beacon_interval_us)))
        while True:
            start = self.phase_us + k * self.beacon_interval_us
            if start >= t1_us:
                break
            if start + pair_len > t0_us:
                beacon, cts = beacon_cts_bursts(
                    self.channel.width_mhz, start, amplitude_rms=self.amplitude_rms
                )
                yield ScheduledFrame(self.channel, beacon)
                yield ScheduledFrame(self.channel, cts)
            k += 1

    def _data_in(self, t0_us: float, t1_us: float) -> Iterable[ScheduledFrame]:
        if self.data_payload_bytes <= 0:
            return
        timing = timing_for_width(self.channel.width_mhz)
        exchange = timing.exchange_duration_us(self.data_payload_bytes)
        period = exchange + self.data_gap_us
        if period <= 0:
            raise SignalError("data stream period must be positive")
        k = max(0, int(np.floor((t0_us - self.phase_us - exchange) / period)))
        while True:
            start = self.phase_us + k * period
            if start >= t1_us:
                break
            if start + exchange > t0_us:
                data, ack = data_ack_bursts(
                    self.channel.width_mhz,
                    self.data_payload_bytes,
                    start,
                    amplitude_rms=self.amplitude_rms,
                )
                yield ScheduledFrame(self.channel, data)
                yield ScheduledFrame(self.channel, ack)
            k += 1

    def frames_in(self, t0_us: float, t1_us: float) -> Iterable[ScheduledFrame]:
        """All beacon/CTS (and optional data) frames intersecting the window."""
        yield from self._beacons_in(t0_us, t1_us)
        yield from self._data_in(t0_us, t1_us)


@dataclass
class StaticSchedule:
    """A transmitter with an explicit, precomputed frame list."""

    frames: list[ScheduledFrame] = field(default_factory=list)

    def add(self, channel: WhiteFiChannel, burst: BurstSpec) -> None:
        """Append one frame to the schedule."""
        self.frames.append(ScheduledFrame(channel, burst))

    def frames_in(self, t0_us: float, t1_us: float) -> Iterable[ScheduledFrame]:
        """Frames whose on-air interval intersects the window."""
        for frame in self.frames:
            if frame.burst.start_us < t1_us and frame.burst.end_us > t0_us:
                yield frame


class RfEnvironment:
    """A collection of transmitters plus a common noise floor.

    The environment renders scanner captures: given a scan center and a
    time window, it synthesizes the IQ trace a USRP would deliver,
    containing every visible transmitter's bursts.
    """

    def __init__(
        self,
        num_channels: int = constants.NUM_UHF_CHANNELS,
        noise_rms: float = DEFAULT_NOISE_RMS,
        seed: int = 0,
    ):
        self.num_channels = num_channels
        self.noise_rms = noise_rms
        self._transmitters: list[Transmitter] = []
        self._rng = np.random.default_rng(seed)

    def add_transmitter(self, transmitter: Transmitter) -> None:
        """Register a transmitter with the environment."""
        self._transmitters.append(transmitter)

    def remove_transmitter(self, transmitter: Transmitter) -> None:
        """Remove a previously registered transmitter."""
        self._transmitters.remove(transmitter)

    @property
    def transmitters(self) -> tuple[Transmitter, ...]:
        """Registered transmitters (read-only view)."""
        return tuple(self._transmitters)

    def visible_bursts(
        self, scan_center_index: int, t0_us: float, duration_us: float
    ) -> list[BurstSpec]:
        """Bursts visible from *scan_center_index* in the window.

        Burst ``start_us`` values are rebased to be capture-relative.
        """
        t1_us = t0_us + duration_us
        visible: list[BurstSpec] = []
        for transmitter in self._transmitters:
            for frame in transmitter.frames_in(t0_us, t1_us):
                if not capture_overlaps_channel(scan_center_index, frame.channel):
                    continue
                burst = frame.burst
                visible.append(
                    BurstSpec(
                        start_us=burst.start_us - t0_us,
                        duration_us=burst.duration_us,
                        amplitude_rms=burst.amplitude_rms,
                        ramp_fraction=burst.ramp_fraction,
                        ramp_level=burst.ramp_level,
                        label=burst.label,
                    )
                )
        return visible

    def capture(
        self, scan_center_index: int, t0_us: float, duration_us: float
    ) -> IqTrace:
        """Synthesize the IQ trace of a capture at *scan_center_index*.

        Args:
            scan_center_index: usable-UHF-channel index the scanner tunes to.
            t0_us: capture start on the environment clock.
            duration_us: dwell time.
        """
        if not 0 <= scan_center_index < self.num_channels:
            raise SignalError(
                f"scan center {scan_center_index} outside 0..{self.num_channels - 1}"
            )
        bursts = self.visible_bursts(scan_center_index, t0_us, duration_us)
        return synthesize_bursts(
            bursts,
            duration_us,
            noise_rms=self.noise_rms,
            rng=self._rng,
            start_us=t0_us,
        )
