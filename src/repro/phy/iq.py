"""Raw IQ trace containers at the USRP scanner's sample rate.

The scanner front end delivers complex (I, Q) samples at ~1 MS/s (one
sample per 1.024 us) in blocks of 2048.  SIFT only ever consumes the
amplitude ``sqrt(I^2 + Q^2)`` (Figure 5's y-axis), so the container keeps
the complex samples but exposes a cached amplitude view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import constants
from repro.errors import SignalError


@dataclass
class IqTrace:
    """A contiguous capture of complex baseband samples.

    Attributes:
        samples: complex128 array of (I + jQ) samples.
        sample_period_us: seconds-per-sample in microseconds (1.024 by
            default, matching the paper's USRP configuration).
        start_us: capture start time on the environment clock.
    """

    samples: np.ndarray
    sample_period_us: float = constants.SAMPLE_PERIOD_US
    start_us: float = 0.0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.complex128)
        if self.samples.ndim != 1:
            raise SignalError(
                f"IQ trace must be one-dimensional, got shape {self.samples.shape}"
            )
        if self.sample_period_us <= 0:
            raise SignalError(
                f"sample period must be positive, got {self.sample_period_us}"
            )
        self._amplitude: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_us(self) -> float:
        """Capture duration in microseconds."""
        return len(self.samples) * self.sample_period_us

    @property
    def amplitude(self) -> np.ndarray:
        """Per-sample amplitude ``sqrt(I^2 + Q^2)`` (cached)."""
        if self._amplitude is None:
            self._amplitude = np.abs(self.samples)
        return self._amplitude

    def time_of_sample(self, index: int) -> float:
        """Environment-clock time (us) of sample *index*."""
        return self.start_us + index * self.sample_period_us

    def sample_at_time(self, t_us: float) -> int:
        """Sample index corresponding to environment time *t_us* (clamped)."""
        idx = int(round((t_us - self.start_us) / self.sample_period_us))
        return min(max(idx, 0), max(len(self.samples) - 1, 0))

    def blocks(
        self, block_samples: int = constants.USRP_BLOCK_SAMPLES
    ) -> Iterator[np.ndarray]:
        """Yield samples in USRP-style fixed-size blocks (last may be short).

        >>> trace = IqTrace(np.zeros(5000, dtype=complex))
        >>> [len(b) for b in trace.blocks(2048)]
        [2048, 2048, 904]
        """
        if block_samples <= 0:
            raise SignalError(f"block size must be positive, got {block_samples}")
        for offset in range(0, len(self.samples), block_samples):
            yield self.samples[offset : offset + block_samples]

    def concatenate(self, other: "IqTrace") -> "IqTrace":
        """Join two back-to-back captures into one trace.

        Raises:
            SignalError: on mismatched sample periods.
        """
        if abs(self.sample_period_us - other.sample_period_us) > 1e-12:
            raise SignalError("cannot concatenate traces with different rates")
        return IqTrace(
            np.concatenate([self.samples, other.samples]),
            self.sample_period_us,
            self.start_us,
        )


def samples_for_duration(
    duration_us: float, sample_period_us: float = constants.SAMPLE_PERIOD_US
) -> int:
    """Number of samples spanning *duration_us* (rounded to nearest)."""
    if duration_us < 0:
        raise SignalError(f"duration must be >= 0, got {duration_us}")
    return int(round(duration_us / sample_period_us))
