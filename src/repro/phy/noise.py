"""Noise and attenuation models for the synthetic RF front end.

Amplitudes are in arbitrary ADC counts, matching the scale of Figure 5
(signal amplitudes around 600-1400 counts over a noise floor of tens of
counts).  Attenuation (Figure 7) scales amplitude by ``10^(-dB/20)``.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import SignalError

#: Default RMS amplitude of the complex-Gaussian noise floor (ADC counts).
DEFAULT_NOISE_RMS = 20.0

#: Default received signal RMS amplitude with no attenuation (ADC counts).
DEFAULT_SIGNAL_RMS = 900.0


def attenuate_db(amplitude: float, attenuation_db: float) -> float:
    """Scale an *amplitude* (not power) by ``attenuation_db`` decibels.

    >>> attenuate_db(1000.0, 20.0)
    100.0
    """
    if attenuation_db < 0:
        raise SignalError(f"attenuation must be >= 0 dB, got {attenuation_db}")
    return amplitude * 10.0 ** (-attenuation_db / 20.0)


def awgn_amplitude(
    num_samples: int,
    rms: float = DEFAULT_NOISE_RMS,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Complex AWGN samples with the requested RMS amplitude.

    The amplitude of complex Gaussian noise is Rayleigh-distributed; the
    RMS of the magnitude equals ``rms`` when each quadrature has standard
    deviation ``rms / sqrt(2)``.
    """
    if num_samples < 0:
        raise SignalError(f"num_samples must be >= 0, got {num_samples}")
    if rms < 0:
        raise SignalError(f"noise RMS must be >= 0, got {rms}")
    if rng is None:
        rng = np.random.default_rng(constants.FALLBACK_RNG_SEED)
    sigma = rms / np.sqrt(2.0)
    return rng.normal(0.0, sigma, num_samples) + 1j * rng.normal(
        0.0, sigma, num_samples
    )


def snr_db(signal_rms: float, noise_rms: float) -> float:
    """Signal-to-noise ratio in dB from RMS amplitudes."""
    if signal_rms <= 0 or noise_rms <= 0:
        raise SignalError("RMS amplitudes must be positive for SNR")
    return 20.0 * np.log10(signal_rms / noise_rms)


def decode_success_probability(
    snr_db_value: float,
    frame_bytes: int,
    *,
    snr_50_db: float = 5.0,
    ber_slope_per_db: float = 0.6,
) -> float:
    """Probability that a transceiver decodes a frame at the given SNR.

    The bit error rate falls exponentially (in dB) with SNR — the classic
    waterfall curve — and a frame succeeds only if every bit does.  This
    produces the *smooth* sniffer-detection falloff of Figure 7, in
    contrast with SIFT's hard amplitude-threshold cliff.

    Args:
        snr_db_value: received SNR in dB.
        frame_bytes: frame size (longer frames fail earlier).
        snr_50_db: SNR at which a 1000-byte frame is decoded 50% of the
            time.
        ber_slope_per_db: decades of BER improvement per dB of SNR.
    """
    if frame_bytes <= 0:
        raise SignalError(f"frame size must be positive, got {frame_bytes}")
    bits = frame_bytes * 8
    # Anchor: BER at snr_50_db makes an 8000-bit frame succeed 50% of
    # the time; each dB above improves BER by ber_slope_per_db decades.
    log10_ber_at_anchor = np.log10(np.log(2.0) / 8000.0)
    log10_ber = log10_ber_at_anchor - ber_slope_per_db * (
        snr_db_value - snr_50_db
    )
    ber = min(0.5, 10.0**log10_ber)
    p_frame = float(np.exp(-bits * ber))
    return min(1.0, max(0.0, p_frame))
