"""Per-width MAC/PHY timing, following Chandra et al. (SIGCOMM 2008).

Reducing the PLL clock by a factor ``k = 20 MHz / W`` stretches every
on-air duration by ``k`` and divides the effective data rate by ``k``:

* 20 MHz: symbol 4 us, SIFS 10 us, slot 9 us, 6 Mbps.
* 10 MHz: symbol 8 us, SIFS 20 us, slot 18 us, 3 Mbps.
*  5 MHz: symbol 16 us, SIFS 40 us, slot 36 us, 1.5 Mbps.

These are the durations and gaps SIFT matches against (Section 4.2.1):
"Both the packet duration and the SIFS interval are inversely
proportional to the channel width."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro import constants
from repro.errors import SignalError


@dataclass(frozen=True)
class WidthTiming:
    """All timing parameters for one channel width.

    Attributes:
        width_mhz: the channel width this timing describes.
        scale: stretch factor relative to 20 MHz (``20 / W``).
    """

    width_mhz: float
    scale: float

    @property
    def symbol_us(self) -> float:
        """OFDM symbol period (us)."""
        return constants.BASE_SYMBOL_US * self.scale

    @property
    def sifs_us(self) -> float:
        """Short interframe space (us)."""
        return constants.BASE_SIFS_US * self.scale

    @property
    def slot_us(self) -> float:
        """DCF slot time (us)."""
        return constants.BASE_SLOT_US * self.scale

    @property
    def difs_us(self) -> float:
        """DIFS = SIFS + 2 slots (us)."""
        return self.sifs_us + 2 * self.slot_us

    @property
    def preamble_us(self) -> float:
        """PLCP preamble plus SIGNAL field (us)."""
        return constants.BASE_PREAMBLE_US * self.scale

    @property
    def data_rate_mbps(self) -> float:
        """Effective data rate at this width (Mbps)."""
        return constants.BASE_DATA_RATE_MBPS / self.scale

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits carried per OFDM symbol (rate-dependent, width-free)."""
        return round(constants.BASE_DATA_RATE_MBPS * constants.BASE_SYMBOL_US)

    def frame_duration_us(self, frame_bytes: int) -> float:
        """On-air duration of a *frame_bytes* MAC frame at this width.

        Duration = preamble + ceil((service+tail+8*bytes)/bits-per-symbol)
        symbols, all stretched by the width scale.

        >>> timing_for_width(20.0).frame_duration_us(14)
        44.0
        """
        if frame_bytes < 0:
            raise SignalError(f"frame size must be >= 0 bytes, got {frame_bytes}")
        payload_bits = constants.PSDU_OVERHEAD_BITS + 8 * frame_bytes
        symbols = math.ceil(payload_bits / self.bits_per_symbol)
        return self.preamble_us + symbols * self.symbol_us

    @property
    def ack_duration_us(self) -> float:
        """On-air duration of an ACK (the smallest MAC frame, 14 bytes)."""
        return self.frame_duration_us(constants.ACK_FRAME_BYTES)

    @property
    def cts_duration_us(self) -> float:
        """On-air duration of a CTS-to-self frame."""
        return self.frame_duration_us(constants.CTS_FRAME_BYTES)

    @property
    def beacon_duration_us(self) -> float:
        """On-air duration of a beacon frame."""
        return self.frame_duration_us(constants.BEACON_FRAME_BYTES)

    def data_duration_us(self, payload_bytes: int) -> float:
        """On-air duration of a data frame with *payload_bytes* of payload."""
        return self.frame_duration_us(payload_bytes + constants.DATA_HEADER_BYTES)

    def exchange_duration_us(self, payload_bytes: int) -> float:
        """Duration of a full DATA + SIFS + ACK exchange."""
        return (
            self.data_duration_us(payload_bytes)
            + self.sifs_us
            + self.ack_duration_us
        )


@lru_cache(maxsize=None)
def timing_for_width(width_mhz: float) -> WidthTiming:
    """Timing parameters for *width_mhz* (5, 10, or 20).

    Raises:
        SignalError: for an unsupported width.
    """
    if width_mhz not in constants.SPAN_BY_WIDTH_MHZ:
        raise SignalError(
            f"unsupported channel width {width_mhz!r} MHz; "
            f"expected one of {constants.CHANNEL_WIDTHS_MHZ}"
        )
    return WidthTiming(width_mhz=width_mhz, scale=constants.width_scale(width_mhz))


def frame_airtime_us(frame_bytes: int, width_mhz: float) -> float:
    """Convenience wrapper: on-air duration of a frame at a width."""
    return timing_for_width(width_mhz).frame_duration_us(frame_bytes)


def all_timings() -> tuple[WidthTiming, ...]:
    """Timings for every supported width, narrowest first."""
    return tuple(timing_for_width(w) for w in constants.CHANNEL_WIDTHS_MHZ)
