"""Time-domain burst synthesis: what the scanner actually sees.

An OFDM transmission observed through a 1 MHz slice of the USRP front end
looks like complex-Gaussian "noise" at elevated power for the duration of
the frame — the amplitude is Rayleigh-distributed and occasionally dips
to very low values mid-packet, which is precisely why SIFT smooths with a
moving average (Section 4.2.1, Figure 5).

One hardware quirk matters for Table 1: at 5 MHz width our prototype's
packets begin at reduced amplitude ("the initial portion of a packet at
5 MHz channel width is sent at a lower amplitude than the rest of the
packet"), which occasionally makes SIFT mis-measure the packet length.
``BurstSpec.ramp_fraction`` reproduces that artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import constants
from repro.errors import SignalError
from repro.phy.iq import IqTrace, samples_for_duration
from repro.phy.noise import DEFAULT_NOISE_RMS, DEFAULT_SIGNAL_RMS, awgn_amplitude

#: Fraction of a 5 MHz frame transmitted at reduced amplitude.
#: Calibrated so that, under mild bench-static fading, the leading edge
#: occasionally slips below SIFT's threshold and spoils the length match
#: for ~1-2% of packets (Table 1's slightly-lower 5 MHz row).
FIVE_MHZ_RAMP_FRACTION = 0.06

#: Amplitude multiplier during the 5 MHz ramp.
FIVE_MHZ_RAMP_LEVEL = 0.55


@dataclass(frozen=True)
class BurstSpec:
    """One on-air frame as seen in the time domain.

    Attributes:
        start_us: burst start relative to the capture start.
        duration_us: on-air duration.
        amplitude_rms: received RMS amplitude in ADC counts.
        ramp_fraction: leading fraction transmitted at ``ramp_level`` times
            the nominal amplitude (the 5 MHz prototype artifact).
        ramp_level: amplitude multiplier during the ramp.
        label: optional tag for debugging/tests ("data", "ack", ...).
    """

    start_us: float
    duration_us: float
    amplitude_rms: float = DEFAULT_SIGNAL_RMS
    ramp_fraction: float = 0.0
    ramp_level: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise SignalError(f"burst duration must be positive, got {self.duration_us}")
        if self.amplitude_rms < 0:
            raise SignalError(f"burst amplitude must be >= 0, got {self.amplitude_rms}")
        if not 0.0 <= self.ramp_fraction <= 1.0:
            raise SignalError(f"ramp fraction {self.ramp_fraction} outside [0, 1]")

    @property
    def end_us(self) -> float:
        """Burst end time relative to the capture start."""
        return self.start_us + self.duration_us


def ramp_for_width(width_mhz: float) -> tuple[float, float]:
    """(ramp_fraction, ramp_level) reproducing the per-width artifacts.

    Only 5 MHz shows the reduced-amplitude leading edge.
    """
    if width_mhz == 5.0:
        return FIVE_MHZ_RAMP_FRACTION, FIVE_MHZ_RAMP_LEVEL
    return 0.0, 1.0


def synthesize_bursts(
    bursts: Sequence[BurstSpec],
    capture_duration_us: float,
    *,
    noise_rms: float = DEFAULT_NOISE_RMS,
    sample_period_us: float = constants.SAMPLE_PERIOD_US,
    rng: np.random.Generator | None = None,
    start_us: float = 0.0,
) -> IqTrace:
    """Render a capture window containing *bursts* over a noise floor.

    Bursts that fall partially outside the window are clipped; fully
    outside bursts are ignored.  Overlapping bursts add as complex
    voltages (power sums on average), matching concurrent transmissions.

    Args:
        bursts: frames on the air, with ``start_us`` relative to the
            capture start.
        capture_duration_us: length of the synthetic capture.
        noise_rms: RMS amplitude of the noise floor.
        sample_period_us: scanner sample period.
        rng: deterministic random source (default: a fresh Generator
            seeded with :data:`repro.constants.FALLBACK_RNG_SEED`, so
            two bare calls produce identical captures).
        start_us: environment-clock timestamp stored on the trace.

    Returns:
        The captured IQ trace.
    """
    if capture_duration_us <= 0:
        raise SignalError(
            f"capture duration must be positive, got {capture_duration_us}"
        )
    if rng is None:
        rng = np.random.default_rng(constants.FALLBACK_RNG_SEED)
    num_samples = samples_for_duration(capture_duration_us, sample_period_us)
    samples = awgn_amplitude(num_samples, noise_rms, rng)

    for burst in bursts:
        first = int(np.floor(burst.start_us / sample_period_us))
        last = int(np.ceil(burst.end_us / sample_period_us))
        first = max(first, 0)
        last = min(last, num_samples)
        if last <= first:
            continue
        length = last - first
        sigma = burst.amplitude_rms / np.sqrt(2.0)
        signal = rng.normal(0.0, sigma, length) + 1j * rng.normal(0.0, sigma, length)
        if burst.ramp_fraction > 0.0 and burst.ramp_level != 1.0:
            ramp_samples = int(round(length * burst.ramp_fraction))
            if ramp_samples > 0:
                signal[:ramp_samples] *= burst.ramp_level
        samples[first:last] += signal
    return IqTrace(samples, sample_period_us, start_us)


def data_ack_bursts(
    width_mhz: float,
    payload_bytes: int,
    first_start_us: float,
    *,
    amplitude_rms: float = DEFAULT_SIGNAL_RMS,
) -> tuple[BurstSpec, BurstSpec]:
    """The canonical DATA + SIFS + ACK burst pair at a width.

    This is the time-domain signature SIFT matches (Section 4.2.1): the
    ACK is the smallest MAC frame, and the SIFS gap between the two bursts
    is width-specific.
    """
    from repro.phy.timing import timing_for_width

    timing = timing_for_width(width_mhz)
    ramp_fraction, ramp_level = ramp_for_width(width_mhz)
    data = BurstSpec(
        start_us=first_start_us,
        duration_us=timing.data_duration_us(payload_bytes),
        amplitude_rms=amplitude_rms,
        ramp_fraction=ramp_fraction,
        ramp_level=ramp_level,
        label="data",
    )
    ack = BurstSpec(
        start_us=data.end_us + timing.sifs_us,
        duration_us=timing.ack_duration_us,
        amplitude_rms=amplitude_rms,
        label="ack",
    )
    return data, ack


def beacon_cts_bursts(
    width_mhz: float,
    first_start_us: float,
    *,
    amplitude_rms: float = DEFAULT_SIGNAL_RMS,
) -> tuple[BurstSpec, BurstSpec]:
    """A BEACON + SIFS + CTS-to-self pair at a width.

    Section 4.2.1: "We require APs to send a short packet, such as a
    CTS-to-self, one SIFS interval after sending a beacon packet" so that
    SIFT can fingerprint beacons the same way it fingerprints Data-ACK.
    """
    from repro.phy.timing import timing_for_width

    timing = timing_for_width(width_mhz)
    ramp_fraction, ramp_level = ramp_for_width(width_mhz)
    beacon = BurstSpec(
        start_us=first_start_us,
        duration_us=timing.beacon_duration_us,
        amplitude_rms=amplitude_rms,
        ramp_fraction=ramp_fraction,
        ramp_level=ramp_level,
        label="beacon",
    )
    cts = BurstSpec(
        start_us=beacon.end_us + timing.sifs_us,
        duration_us=timing.cts_duration_us,
        amplitude_rms=amplitude_rms,
        label="cts",
    )
    return beacon, cts


def traffic_bursts(
    width_mhz: float,
    payload_bytes: int,
    num_packets: int,
    inter_packet_gap_us: float,
    *,
    start_us: float = 0.0,
    amplitude_rms: float = DEFAULT_SIGNAL_RMS,
    jitter_us: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[BurstSpec]:
    """A stream of Data-ACK exchanges with a fixed inter-packet gap.

    Reproduces the Table 1 / Figure 6 workload: ``num_packets`` frames of
    ``payload_bytes`` at a given injection rate.

    Args:
        inter_packet_gap_us: idle time between the end of one exchange and
            the start of the next.
        jitter_us: optional uniform jitter on each gap.
    """
    if num_packets < 0:
        raise SignalError(f"num_packets must be >= 0, got {num_packets}")
    if inter_packet_gap_us < 0:
        raise SignalError(
            f"inter-packet gap must be >= 0, got {inter_packet_gap_us}"
        )
    if rng is None:
        rng = np.random.default_rng(constants.FALLBACK_RNG_SEED)
    bursts: list[BurstSpec] = []
    t = start_us
    for _ in range(num_packets):
        data, ack = data_ack_bursts(
            width_mhz, payload_bytes, t, amplitude_rms=amplitude_rms
        )
        bursts.extend((data, ack))
        gap = inter_packet_gap_us
        if jitter_us > 0:
            gap += float(rng.uniform(0.0, jitter_us))
        t = ack.end_us + gap
    return bursts
