"""KNOWS platform emulation: main transceiver + secondary SIFT scanner.

The KNOWS hardware (Section 3) pairs a Wi-Fi transceiver behind a UHF
translator with a USRP scanner:

* the **transceiver** (:mod:`repro.radio.transceiver`) can only decode
  frames sent at exactly its tuned ``(F, W)`` — changing width or center
  requires an expensive PLL retune;
* the **scanner** (:mod:`repro.radio.scanner`) samples 1 MHz anywhere in
  the band and feeds SIFT, which detects transmissions at *any* width
  without retuning the transceiver.
"""

from repro.radio.scanner import Scanner
from repro.radio.transceiver import Transceiver

__all__ = ["Scanner", "Transceiver"]
