"""The secondary scanning radio (USRP + TVRX daughterboard).

The scanner tunes anywhere in 512-698 MHz, samples a 1 MHz slice at
1 MS/s, and hands raw IQ to SIFT.  Retuning the scanner's front end is
cheap compared with the transceiver's PLL switch — it carries no link
state — but still costs a settling delay, which the discovery
experiments account for.
"""

from __future__ import annotations

from repro import constants
from repro.errors import RadioError
from repro.phy.environment import RfEnvironment
from repro.phy.iq import IqTrace
from repro.sift.analyzer import SiftAnalyzer, SiftScanResult

#: Default scanner retune + settling latency (microseconds).
DEFAULT_RETUNE_US = 1_000.0


class Scanner:
    """A SIFT-capable scanning radio bound to an RF environment.

    Args:
        environment: the RF environment to observe.
        analyzer: SIFT pipeline (threshold/window) to apply to captures.
        retune_us: front-end settling latency charged per retune.
    """

    def __init__(
        self,
        environment: RfEnvironment,
        analyzer: SiftAnalyzer | None = None,
        retune_us: float = DEFAULT_RETUNE_US,
    ):
        self.environment = environment
        self.analyzer = analyzer or SiftAnalyzer()
        self.retune_us = retune_us
        self._center_index: int | None = None
        #: Cumulative time spent retuning (diagnostics).
        self.total_retunes = 0

    @property
    def center_index(self) -> int | None:
        """Currently tuned UHF center index (None before first tune)."""
        return self._center_index

    def tune_cost_us(self, center_index: int) -> float:
        """Time cost of retuning to *center_index* (0 if already there)."""
        if center_index == self._center_index:
            return 0.0
        return self.retune_us

    def capture(
        self, center_index: int, t0_us: float, duration_us: float
    ) -> IqTrace:
        """Capture raw IQ at *center_index* starting at *t0_us*.

        The caller is responsible for advancing its clock by the tune cost
        before *t0_us*; this method only validates and records the tune.
        """
        if not 0 <= center_index < self.environment.num_channels:
            raise RadioError(
                f"scan center {center_index} outside "
                f"0..{self.environment.num_channels - 1}"
            )
        if self._center_index != center_index:
            self.total_retunes += 1
            self._center_index = center_index
        return self.environment.capture(center_index, t0_us, duration_us)

    def sift_scan(
        self,
        center_index: int,
        t0_us: float,
        duration_us: float = constants.BEACON_DWELL_US,
    ) -> SiftScanResult:
        """Capture at *center_index* and run the full SIFT pipeline.

        The default dwell covers one beacon interval plus margin, so a
        beaconing AP overlapping the scan is guaranteed to produce at
        least one Beacon-CTS signature in the capture.
        """
        trace = self.capture(center_index, t0_us, duration_us)
        return self.analyzer.scan(trace)

    def measure_airtime(
        self,
        center_index: int,
        t0_us: float,
        duration_us: float = 1_000_000.0,
    ) -> float:
        """Airtime utilization on the UHF channel at *center_index*.

        Section 5.4.2: "Every client and AP using WhiteFi spends 1 second
        on every UHF channel to determine the airtime utilization using
        SIFT" — hence the 1 s default dwell.
        """
        return self.sift_scan(center_index, t0_us, duration_us).airtime_fraction
