"""The main transceiver (Wi-Fi card behind the UHF translator).

The transceiver's defining constraint (Section 2.2): "a radio can only
decode packets that are sent at the same channel width and same center
frequency.  An expensive switch of the PLL clock frequency is required to
decode packets at other channel widths."  This is why non-SIFT discovery
must sweep all 84 (F, W) combinations and why J-SIFT's endgame exists.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import RadioError
from repro.phy.environment import RfEnvironment, ScheduledFrame
from repro.phy.noise import DEFAULT_NOISE_RMS, decode_success_probability, snr_db
from repro.spectrum.channels import WhiteFiChannel


class Transceiver:
    """A tunable (F, W) radio bound to an RF environment.

    Args:
        environment: the RF environment the radio listens to.
        pll_switch_us: latency of retuning center frequency or width
            ("known to be a few milliseconds", Section 4.3).
        rng: random source for probabilistic frame decoding (default: a
            fresh Generator seeded with
            :data:`repro.constants.FALLBACK_RNG_SEED`, so two bare
            constructions decode identically).
        snr_50_db: SNR at which a 1000-byte frame decodes 50% of the
            time (the receiver's sensitivity anchor).
    """

    def __init__(
        self,
        environment: RfEnvironment,
        pll_switch_us: float = constants.PLL_SWITCH_US,
        rng: np.random.Generator | None = None,
        snr_50_db: float = 5.0,
    ):
        self.environment = environment
        self.pll_switch_us = pll_switch_us
        if rng is None:
            rng = np.random.default_rng(constants.FALLBACK_RNG_SEED)
        self.rng = rng
        self.snr_50_db = snr_50_db
        self._channel: WhiteFiChannel | None = None
        #: Cumulative PLL switches performed (diagnostics).
        self.total_switches = 0

    @property
    def channel(self) -> WhiteFiChannel | None:
        """Currently tuned channel (None before the first tune)."""
        return self._channel

    def tune_cost_us(self, channel: WhiteFiChannel) -> float:
        """Time cost of tuning to *channel* (0 if already tuned)."""
        if channel == self._channel:
            return 0.0
        return self.pll_switch_us

    def tune(self, channel: WhiteFiChannel) -> float:
        """Tune to *channel*; returns the time cost incurred."""
        cost = self.tune_cost_us(channel)
        if cost > 0:
            self.total_switches += 1
            self._channel = channel
        return cost

    def _decodable_frames(
        self, t0_us: float, duration_us: float
    ) -> list[ScheduledFrame]:
        """Frames in the window sent exactly at the tuned (F, W)."""
        if self._channel is None:
            raise RadioError("transceiver is not tuned")
        t1_us = t0_us + duration_us
        frames: list[ScheduledFrame] = []
        for transmitter in self.environment.transmitters:
            for frame in transmitter.frames_in(t0_us, t1_us):
                if frame.channel != self._channel:
                    continue  # width/center mismatch: undecodable
                if frame.burst.start_us >= t0_us and frame.burst.end_us <= t1_us:
                    frames.append(frame)
        return frames

    def _decode_succeeds(self, frame: ScheduledFrame) -> bool:
        """Draw a probabilistic decode based on the frame's SNR."""
        snr = snr_db(
            max(frame.burst.amplitude_rms, 1e-9), self.environment.noise_rms
        )
        # Approximate frame size from its on-air duration at this width.
        from repro.phy.timing import timing_for_width

        timing = timing_for_width(frame.channel.width_mhz)
        symbols = max(
            1.0, (frame.burst.duration_us - timing.preamble_us) / timing.symbol_us
        )
        frame_bytes = max(1, int(symbols * timing.bits_per_symbol / 8))
        p = decode_success_probability(snr, frame_bytes, snr_50_db=self.snr_50_db)
        return bool(self.rng.random() < p)

    def decoded_frames(
        self, t0_us: float, duration_us: float, label: str | None = None
    ) -> list[ScheduledFrame]:
        """Frames successfully decoded while listening for the window.

        Args:
            label: optionally restrict to bursts with this label
                (e.g. "data" for the Figure 7 packet-sniffer count,
                "beacon" for discovery).
        """
        decoded = []
        for frame in self._decodable_frames(t0_us, duration_us):
            if label is not None and frame.burst.label != label:
                continue
            if self._decode_succeeds(frame):
                decoded.append(frame)
        return decoded

    def beacon_heard(self, t0_us: float, duration_us: float) -> bool:
        """True when at least one beacon was decoded during the window.

        This is the primitive both the non-SIFT discovery baseline and
        the J-SIFT endgame use: tune to a candidate (F, W) and listen for
        one beacon interval.
        """
        return bool(self.decoded_frames(t0_us, duration_us, label="beacon"))

    def count_decoded_data(self, t0_us: float, duration_us: float) -> int:
        """Number of data frames decoded in the window (the 'sniffer')."""
        return len(self.decoded_frames(t0_us, duration_us, label="data"))
