"""SIFT: Signal Interpretation before Fourier Transform (Section 4.2.1).

SIFT analyzes raw time-domain amplitude to detect packets sent at *any*
channel width without retuning the receiver:

1. :mod:`repro.sift.detector` smooths ``sqrt(I^2+Q^2)`` with a 5-sample
   moving average and thresholds it to find burst start/end edges.
2. :mod:`repro.sift.classifier` matches (burst duration, inter-burst gap)
   patterns against the per-width ACK-duration and SIFS signatures to
   identify Data-ACK and Beacon-CTS exchanges and hence the transmitter's
   channel width.
3. :mod:`repro.sift.analyzer` builds the higher-level observables WhiteFi
   consumes: airtime utilization, AP-presence verdicts, and the OOK chirp
   side channel.
"""

from repro.sift.detector import Burst, detect_bursts, moving_average
from repro.sift.classifier import (
    DetectedExchange,
    ExchangeKind,
    classify_exchanges,
)
from repro.sift.analyzer import SiftAnalyzer, SiftScanResult

__all__ = [
    "Burst",
    "detect_bursts",
    "moving_average",
    "DetectedExchange",
    "ExchangeKind",
    "classify_exchanges",
    "SiftAnalyzer",
    "SiftScanResult",
]
