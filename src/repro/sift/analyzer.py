"""High-level SIFT observables: airtime, AP presence, chirps.

The analyzer wraps the detector and classifier into the three services
WhiteFi asks of its secondary radio:

* **airtime utilization** per scanned channel (feeds MCham's ``A_c``);
* **AP detection**: is a transmitter active here, and at what width
  (feeds discovery and the ``B_c`` estimate);
* **chirp extraction**: unpaired bursts whose lengths carry the OOK side
  channel used by the disconnection protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.phy.iq import IqTrace
from repro.sift.classifier import (
    DetectedExchange,
    ExchangeKind,
    classify_exchanges,
)
from repro.sift.detector import (
    DEFAULT_THRESHOLD,
    Burst,
    detect_bursts,
    edge_bias_us,
)


@dataclass(frozen=True)
class SiftScanResult:
    """Everything SIFT extracted from one capture.

    Attributes:
        bursts: raw detected bursts.
        exchanges: recognised Data-ACK / Beacon-CTS exchanges.
        airtime_fraction: bias-corrected busy-airtime fraction in [0, 1].
        capture_duration_us: dwell time of the analyzed capture.
    """

    bursts: tuple[Burst, ...]
    exchanges: tuple[DetectedExchange, ...]
    airtime_fraction: float
    capture_duration_us: float

    @property
    def widths_detected(self) -> frozenset[float]:
        """Channel widths of transmitters seen in this capture.

        A frozenset: consumed for membership and max(), never iterated
        into an artifact (iteration order would be hash order).
        """
        return frozenset(e.width_mhz for e in self.exchanges)

    @property
    def transmitter_detected(self) -> bool:
        """True when any recognisable exchange was present."""
        return bool(self.exchanges)

    @property
    def beacon_exchanges(self) -> tuple[DetectedExchange, ...]:
        """Only the Beacon-CTS exchanges (AP fingerprints)."""
        return tuple(
            e for e in self.exchanges if e.kind is ExchangeKind.BEACON_CTS
        )

    @property
    def data_exchanges(self) -> tuple[DetectedExchange, ...]:
        """Only the Data-ACK exchanges."""
        return tuple(e for e in self.exchanges if e.kind is ExchangeKind.DATA_ACK)

    def unpaired_bursts(self) -> tuple[Burst, ...]:
        """Bursts not consumed by any exchange (chirp candidates)."""
        used: set[int] = set()
        for e in self.exchanges:
            used.add(e.first.start_sample)
            used.add(e.second.start_sample)
        return tuple(b for b in self.bursts if b.start_sample not in used)

    def ap_count_estimate(self, width_mhz: float | None = None) -> int:
        """Estimate the number of distinct APs from beacon phases.

        Beacons repeat every TBTT, so beacon starts from one AP are
        congruent modulo the beacon interval; distinct APs appear as
        distinct phase clusters.  Requires a dwell of at least one beacon
        interval to be meaningful.
        """
        phases: list[float] = []
        interval = constants.BEACON_INTERVAL_US
        tolerance_us = 4 * edge_bias_us()
        for e in self.beacon_exchanges:
            if width_mhz is not None and e.width_mhz != width_mhz:
                continue
            phase = e.start_us % interval
            if not any(
                min(abs(phase - p), interval - abs(phase - p)) <= tolerance_us
                for p in phases
            ):
                phases.append(phase)
        return len(phases)


class SiftAnalyzer:
    """Stateless SIFT pipeline with fixed detection parameters.

    Args:
        threshold: amplitude threshold in ADC counts.
        window: moving-average window (samples).
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        window: int = constants.SIFT_WINDOW_SAMPLES,
    ):
        self.threshold = threshold
        self.window = window

    def scan(self, trace: IqTrace) -> SiftScanResult:
        """Run the full SIFT pipeline on a capture."""
        bursts = detect_bursts(trace, self.threshold, self.window)
        exchanges = classify_exchanges(bursts)
        airtime = self._airtime(bursts, trace.duration_us)
        return SiftScanResult(
            bursts=tuple(bursts),
            exchanges=tuple(exchanges),
            airtime_fraction=airtime,
            capture_duration_us=trace.duration_us,
        )

    def _airtime(self, bursts: list[Burst], duration_us: float) -> float:
        """Bias-corrected busy-airtime fraction.

        Each detected burst is stretched by roughly one smoothing window;
        subtracting the bias per burst recovers the true occupied time
        (Figure 6's measurement).
        """
        if duration_us <= 0:
            return 0.0
        bias = edge_bias_us(self.window)
        busy = sum(max(b.duration_us - bias, 0.0) for b in bursts)
        return min(busy / duration_us, 1.0)

    def airtime(self, trace: IqTrace) -> float:
        """Airtime utilization of a capture (shortcut for scan().airtime)."""
        return self.scan(trace).airtime_fraction

    def detect_transmitter(self, trace: IqTrace) -> float | None:
        """Width (MHz) of a transmitter in the capture, or None.

        When multiple widths are present, the one with the most matched
        exchanges wins (the dominant transmitter).
        """
        result = self.scan(trace)
        if not result.exchanges:
            return None
        counts: dict[float, int] = {}
        for e in result.exchanges:
            counts[e.width_mhz] = counts.get(e.width_mhz, 0) + 1
        return max(counts, key=lambda w: (counts[w], w))
