"""Width classification from burst-timing signatures.

Section 4.2.1: "by matching the delay between the data and its
acknowledgement packet, and the duration of the acknowledgement packet, we
can determine the channel width of the unicast transmission.  ...  the
acknowledgement packet is the smallest MAC layer packet (14 bytes), and
cannot be confused with a data transmission.  Also, the duration of an
acknowledgement packet at the narrowest width of 5 MHz is still much
smaller than any data packet sent at 20 MHz.  ...  the SIFS interval is
different on every width and reduces the probability of any false
positives."

Beacons are matched the same way: the AP sends a CTS-to-self one SIFS
after every beacon, and a CTS is the same size as an ACK.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import constants
from repro.phy.timing import timing_for_width
from repro.sift.detector import Burst, edge_bias_us


class ExchangeKind(enum.Enum):
    """What kind of two-burst exchange was recognised."""

    DATA_ACK = "data-ack"
    BEACON_CTS = "beacon-cts"


@dataclass(frozen=True)
class DetectedExchange:
    """A recognised (first burst, SIFS, short burst) exchange.

    Attributes:
        kind: data-ack or beacon-cts.
        width_mhz: inferred transmitter channel width.
        first: the data (or beacon) burst.
        second: the ACK (or CTS) burst.
        measured_gap_us: raw gap between the bursts.
    """

    kind: ExchangeKind
    width_mhz: float
    first: Burst
    second: Burst
    measured_gap_us: float

    @property
    def data_duration_us(self) -> float:
        """Measured duration of the data/beacon burst (bias-corrected)."""
        return max(self.first.duration_us - edge_bias_us(), 0.0)

    @property
    def start_us(self) -> float:
        """Exchange start offset within the capture."""
        return self.first.start_us


#: Default tolerance on gap matching, in microseconds.  Burst edges jitter
#: by roughly one smoothing window; +/-6 us still cleanly separates the
#: 10/20/40 us SIFS ladder.
GAP_TOLERANCE_US = 6.0

#: Default tolerance on ACK/CTS duration matching, in microseconds.  The
#: ACK ladder is 44/88/176 us, so +/-12 us is unambiguous.
ACK_TOLERANCE_US = 12.0

#: Relative tolerance on beacon-duration matching.
BEACON_TOLERANCE_FRACTION = 0.12


def _width_signature(width_mhz: float) -> tuple[float, float, float]:
    """(expected SIFS gap, expected ACK duration, expected beacon duration)
    as *measured* by the detector, i.e. corrected for smoothing edge bias:
    gaps shrink by the bias, durations grow by it."""
    timing = timing_for_width(width_mhz)
    bias = edge_bias_us()
    return (
        timing.sifs_us - bias,
        timing.ack_duration_us + bias,
        timing.beacon_duration_us + bias,
    )


def match_width(
    gap_us: float,
    short_burst_duration_us: float,
    *,
    gap_tolerance_us: float = GAP_TOLERANCE_US,
    ack_tolerance_us: float = ACK_TOLERANCE_US,
) -> float | None:
    """Infer a channel width from a (gap, short-burst duration) pair.

    Returns the width in MHz, or None when no width's signature matches.
    Both the SIFS gap *and* the ACK duration must match, which is what
    keeps the false-positive rate low.
    """
    for width in constants.CHANNEL_WIDTHS_MHZ:
        expected_gap, expected_ack, _ = _width_signature(width)
        if (
            abs(gap_us - expected_gap) <= gap_tolerance_us
            and abs(short_burst_duration_us - expected_ack) <= ack_tolerance_us
        ):
            return width
    return None


def classify_exchanges(
    bursts: list[Burst],
    *,
    gap_tolerance_us: float = GAP_TOLERANCE_US,
    ack_tolerance_us: float = ACK_TOLERANCE_US,
) -> list[DetectedExchange]:
    """Recognise Data-ACK / Beacon-CTS exchanges in a burst sequence.

    Scans consecutive burst pairs; when the (gap, second-burst duration)
    signature matches a width, the pair is consumed as one exchange.  The
    first burst's duration then distinguishes beacons from data: a beacon
    is a fixed-size management frame, so its duration at the inferred
    width is known.

    Args:
        bursts: detector output, ordered by start time.

    Returns:
        Exchanges ordered by start time.
    """
    exchanges: list[DetectedExchange] = []
    i = 0
    while i < len(bursts) - 1:
        first, second = bursts[i], bursts[i + 1]
        gap = first.gap_to(second)
        width = match_width(
            gap,
            second.duration_us,
            gap_tolerance_us=gap_tolerance_us,
            ack_tolerance_us=ack_tolerance_us,
        )
        if width is None:
            i += 1
            continue
        _, _, expected_beacon = _width_signature(width)
        beacon_tol = expected_beacon * BEACON_TOLERANCE_FRACTION
        if abs(first.duration_us - expected_beacon) <= beacon_tol:
            kind = ExchangeKind.BEACON_CTS
        else:
            kind = ExchangeKind.DATA_ACK
        exchanges.append(
            DetectedExchange(
                kind=kind,
                width_mhz=width,
                first=first,
                second=second,
                measured_gap_us=gap,
            )
        )
        i += 2
    return exchanges


def detected_widths(exchanges: list[DetectedExchange]) -> frozenset[float]:
    """The set of transmitter widths present in a capture.

    A frozenset: consumed for membership and max(), never iterated
    into an artifact (iteration order would be hash order).
    """
    return frozenset(e.width_mhz for e in exchanges)


def count_matching_packets(
    exchanges: list[DetectedExchange],
    width_mhz: float,
    payload_bytes: int,
    *,
    length_tolerance_fraction: float = 0.05,
) -> int:
    """Count detected data packets matching an expected transmission.

    This reproduces the Table 1 accounting: a transmitted packet counts as
    detected when SIFT found a Data-ACK exchange at the right width whose
    measured data-burst length matches the transmitted packet's on-air
    duration.  (The 5 MHz amplitude ramp can delay the detected start and
    fail this length check even though the width was classified correctly
    — exactly the failure mode the paper describes.)
    """
    expected = timing_for_width(width_mhz).data_duration_us(payload_bytes)
    tolerance = expected * length_tolerance_fraction
    return sum(
        1
        for e in exchanges
        if e.kind is ExchangeKind.DATA_ACK
        and e.width_mhz == width_mhz
        and abs(e.data_duration_us - expected) <= tolerance
    )
