"""SIFT burst detection: moving-average threshold crossing.

Section 4.2.1: "To accurately detect the beginning and end of a packet
transmission, we compute a moving average over a sliding window of the
signal amplitude values.  We do not use instantaneous values, since the
signal amplitude might fall to very low values even in the middle of the
packet transmission."  The window is 5 samples — strictly below the
minimum SIFS in the system (10 samples at 20 MHz) so that the Data-to-ACK
gap stays visible at every width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import SignalError
from repro.phy.iq import IqTrace

#: Default detection threshold in ADC counts.  "In our current
#: implementation this threshold is fixed at a low value" — five times the
#: default noise RMS keeps the false-positive rate on pure noise
#: negligible while detecting signals tens of dB above the floor.
DEFAULT_THRESHOLD = 100.0


@dataclass(frozen=True)
class Burst:
    """One detected transmission burst.

    Attributes:
        start_sample: index of the first above-threshold smoothed sample.
        end_sample: one past the last above-threshold smoothed sample.
        sample_period_us: for converting to durations.
        peak_amplitude: maximum smoothed amplitude inside the burst.
    """

    start_sample: int
    end_sample: int
    sample_period_us: float = constants.SAMPLE_PERIOD_US
    peak_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.end_sample <= self.start_sample:
            raise SignalError(
                f"burst end {self.end_sample} must exceed start {self.start_sample}"
            )

    @property
    def num_samples(self) -> int:
        """Burst length in samples."""
        return self.end_sample - self.start_sample

    @property
    def duration_us(self) -> float:
        """Burst duration in microseconds."""
        return self.num_samples * self.sample_period_us

    @property
    def start_us(self) -> float:
        """Burst start offset within the capture, in microseconds."""
        return self.start_sample * self.sample_period_us

    @property
    def end_us(self) -> float:
        """Burst end offset within the capture, in microseconds."""
        return self.end_sample * self.sample_period_us

    def gap_to(self, later: "Burst") -> float:
        """Idle time (us) between the end of this burst and the start of *later*."""
        return later.start_us - self.end_us


def moving_average(
    amplitude: np.ndarray, window: int = constants.SIFT_WINDOW_SAMPLES
) -> np.ndarray:
    """Centered moving average of an amplitude array.

    Edges are averaged over the available (shorter) window so the output
    has the same length as the input.

    Raises:
        SignalError: for a non-positive window.
    """
    if window <= 0:
        raise SignalError(f"window must be positive, got {window}")
    amplitude = np.asarray(amplitude, dtype=np.float64)
    if amplitude.size == 0:
        return amplitude
    if window == 1:
        return amplitude.copy()
    kernel = np.ones(window) / window
    smoothed = np.convolve(amplitude, kernel, mode="same")
    # Correct the shrunken effective window at the edges.
    half = window // 2
    n = amplitude.size
    for i in range(min(half, n)):
        smoothed[i] = amplitude[: i + half + 1].mean()
    for i in range(max(n - half, 0), n):
        smoothed[i] = amplitude[i - half :].mean()
    return smoothed


def edge_bias_us(
    window: int = constants.SIFT_WINDOW_SAMPLES,
    sample_period_us: float = constants.SAMPLE_PERIOD_US,
) -> float:
    """Systematic burst-edge extension introduced by the moving average.

    A centered window of ``w`` samples crosses the threshold roughly
    ``(w - 1) / 2`` samples before the true start and after the true end,
    so measured durations are inflated — and measured gaps deflated — by
    about ``(w - 1)`` sample periods.  The classifier subtracts this bias
    when matching against nominal frame timings.
    """
    return (window - 1) * sample_period_us


def detect_bursts(
    trace: IqTrace,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = constants.SIFT_WINDOW_SAMPLES,
    *,
    min_burst_samples: int = 3,
) -> list[Burst]:
    """Detect transmission bursts in an IQ trace.

    "The start of a packet transmission is detected when this average
    increases beyond a certain threshold.  Similarly, when the average
    falls below the threshold, the algorithm marks it as an end of a
    packet."

    Args:
        trace: the capture to analyze.
        threshold: fixed amplitude threshold (ADC counts).
        window: moving-average window in samples (must stay below the
            minimum SIFS in samples, 10).
        min_burst_samples: discard blips shorter than this many samples.

    Returns:
        Bursts ordered by start time, non-overlapping.
    """
    if threshold <= 0:
        raise SignalError(f"threshold must be positive, got {threshold}")
    smoothed = moving_average(trace.amplitude, window)
    above = smoothed > threshold
    if not above.any():
        return []
    # Find rising/falling edges of the boolean mask.
    padded = np.concatenate(([False], above, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    bursts = []
    for start, end in zip(starts, ends):
        if end - start < min_burst_samples:
            continue
        bursts.append(
            Burst(
                start_sample=int(start),
                end_sample=int(end),
                sample_period_us=trace.sample_period_us,
                peak_amplitude=float(smoothed[start:end].max()),
            )
        )
    return bursts


def busy_fraction(
    trace: IqTrace,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = constants.SIFT_WINDOW_SAMPLES,
) -> float:
    """Fraction of the capture spent above the detection threshold.

    This is the raw airtime-utilization measurement of Figure 6 (before
    the edge-bias correction applied by the analyzer).
    """
    bursts = detect_bursts(trace, threshold, window)
    busy = sum(b.num_samples for b in bursts)
    return busy / len(trace) if len(trace) else 0.0


def estimate_noise_floor(trace: IqTrace, percentile: float = 25.0) -> float:
    """Estimate the noise-floor amplitude from a capture.

    The paper fixes the threshold but notes: "We are actively working on
    techniques to dynamically adjust the threshold based on background
    noise levels."  This helper implements that extension: the lower
    percentiles of the amplitude distribution are dominated by noise even
    under moderate traffic.
    """
    if len(trace) == 0:
        raise SignalError("cannot estimate noise floor of an empty trace")
    return float(np.percentile(trace.amplitude, percentile))


def adaptive_threshold(trace: IqTrace, factor: float = 5.0) -> float:
    """A noise-floor-tracking threshold (paper's future-work extension)."""
    if factor <= 0:
        raise SignalError(f"factor must be positive, got {factor}")
    return max(estimate_noise_floor(trace) * factor, 1e-9)
