"""Synthesized SIFT accuracy workloads (Table 1 / Figure 6 methodology).

Section 5.1: "We started an iperf session from one KNOWS device ... we
repeated this experiment for 5, 10 and 20 MHz channel widths, and for
each width, we varied the traffic intensity.  ...  In every run, we
sent 110 packets of size 1000 bytes each."

Packets ride a slow log-normal fade (shadowing as devices/testers
move), which is what occasionally drops the 5 MHz ramp below SIFT's
threshold and produces the paper's slightly-lower 5 MHz detection
rates.

This used to live under ``benchmarks/``; it moved into the library so
the ``"sift"`` run kind (``repro.experiments``) can sweep detection
accuracy declaratively — ``benchmarks/_workloads.py`` re-exports it.
"""

from __future__ import annotations

import numpy as np

from repro.phy.iq import IqTrace
from repro.phy.timing import timing_for_width
from repro.phy.waveform import BurstSpec, ramp_for_width, synthesize_bursts
from repro.sift.analyzer import SiftAnalyzer, SiftScanResult
from repro.sift.classifier import count_matching_packets

__all__ = [
    "FADING_SIGMA_DB",
    "MEDIAN_AMPLITUDE",
    "PACKETS_PER_RUN",
    "PAYLOAD_BYTES",
    "iperf_bursts",
    "run_sift_on_iperf",
    "sift_workload_metrics",
    "synthesize_iperf_capture",
]

#: Paper's per-run packet count / payload.
PACKETS_PER_RUN = 110
PAYLOAD_BYTES = 1000

#: Log-normal shadowing sigma (dB) on per-packet received amplitude.
#: Calibrated for a bench-static link: deep fades that would fragment a
#: full-amplitude burst are rare (10/20 MHz detection ~1.00), while the
#: 5 MHz reduced-amplitude leading edge still occasionally dips below
#: SIFT's threshold (5 MHz detection ~0.97-0.99, as in Table 1).
FADING_SIGMA_DB = 2.5

#: Median received amplitude (ADC counts).
MEDIAN_AMPLITUDE = 900.0


def iperf_bursts(
    width_mhz: float,
    rate_mbps: float,
    rng: np.random.Generator,
    num_packets: int = PACKETS_PER_RUN,
) -> tuple[list[BurstSpec], float]:
    """One iperf run's burst schedule at an injection rate.

    Returns:
        (bursts, capture_duration_us).
    """
    timing = timing_for_width(width_mhz)
    period_us = PAYLOAD_BYTES * 8.0 / rate_mbps  # injection period
    exchange_us = timing.exchange_duration_us(PAYLOAD_BYTES)
    ramp_fraction, ramp_level = ramp_for_width(width_mhz)
    bursts: list[BurstSpec] = []
    t = 500.0
    for _ in range(num_packets):
        fade_db = rng.normal(0.0, FADING_SIGMA_DB)
        amplitude = MEDIAN_AMPLITUDE * 10.0 ** (fade_db / 20.0)
        data = BurstSpec(
            start_us=t,
            duration_us=timing.data_duration_us(PAYLOAD_BYTES),
            amplitude_rms=amplitude,
            ramp_fraction=ramp_fraction,
            ramp_level=ramp_level,
            label="data",
        )
        ack = BurstSpec(
            start_us=data.end_us + timing.sifs_us,
            duration_us=timing.ack_duration_us,
            amplitude_rms=amplitude,
            label="ack",
        )
        bursts.extend((data, ack))
        t += max(period_us, exchange_us + 200.0)
    return bursts, t + 500.0


def synthesize_iperf_capture(
    width_mhz: float,
    rate_mbps: float,
    seed: int,
    num_packets: int = PACKETS_PER_RUN,
) -> tuple[IqTrace, list[BurstSpec], float]:
    """Synthesize the scanner capture of one iperf run.

    Returns:
        (trace, ground-truth bursts, capture_duration_us) — everything
        a detection/classification accuracy probe needs.
    """
    rng = np.random.default_rng(seed)
    bursts, duration_us = iperf_bursts(width_mhz, rate_mbps, rng, num_packets)
    trace = synthesize_bursts(bursts, duration_us, rng=rng)
    return trace, bursts, duration_us


def sift_workload_metrics(
    scan: SiftScanResult,
    bursts: list[BurstSpec],
    duration_us: float,
    width_mhz: float,
    num_packets: int,
) -> dict[str, float]:
    """Detection/airtime metrics of one SIFT scan vs its ground truth."""
    detected = count_matching_packets(
        list(scan.exchanges), width_mhz, PAYLOAD_BYTES
    )
    true_busy_us = sum(b.duration_us for b in bursts)
    return {
        "sent": num_packets,
        "detected": detected,
        "detection_rate": detected / num_packets,
        "airtime_fraction": scan.airtime_fraction,
        "busy_us_measured": scan.airtime_fraction * duration_us,
        "busy_us_true": true_busy_us,
        "capture_us": duration_us,
    }


def run_sift_on_iperf(
    width_mhz: float,
    rate_mbps: float,
    seed: int,
    num_packets: int = PACKETS_PER_RUN,
) -> dict[str, float]:
    """Run SIFT over one iperf run; returns detection/airtime metrics."""
    trace, bursts, duration_us = synthesize_iperf_capture(
        width_mhz, rate_mbps, seed, num_packets
    )
    result = SiftAnalyzer().scan(trace)
    return sift_workload_metrics(
        result, bursts, duration_us, width_mhz, num_packets
    )
