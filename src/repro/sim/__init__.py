"""Discrete-event network simulator — the paper's QualNet substitute.

Section 5.4 lists the modifications the authors made to QualNet; this
package implements each of them natively:

* variable channel widths via width-scaled OFDM symbol and MAC timings
  (:mod:`repro.sim.node`, :mod:`repro.phy.timing`);
* packets sent at a different channel width are dropped
  (:mod:`repro.sim.node`);
* carrier sensing across all spanned UHF channels: "a node spanning
  multiple UHF channels will transmit a packet only if no carrier is
  sensed on any of those channels" (:mod:`repro.sim.medium`);
* fragmented spectrum from per-node spectrum-map configuration
  (scenario wiring in :mod:`repro.experiments.scenario`).

All nodes share one collision domain, matching the paper's placement of
every background pair within transmission range of the AP under test.
"""

from repro.sim.engine import Engine, Event
from repro.sim.medium import Medium, Transmission
from repro.sim.node import SimNode
from repro.sim.rng import spawn_rng, stream_seed
from repro.sim.traffic import CbrSource, MarkovChurn, SaturatingSource
from repro.sim.sensors import GroundTruthSensor
from repro.sim.world import NodeRoster

__all__ = [
    "Engine",
    "Event",
    "Medium",
    "Transmission",
    "SimNode",
    "NodeRoster",
    "CbrSource",
    "SaturatingSource",
    "MarkovChurn",
    "GroundTruthSensor",
    "spawn_rng",
    "stream_seed",
]
