"""Discrete-event simulation core.

A minimal, fast event loop: a binary heap of (time, sequence, callback)
with cancellable events.  Times are microseconds on a float clock — the
natural unit of 802.11 MAC timing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time_us", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time_us: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ):
        self.time_us = time_us
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)


class Engine:
    """The event loop.

    Events scheduled for identical times fire in scheduling order
    (FIFO tie-break via a sequence counter), which keeps simulations
    deterministic for a fixed seed.
    """

    def __init__(self) -> None:
        self.now_us: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_fired = 0

    def schedule(
        self, delay_us: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* to fire ``delay_us`` from now.

        Raises:
            SimulationError: for a negative delay.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule in the past: {delay_us}")
        return self.schedule_at(self.now_us + delay_us, callback, *args)

    def schedule_at(
        self, time_us: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule *callback(*args)* at absolute time ``time_us``."""
        if time_us < self.now_us:
            raise SimulationError(
                f"cannot schedule at {time_us} before now ({self.now_us})"
            )
        event = Event(time_us, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def run_until(self, end_us: float) -> None:
        """Fire events in order until the clock reaches ``end_us``.

        The clock is left exactly at ``end_us``; events scheduled at
        ``end_us`` do fire.
        """
        while self._queue and self._queue[0].time_us <= end_us:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now_us = event.time_us
            self._events_fired += 1
            event.callback(*event.args)
        self.now_us = max(self.now_us, end_us)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by *max_events*)."""
        fired = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now_us = event.time_us
            self._events_fired += 1
            event.callback(*event.args)
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a scheduling loop"
                )

    @property
    def events_fired(self) -> int:
        """Total events executed (diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return len(self._queue)
