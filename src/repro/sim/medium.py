"""The shared wireless medium with per-UHF-channel occupancy.

Implements the paper's QualNet carrier-sense modification: a node
spanning multiple UHF channels senses busy if *any* spanned channel
carries energy, and two transmissions collide when they overlap in both
time and spanned channels.  All nodes share one collision domain.

The medium also keeps a per-channel busy-time integral (the union of
transmission intervals per channel), which is what an ideal SIFT-based
airtime sensor would measure, and a registry of operating APs per
channel for the ``B_c`` estimate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import SimulationError
from repro.mac.frames import Frame
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import SimNode


@dataclass
class Transmission:
    """An in-flight reservation of a set of UHF channels.

    Attributes:
        node_id: the transmitting node.
        bss_id: the transmitter's BSS (for sensor self-exclusion).
        span: UHF channel indices occupied.
        width_mhz: the transmitter's channel width (determines the power
            spectral density other nodes can sense).
        start_us / end_us: reservation interval (data + SIFS + ACK for
            unicast exchanges).
        data_end_us: end of the data portion (collision window).
        frame: the MAC frame being carried.
        corrupted: set True when an interfering transmission overlapped.
        on_complete: optional callback fired when the reservation ends,
            receiving the transmission (used by the sender's MAC to learn
            the outcome).
    """

    node_id: str
    bss_id: str
    span: tuple[int, ...]
    width_mhz: float
    start_us: float
    end_us: float
    data_end_us: float
    frame: Frame
    corrupted: bool = False
    on_complete: Callable[["Transmission"], None] | None = None

    def overlaps_span(self, span: Iterable[int]) -> bool:
        """True when *span* shares any UHF channel with this transmission."""
        mine = set(self.span)
        return any(c in mine for c in span)


#: Default PSD ratio governing cross-width carrier sense and capture.
#: A transmission of width ``W_tx`` concentrates its (fixed) transmit
#: power over ``W_tx`` MHz, so its power spectral density seen by a node
#: of width ``W_rx`` is ``W_rx / W_tx`` relative to a same-width signal.
#: With a ratio of 4, a 5 MHz node cannot sense a 20 MHz transmission
#: (PSD 6 dB down, below the energy-detect threshold), and a 5 MHz
#: frame survives (captures over) an overlapping 20 MHz transmission.
DEFAULT_PSD_RATIO = 4.0


class Medium:
    """Single-collision-domain medium with per-channel accounting.

    Carrier sense is PSD-aware by default (``sensing="psd"``): a node
    senses a transmission only when the transmission's spectral density
    is within ``psd_ratio`` of the node's own bandwidth reference.  This
    reproduces the physical wide-channel fragility the paper's QualNet
    noise-level adjustments capture: narrowband background pairs do not
    defer to a wideband WhiteFi transmission and stomp on it instead.
    ``sensing="perfect"`` disables the asymmetry (any energy on a spanned
    channel defers everyone) — an ablation configuration.

    Args:
        engine: the simulation engine (clock and busy-edge callbacks).
        num_channels: UHF index space size.
        sensing: "psd" (default) or "perfect".
        psd_ratio: sensing/capture bandwidth ratio threshold.
    """

    def __init__(
        self,
        engine: Engine,
        num_channels: int,
        sensing: str = "psd",
        psd_ratio: float = DEFAULT_PSD_RATIO,
    ):
        if sensing not in ("psd", "perfect"):
            raise SimulationError(
                f"unknown sensing model {sensing!r}; expected 'psd' or 'perfect'"
            )
        self.engine = engine
        self.num_channels = num_channels
        self.sensing = sensing
        self.psd_ratio = psd_ratio
        self.active: list[Transmission] = []
        # Per-channel active-transmission counts and busy-time integrals.
        self._active_count = [0] * num_channels
        self._busy_since = [0.0] * num_channels
        self._busy_integral = [0.0] * num_channels
        # Nodes wanting busy/idle edge notifications:
        # node_id -> (span, observer width, callback).
        self._listeners: dict[
            str, tuple[tuple[int, ...], float, Callable[[bool], None]]
        ] = {}
        # AP registry: bss_id -> span, for B_c ground truth.
        self._ap_spans: dict[str, tuple[int, ...]] = {}
        # Per-(bss_id, channel) reservation-time integral for sensor
        # self-exclusion.
        self._own_integral: dict[tuple[str, int], float] = {}
        # Rolling log of successfully completed transmissions, for
        # secondary-radio monitoring (chirp detection on the backup
        # channel).  Entries are (end_us, span, frame).
        self.frame_log: deque[tuple[float, tuple[int, ...], Frame]] = deque(
            maxlen=10_000
        )

    # -- carrier sense --------------------------------------------------------

    def sensable(self, tx_width_mhz: float, observer_width_mhz: float) -> bool:
        """Can a node of *observer_width_mhz* sense a *tx_width_mhz* signal?

        Under PSD sensing, a much wider transmission spreads its power too
        thin for a narrow node's energy detector.
        """
        if self.sensing == "perfect":
            return True
        return tx_width_mhz < observer_width_mhz * self.psd_ratio

    def is_busy(
        self, span: Iterable[int], observer_width_mhz: float | None = None
    ) -> bool:
        """True when *span* carries energy sensable by the observer.

        With ``observer_width_mhz=None`` any energy counts (the scanner's
        view — SIFT's threshold sits far below carrier-sense levels).
        """
        if observer_width_mhz is None or self.sensing == "perfect":
            return any(self._active_count[c] > 0 for c in span)
        span_set = set(span)
        return any(
            tx.overlaps_span(span_set)
            and self.sensable(tx.width_mhz, observer_width_mhz)
            for tx in self.active
        )

    def busy_until(
        self, span: Iterable[int], observer_width_mhz: float | None = None
    ) -> float:
        """Latest end time of sensable transmissions intersecting *span*.

        Returns the current time when the span is (sensably) idle.
        """
        span_set = set(span)
        end = self.engine.now_us
        for tx in self.active:
            if tx.overlaps_span(span_set) and (
                observer_width_mhz is None
                or self.sensable(tx.width_mhz, observer_width_mhz)
            ):
                end = max(end, tx.end_us)
        return end

    def latest_start_on(
        self, span: Iterable[int], observer_width_mhz: float | None = None
    ) -> float:
        """Most recent start among sensable transmissions on *span*.

        Returns ``-inf`` when the span is idle.  Used for the CSMA
        sensing-vulnerability window: energy that appeared within the
        last slot time is not yet sensable, so a node whose backoff just
        expired transmits into it (a collision), exactly as in slotted
        DCF analysis.
        """
        span_set = set(span)
        latest = float("-inf")
        for tx in self.active:
            if tx.overlaps_span(span_set) and (
                observer_width_mhz is None
                or self.sensable(tx.width_mhz, observer_width_mhz)
            ):
                latest = max(latest, tx.start_us)
        return latest

    # -- listeners -------------------------------------------------------------

    def subscribe(
        self,
        node_id: str,
        span: tuple[int, ...],
        observer_width_mhz: float,
        callback: Callable[[bool], None],
    ) -> None:
        """Register for busy/idle edges on *span*.

        The callback receives True on a busy edge (the span just went
        from idle to carrying sensable energy) and False on an idle edge.
        Edges from transmissions the observer cannot sense (PSD below its
        detector) are filtered out.
        """
        self._listeners[node_id] = (span, observer_width_mhz, callback)

    def unsubscribe(self, node_id: str) -> None:
        """Remove a listener registration (no-op when absent)."""
        self._listeners.pop(node_id, None)

    def _notify(
        self, changed_span: tuple[int, ...], busy: bool, tx_width_mhz: float
    ) -> None:
        changed = set(changed_span)
        for span, width, callback in list(self._listeners.values()):
            if not any(c in changed for c in span):
                continue
            if not self.sensable(tx_width_mhz, width):
                continue
            # An edge on a subset of a listener's span only matters if
            # the listener's overall (sensable) state matches the edge.
            if busy or not self.is_busy(span, width):
                callback(busy)

    # -- transmission lifecycle --------------------------------------------------

    def _mark_collision(self, a: Transmission, b: Transmission) -> None:
        """Corrupt overlapping transmissions, honouring PSD capture.

        A much narrower transmission concentrates its power and survives
        an overlap with a much wider one (capture); otherwise both are
        lost.
        """
        if self.sensing == "psd":
            if a.width_mhz * self.psd_ratio <= b.width_mhz:
                b.corrupted = True  # a captures
                return
            if b.width_mhz * self.psd_ratio <= a.width_mhz:
                a.corrupted = True  # b captures
                return
        a.corrupted = True
        b.corrupted = True

    def begin(
        self,
        node_id: str,
        bss_id: str,
        span: tuple[int, ...],
        width_mhz: float,
        duration_us: float,
        data_duration_us: float,
        frame: Frame,
    ) -> Transmission:
        """Start a reservation of *span* for *duration_us*.

        Already-active transmissions overlapping the span collide with
        the new one (subject to PSD capture).  An end event is scheduled
        automatically.

        Args:
            width_mhz: transmitter channel width.
            duration_us: full reservation (data + SIFS + ACK for unicast).
            data_duration_us: the collision-vulnerable data portion.
        """
        if not span:
            raise SimulationError("cannot transmit on an empty span")
        for c in span:
            if not 0 <= c < self.num_channels:
                raise SimulationError(
                    f"span channel {c} outside 0..{self.num_channels - 1}"
                )
        now = self.engine.now_us
        tx = Transmission(
            node_id=node_id,
            bss_id=bss_id,
            span=tuple(span),
            width_mhz=width_mhz,
            start_us=now,
            end_us=now + duration_us,
            data_end_us=now + data_duration_us,
            frame=frame,
        )
        # Collision check against concurrent transmissions.
        for other in self.active:
            if other.overlaps_span(tx.span):
                self._mark_collision(tx, other)
        newly_busy = [c for c in tx.span if self._active_count[c] == 0]
        for c in tx.span:
            if self._active_count[c] == 0:
                self._busy_since[c] = now
            self._active_count[c] += 1
        self.active.append(tx)
        if newly_busy:
            self._notify(tuple(newly_busy), True, tx.width_mhz)
        self.engine.schedule(duration_us, self._end, tx)
        return tx

    def _end(self, tx: Transmission) -> None:
        now = self.engine.now_us
        self.active.remove(tx)
        newly_idle = []
        for c in tx.span:
            self._active_count[c] -= 1
            if self._active_count[c] == 0:
                self._busy_integral[c] += now - self._busy_since[c]
                newly_idle.append(c)
            elif self._active_count[c] < 0:
                raise SimulationError(f"negative active count on channel {c}")
        duration = tx.end_us - tx.start_us
        for c in tx.span:
            key = (tx.bss_id, c)
            self._own_integral[key] = self._own_integral.get(key, 0.0) + duration
        if not tx.corrupted:
            self.frame_log.append((now, tx.span, tx.frame))
        if newly_idle:
            self._notify(tuple(newly_idle), False, tx.width_mhz)
        if tx.on_complete is not None:
            tx.on_complete(tx)

    # -- accounting ----------------------------------------------------------------

    def busy_integral_us(self, uhf_index: int) -> float:
        """Cumulative busy time on a channel, including any open interval."""
        total = self._busy_integral[uhf_index]
        if self._active_count[uhf_index] > 0:
            total += self.engine.now_us - self._busy_since[uhf_index]
        return total

    def busy_integral_excluding(
        self, uhf_index: int, bss_id: str
    ) -> float:
        """Busy integral approximation excluding one BSS's own traffic.

        Exact per-BSS de-overlapping is not tracked; the approximation
        subtracts the excluded BSS's reservation time on the channel,
        which is exact whenever that BSS's transmissions do not overlap
        others on the same channel (CSMA makes same-channel overlap rare).
        """
        return self.busy_integral_us(uhf_index) - self._own_integral.get(
            (bss_id, uhf_index), 0.0
        )

    # -- AP registry ---------------------------------------------------------------

    def register_ap(self, bss_id: str, span: tuple[int, ...]) -> None:
        """Declare that BSS *bss_id* currently operates on *span*."""
        self._ap_spans[bss_id] = tuple(span)

    def unregister_ap(self, bss_id: str) -> None:
        """Remove a BSS from the registry."""
        self._ap_spans.pop(bss_id, None)

    def ap_count_on(self, uhf_index: int, excluding_bss: str = "") -> int:
        """Number of registered APs (other than *excluding_bss*) on a channel."""
        return sum(
            1
            for bss, span in self._ap_spans.items()
            if bss != excluding_bss and uhf_index in span
        )

    def frames_on(
        self, span: Iterable[int], since_us: float
    ) -> list[tuple[float, Frame]]:
        """Successfully completed frames on *span* since *since_us*.

        This is the secondary radio's monitoring view: the AP's scanner,
        parked periodically on the backup channel, reports the chirps it
        heard there (Section 4.3).
        """
        span_set = set(span)
        return [
            (t, frame)
            for t, tx_span, frame in self.frame_log
            if t >= since_us and any(c in span_set for c in tx_span)
        ]
