"""Simulated nodes: the width-aware CSMA/CA MAC state machine.

Each node owns a tuned ``(F, W)`` channel.  The MAC implements DCF with
width-scaled timing and the paper's two QualNet modifications:

* **multi-channel carrier sense** — the node defers while any UHF channel
  in its span is busy;
* **width-mismatch drops** — a frame is only received when the receiver
  is tuned to exactly the sender's (F, W); otherwise the exchange fails
  (no ACK) and the sender backs off and retries.

Unicast exchanges reserve the medium for DATA + SIFS + ACK as a unit;
beacons reserve BEACON + SIFS + CTS-to-self, preserving the time-domain
signature SIFT fingerprints.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro import constants
from repro.errors import SimulationError
from repro.mac.csma import BackoffState, dcf_for_width
from repro.mac.frames import Frame, FrameType
from repro.phy.timing import timing_for_width
from repro.sim.engine import Engine, Event
from repro.sim.medium import Medium, Transmission
from repro.spectrum.channels import WhiteFiChannel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.traffic import TrafficSource

#: Maximum MAC queue depth; CBR arrivals beyond this are dropped.
DEFAULT_QUEUE_LIMIT = 100


class SimNode:
    """One station (AP or client) in the simulator.

    Args:
        engine: simulation engine.
        medium: shared medium.
        node_id: unique identifier.
        bss_id: BSS the node belongs to (sensors exclude own-BSS traffic).
        channel: initially tuned channel (None = radio off).
        rng: per-node random source (backoff draws).
        queue_limit: MAC queue cap.
    """

    def __init__(
        self,
        engine: Engine,
        medium: Medium,
        node_id: str,
        bss_id: str,
        channel: WhiteFiChannel | None,
        rng: random.Random | None = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        self.engine = engine
        self.medium = medium
        self.node_id = node_id
        self.bss_id = bss_id
        self.rng = rng or random.Random(hash(node_id) & 0xFFFFFFFF)
        self.queue_limit = queue_limit

        self.tuned: WhiteFiChannel | None = None
        self._backoff: BackoffState | None = None
        self.queue: deque[Frame] = deque()
        self.state = "idle"  # idle | contending | transmitting | retuning
        self._countdown_timer: Event | None = None
        self._countdown_started_us = 0.0
        self._pending_retune: tuple[WhiteFiChannel | None, float] | None = None

        # Counters.
        self.delivered_bytes = 0  # payload bytes received as destination
        self.sent_frames = 0
        self.failed_attempts = 0
        self.dropped_frames = 0
        self.queue_drops = 0
        self.received_frames = 0

        # Hooks.
        self.source: "TrafficSource | None" = None
        self.on_frame_received: Callable[["SimNode", Frame], None] | None = None
        self.nodes: dict[str, "SimNode"] = {}  # registry, set by the runner

        if channel is not None:
            self._apply_tune(channel)

    # -- tuning ------------------------------------------------------------------

    def _apply_tune(self, channel: WhiteFiChannel | None) -> None:
        self.medium.unsubscribe(self.node_id)
        self.tuned = channel
        if channel is None:
            self._backoff = None
            return
        self._backoff = BackoffState(
            dcf_for_width(channel.width_mhz), self.rng
        )
        self.medium.subscribe(
            self.node_id,
            channel.spanned_indices,
            channel.width_mhz,
            self._on_medium_edge,
        )

    def retune(
        self, channel: WhiteFiChannel | None, latency_us: float = constants.PLL_SWITCH_US
    ) -> None:
        """Switch to *channel* after a PLL latency.

        If a transmission is in flight, the switch is applied when it
        completes.  Queued frames survive the switch.
        """
        if self.state == "transmitting":
            self._pending_retune = (channel, latency_us)
            return
        self._cancel_countdown()
        self.medium.unsubscribe(self.node_id)
        self.state = "retuning"
        self.tuned = None
        self.engine.schedule(latency_us, self._finish_retune, channel)

    def _finish_retune(self, channel: WhiteFiChannel | None) -> None:
        self.state = "idle"
        self._apply_tune(channel)
        if channel is not None and self.queue:
            self._start_access()

    # -- queueing ----------------------------------------------------------------

    def enqueue(self, frame: Frame) -> bool:
        """Queue a frame for transmission.

        Returns False (and counts a queue drop) when the queue is full.
        """
        if len(self.queue) >= self.queue_limit:
            self.queue_drops += 1
            return False
        self.queue.append(frame)
        if self.state == "idle" and self.tuned is not None:
            self._start_access()
        return True

    # -- DCF access procedure -------------------------------------------------------

    def _start_access(self) -> None:
        if self.tuned is None or self._backoff is None:
            raise SimulationError(f"{self.node_id}: access attempt while untuned")
        self.state = "contending"
        self._try_countdown()

    def _try_countdown(self) -> None:
        """(Re)start the DIFS + residual-backoff countdown if idle."""
        assert self.tuned is not None and self._backoff is not None
        if self._countdown_timer is not None:
            return  # a countdown is already pending
        span = self.tuned.spanned_indices
        if self.medium.is_busy(span, self.tuned.width_mhz):
            return  # the idle edge will call us back
        params = self._backoff.params
        wait = params.difs_us + self._backoff.slots_remaining * params.slot_us
        self._countdown_started_us = self.engine.now_us
        self._countdown_timer = self.engine.schedule(wait, self._countdown_done)

    def _cancel_countdown(self) -> None:
        if self._countdown_timer is not None:
            self._countdown_timer.cancel()
            self._countdown_timer = None

    def _on_medium_edge(self, busy: bool) -> None:
        if self.state != "contending" or self._backoff is None:
            return
        if busy:
            timer = self._countdown_timer
            if timer is None:
                return
            # Sensing vulnerability: energy that appeared less than one
            # slot before our countdown expires cannot be sensed in time,
            # so the transmission goes ahead — a DCF collision.  Only
            # countdowns expiring beyond the vulnerability window freeze.
            if timer.time_us <= self.engine.now_us + self._backoff.params.slot_us:
                return
            timer.cancel()
            self._countdown_timer = None
            params = self._backoff.params
            elapsed = self.engine.now_us - self._countdown_started_us
            consumed = int(max(0.0, elapsed - params.difs_us) // params.slot_us)
            self._backoff.slots_remaining = max(
                0, self._backoff.slots_remaining - consumed
            )
        else:
            if self._countdown_timer is None:
                self._try_countdown()

    # -- transmission --------------------------------------------------------------

    def _reservation_durations(self, frame: Frame) -> tuple[float, float]:
        """(total reservation, data portion) durations for *frame*."""
        assert self.tuned is not None
        timing = timing_for_width(self.tuned.width_mhz)
        data_duration = timing.frame_duration_us(frame.size_bytes)
        if frame.expects_ack:
            return data_duration + timing.sifs_us + timing.ack_duration_us, data_duration
        if frame.frame_type is FrameType.BEACON:
            # Beacon + SIFS + CTS-to-self (the SIFT fingerprint).
            return (
                data_duration + timing.sifs_us + timing.cts_duration_us,
                data_duration,
            )
        return data_duration, data_duration

    def _countdown_done(self) -> None:
        self._countdown_timer = None
        if not self.queue:
            self.state = "idle"
            return
        assert self.tuned is not None and self._backoff is not None
        span = self.tuned.spanned_indices
        if self.medium.is_busy(span, self.tuned.width_mhz):
            # Busy carrier at countdown expiry: if the energy appeared
            # within our sensing-vulnerability window (one slot), we
            # cannot have noticed and we transmit into it; otherwise we
            # genuinely sensed it earlier and this event should have been
            # cancelled — defer again defensively.
            appeared = self.medium.latest_start_on(span, self.tuned.width_mhz)
            if self.engine.now_us - appeared > self._backoff.params.slot_us:
                self._try_countdown()
                return
        frame = self.queue[0]
        total, data_portion = self._reservation_durations(frame)
        tx = self.medium.begin(
            self.node_id,
            self.bss_id,
            self.tuned.spanned_indices,
            self.tuned.width_mhz,
            total,
            data_portion,
            frame,
        )
        tx.on_complete = self._tx_complete
        self.state = "transmitting"

    def _tx_complete(self, tx: Transmission) -> None:
        frame = tx.frame
        success = not tx.corrupted
        destination: SimNode | None = None
        if success and frame.expects_ack:
            destination = self.nodes.get(frame.destination)
            success = (
                destination is not None
                and destination.tuned == self.tuned
                and destination.state != "retuning"
            )

        if success:
            self.sent_frames += 1
            if frame.is_broadcast:
                for node in self.nodes.values():
                    if node is not self and node.tuned == self.tuned:
                        node._receive(frame)
            elif destination is not None:
                destination._receive(frame)
            if self._backoff is not None:
                self._backoff.on_success()
            self.queue.popleft()
        else:
            self.failed_attempts += 1
            retry = self._backoff.on_failure() if self._backoff else False
            if not retry or frame.is_broadcast:
                # Broadcasts are never retried (no ACK to miss in real DCF;
                # a collision simply loses them).
                self.queue.popleft()
                self.dropped_frames += 1
                if self._backoff is not None:
                    self._backoff.on_success()  # reset window for next frame

        self.state = "idle"
        if self._pending_retune is not None:
            channel, latency = self._pending_retune
            self._pending_retune = None
            self.retune(channel, latency)
            return
        if self.source is not None and not self.queue:
            # May enqueue, which re-enters the access procedure itself.
            self.source.on_ready(self)
        if self.state == "idle" and self.queue and self.tuned is not None:
            self._start_access()

    # -- reception -------------------------------------------------------------------

    def _receive(self, frame: Frame) -> None:
        self.received_frames += 1
        if frame.frame_type is FrameType.DATA:
            payload = frame.size_bytes - constants.DATA_HEADER_BYTES
            self.delivered_bytes += max(payload, 0)
        if self.on_frame_received is not None:
            self.on_frame_received(self, frame)

    # -- diagnostics -----------------------------------------------------------------

    def throughput_mbps(self, elapsed_us: float) -> float:
        """Delivered payload throughput over *elapsed_us* (Mbps)."""
        if elapsed_us <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / elapsed_us

    def __repr__(self) -> str:
        return (
            f"SimNode({self.node_id}, bss={self.bss_id}, tuned={self.tuned}, "
            f"state={self.state}, queued={len(self.queue)})"
        )
