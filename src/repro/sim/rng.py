"""Deterministic random-stream derivation.

Simulations draw from many independent random streams (per-node backoff,
background churn, traffic phases).  Deriving each child stream with an
ad-hoc ``rng.randrange(2**31)`` works, but couples every stream to the
exact construction order and gives children only 31 bits of state
separation.  This module centralizes derivation:

* :func:`stream_seed` is a pure function of its keys — the same keys
  always yield the same seed, in any process.  ``ParallelRunner`` uses it
  to fan a master seed into per-worker scenario seeds that are identical
  no matter which worker runs which job.
* :func:`spawn_rng` derives a child :class:`random.Random` from a parent
  stream plus a label, mixing a parent draw (so two children with the
  same label under different parents differ) with a hash of the label
  (so two children of the same parent are widely separated even when the
  parent's outputs are close).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stream_seed", "spawn_rng"]

#: Seeds are confined to 63 bits so they stay exact in any signed 64-bit
#: representation (JSON consumers, numpy dtypes).
_SEED_BITS = 63


def stream_seed(*keys: object) -> int:
    """A deterministic 63-bit seed from an arbitrary key tuple.

    Pure and process-independent: ``stream_seed(42, "sweep", 3)`` is the
    same integer on every platform and in every interpreter, unlike
    ``hash()`` which is salted per process.
    """
    material = ":".join(repr(k) for k in keys).encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


def spawn_rng(parent: random.Random, key: object) -> random.Random:
    """Derive an independent child stream from *parent* labelled *key*.

    Consumes exactly one 64-bit draw from *parent*, so the parent's
    subsequent output depends only on how many children were spawned,
    not on their labels.  The child's seed mixes that draw with a stable
    hash of *key*, keeping sibling streams decorrelated.
    """
    return random.Random(stream_seed(parent.getrandbits(64), key))
