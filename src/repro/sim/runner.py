"""Compatibility shim: the scenario harness moved to ``repro.experiments``.

Scenario construction, WhiteFi/static runs, and the OPT baselines now
live in the unified experiments subsystem:

* :mod:`repro.experiments.spec` — declarative, JSON-serializable
  :class:`ScenarioSpec` / :class:`ExperimentSpec` dataclasses.
* :mod:`repro.experiments.scenario` — :class:`ScenarioConfig` (the
  resolved form re-exported here) and :class:`ScenarioBuilder`.
* :mod:`repro.experiments.runs` — ``run_static`` / ``find_opt_static`` /
  ``run_opt_baselines`` / ``run_whitefi`` and the new ``run_protocol`` /
  ``run_experiment``.
* :mod:`repro.experiments.parallel` — :class:`ParallelRunner` seed sweeps.

Importing from ``repro.sim.runner`` keeps working but emits a
``DeprecationWarning``; new code should import from
:mod:`repro.experiments` directly (``ScenarioBuilder`` replaces the old
world-wiring helpers).
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.runner is deprecated; import ScenarioBuilder, "
    "ScenarioConfig, and the run_* functions from repro.experiments "
    "instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.experiments.runs import (  # noqa: E402
    RunResult,
    find_opt_static,
    run_opt_baselines,
    run_static,
    run_whitefi,
)
from repro.experiments.scenario import ScenarioConfig  # noqa: E402
from repro.experiments.spec import BackgroundSpec  # noqa: E402

__all__ = [
    "BackgroundSpec",
    "RunResult",
    "ScenarioConfig",
    "find_opt_static",
    "run_opt_baselines",
    "run_static",
    "run_whitefi",
]
