"""Scenario construction, WhiteFi/static runs, and OPT baselines.

This module reproduces the Section 5.4 experimental harness:

* **Static runs** fix the foreground BSS on one ``(F, W)`` for the whole
  simulation — the building block of the ``OPT 5/10/20 MHz`` baselines.
* **OPT** baselines pick, per width, the statically best channel by
  probing every candidate with a short simulation and then measuring the
  winner over the full duration ("OPT is an ideal, omniscient algorithm
  that for every experiment run picks the channel with maximum
  throughput").
* **WhiteFi runs** use the adaptive assignment loop: every re-evaluation
  interval the AP collects per-node airtime observations and spectrum
  maps, scores all candidates with MCham, and switches subject to
  hysteresis.

Background load is modelled as AP/client pairs on single UHF channels
sending CBR traffic, optionally gated by two-state Markov churn
(Figure 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro import constants
from repro.core.assignment import ChannelAssigner, SwitchReason
from repro.core.mcham import mcham
from repro.errors import NoChannelAvailableError, SimulationError
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.sim.sensors import GroundTruthSensor
from repro.sim.traffic import (
    CbrSource,
    MarkovChurn,
    RoundRobinSaturatingSource,
    SaturatingSource,
    ScheduledActivity,
)
from repro.spectrum.channels import WhiteFiChannel, valid_channels
from repro.spectrum.spectrum_map import SpectrumMap, union_all


@dataclass(frozen=True)
class BackgroundSpec:
    """One background AP/client pair.

    Attributes:
        uhf_index: the 5 MHz channel the pair occupies.
        inter_packet_delay_us: CBR injection period.
        payload_bytes: CBR payload size.
        churn: optional (mean_active_us, mean_passive_us) Markov gating.
        active_windows: optional scripted (start_us, end_us) activity
            windows (Figure 14); mutually exclusive with churn.
    """

    uhf_index: int
    inter_packet_delay_us: float
    payload_bytes: int = 1000
    churn: tuple[float, float] | None = None
    active_windows: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.churn is not None and self.active_windows is not None:
            raise SimulationError(
                "churn and active_windows are mutually exclusive"
            )


@dataclass
class ScenarioConfig:
    """A complete experiment scenario.

    Attributes:
        base_map: incumbent occupancy shared by all nodes (per-node maps
            may override it under spatial variation).
        num_clients: foreground clients associated with the AP.
        backgrounds: background pair specifications.
        duration_us: measured simulation time (after warmup).
        warmup_us: sensing warmup before the foreground BSS starts.
        seed: master seed; all randomness derives from it.
        ap_map / client_maps: per-node spectrum maps (default: base_map).
        downlink / uplink: enable saturating foreground flows.
        payload_bytes: foreground UDP payload.
    """

    base_map: SpectrumMap
    num_clients: int = 1
    backgrounds: Sequence[BackgroundSpec] = ()
    duration_us: float = 5_000_000.0
    warmup_us: float = 500_000.0
    seed: int = 0
    ap_map: SpectrumMap | None = None
    client_maps: Sequence[SpectrumMap] | None = None
    downlink: bool = True
    uplink: bool = True
    payload_bytes: int = 1000

    @property
    def num_channels(self) -> int:
        """UHF index space size."""
        return len(self.base_map)

    def effective_ap_map(self) -> SpectrumMap:
        """The AP's spectrum map (base map unless overridden)."""
        return self.ap_map if self.ap_map is not None else self.base_map

    def effective_client_maps(self) -> list[SpectrumMap]:
        """Per-client spectrum maps (base map unless overridden)."""
        if self.client_maps is not None:
            if len(self.client_maps) != self.num_clients:
                raise SimulationError(
                    f"{len(self.client_maps)} client maps for "
                    f"{self.num_clients} clients"
                )
            return list(self.client_maps)
        return [self.base_map] * self.num_clients

    def union_map(self) -> SpectrumMap:
        """OR of the AP's and all clients' maps."""
        return union_all([self.effective_ap_map(), *self.effective_client_maps()])

    def candidate_channels(self) -> list[WhiteFiChannel]:
        """Channels free at every foreground node."""
        return valid_channels(self.union_map().free_indices(), self.num_channels)


@dataclass
class RunResult:
    """Metrics from one simulation run.

    Attributes:
        aggregate_mbps: total foreground goodput over the measured window.
        per_client_mbps: aggregate divided by the client count.
        duration_us: measured window length.
        channel_history: (time_us, channel) switch log (static runs have
            a single entry).
        throughput_timeline: (window_end_us, mbps) samples when timeline
            sampling was requested.
        mcham_timeline: (time_us, {width: best score}) samples for
            WhiteFi runs.
    """

    aggregate_mbps: float
    per_client_mbps: float
    duration_us: float
    channel_history: list[tuple[float, WhiteFiChannel]] = field(default_factory=list)
    throughput_timeline: list[tuple[float, float]] = field(default_factory=list)
    mcham_timeline: list[tuple[float, dict[float, float]]] = field(default_factory=list)

    @property
    def final_channel(self) -> WhiteFiChannel | None:
        """The channel in use at the end of the run."""
        return self.channel_history[-1][1] if self.channel_history else None


class _World:
    """A built simulation world (engine, medium, nodes, traffic)."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.engine = Engine()
        self.medium = Medium(self.engine, config.num_channels)
        self.rng = random.Random(config.seed)
        self.sensor = GroundTruthSensor(self.medium)
        self.nodes: dict[str, SimNode] = {}
        self.ap: SimNode | None = None
        self.clients: list[SimNode] = []
        self._build_background()

    def _add_node(
        self, node_id: str, bss_id: str, channel: WhiteFiChannel | None
    ) -> SimNode:
        node = SimNode(
            self.engine,
            self.medium,
            node_id,
            bss_id,
            channel,
            rng=random.Random(self.rng.randrange(2**31)),
        )
        node.nodes = self.nodes
        self.nodes[node_id] = node
        return node

    def _build_background(self) -> None:
        config = self.config
        for i, spec in enumerate(config.backgrounds):
            if not config.base_map.is_free(spec.uhf_index):
                raise SimulationError(
                    f"background pair {i} on occupied channel {spec.uhf_index}"
                )
            channel = WhiteFiChannel(spec.uhf_index, 5.0)
            bss = f"bg{i}"
            ap = self._add_node(f"bg{i}-ap", bss, channel)
            self._add_node(f"bg{i}-cl", bss, channel)
            self.medium.register_ap(bss, channel.spanned_indices)
            source = CbrSource(
                self.engine,
                ap,
                f"bg{i}-cl",
                spec.inter_packet_delay_us,
                spec.payload_bytes,
                start_us=self.rng.uniform(0.0, max(spec.inter_packet_delay_us, 1_000.0)),
            )
            if spec.churn is not None:
                mean_active, mean_passive = spec.churn
                MarkovChurn(
                    self.engine,
                    source,
                    mean_active,
                    mean_passive,
                    random.Random(self.rng.randrange(2**31)),
                )
            elif spec.active_windows is not None:
                ScheduledActivity(self.engine, source, list(spec.active_windows))

    def start_foreground(self, channel: WhiteFiChannel) -> None:
        """Create the foreground BSS on *channel* and start its flows."""
        config = self.config
        self.ap = self._add_node("ap", "whitefi", channel)
        self.medium.register_ap("whitefi", channel.spanned_indices)
        client_ids = []
        for i in range(config.num_clients):
            client = self._add_node(f"client{i}", "whitefi", channel)
            self.clients.append(client)
            client_ids.append(client.node_id)
        if config.downlink:
            RoundRobinSaturatingSource(
                self.ap, client_ids, config.payload_bytes
            ).start()
        if config.uplink:
            for client in self.clients:
                SaturatingSource(client, "ap", config.payload_bytes).start()

    def retune_foreground(self, channel: WhiteFiChannel) -> None:
        """Switch the whole foreground BSS to *channel*."""
        assert self.ap is not None
        self.medium.register_ap("whitefi", channel.spanned_indices)
        self.ap.retune(channel)
        for client in self.clients:
            client.retune(channel)

    def foreground_delivered_bytes(self) -> int:
        """Total foreground goodput counter (downlink + uplink)."""
        assert self.ap is not None
        total = self.ap.delivered_bytes
        total += sum(c.delivered_bytes for c in self.clients)
        return total


def _measure(
    world: _World,
    start_us: float,
    end_us: float,
    timeline_interval_us: float | None,
) -> tuple[float, list[tuple[float, float]]]:
    """Run the world from *start_us* to *end_us*, sampling throughput."""
    timeline: list[tuple[float, float]] = []
    baseline_bytes = world.foreground_delivered_bytes()
    if timeline_interval_us is None:
        world.engine.run_until(end_us)
    else:
        t = start_us
        prev_bytes = baseline_bytes
        while t < end_us:
            t = min(t + timeline_interval_us, end_us)
            world.engine.run_until(t)
            now_bytes = world.foreground_delivered_bytes()
            window = timeline_interval_us
            timeline.append(((t), (now_bytes - prev_bytes) * 8.0 / window))
            prev_bytes = now_bytes
    delivered = world.foreground_delivered_bytes() - baseline_bytes
    duration = end_us - start_us
    mbps = delivered * 8.0 / duration if duration > 0 else 0.0
    return mbps, timeline


def run_static(
    config: ScenarioConfig,
    channel: WhiteFiChannel,
    *,
    timeline_interval_us: float | None = None,
) -> RunResult:
    """Simulate the foreground BSS fixed on *channel* for the full run."""
    world = _World(config)
    world.engine.run_until(config.warmup_us)
    world.start_foreground(channel)
    start = config.warmup_us
    end = start + config.duration_us
    mbps, timeline = _measure(world, start, end, timeline_interval_us)
    return RunResult(
        aggregate_mbps=mbps,
        per_client_mbps=mbps / max(config.num_clients, 1),
        duration_us=config.duration_us,
        channel_history=[(start, channel)],
        throughput_timeline=timeline,
    )


def find_opt_static(
    config: ScenarioConfig,
    width_mhz: float,
    *,
    probe_duration_us: float = 1_500_000.0,
) -> tuple[WhiteFiChannel | None, RunResult | None]:
    """The best static channel of a given width, by exhaustive probing.

    Every candidate position is probed with a short simulation; the
    winner is then measured over the full duration.  Returns
    ``(None, None)`` when the width has no valid position.
    """
    candidates = [
        c for c in config.candidate_channels() if c.width_mhz == width_mhz
    ]
    if not candidates:
        return None, None
    if len(candidates) == 1:
        best = candidates[0]
    else:
        probe_config = replace(config, duration_us=probe_duration_us)
        scores = []
        for channel in candidates:
            result = run_static(probe_config, channel)
            scores.append((result.aggregate_mbps, channel))
        best = max(scores, key=lambda s: s[0])[1]
    return best, run_static(config, best)


def run_opt_baselines(
    config: ScenarioConfig,
    *,
    probe_duration_us: float = 1_500_000.0,
) -> dict[str, RunResult | None]:
    """All four paper baselines: OPT 5/10/20 MHz and overall OPT.

    OPT is the best of the per-width winners (the paper's omniscient
    static choice).
    """
    results: dict[str, RunResult | None] = {}
    best_overall: RunResult | None = None
    for width in constants.CHANNEL_WIDTHS_MHZ:
        _, result = find_opt_static(
            config, width, probe_duration_us=probe_duration_us
        )
        results[f"opt-{width:g}mhz"] = result
        if result is not None and (
            best_overall is None
            or result.aggregate_mbps > best_overall.aggregate_mbps
        ):
            best_overall = result
    results["opt"] = best_overall
    return results


def run_whitefi(
    config: ScenarioConfig,
    *,
    reeval_interval_us: float = 2_000_000.0,
    hysteresis_margin: float = constants.HYSTERESIS_MARGIN,
    ap_weight: float | None = None,
    aggregation: str = "product",
    timeline_interval_us: float | None = None,
) -> RunResult:
    """Simulate the adaptive WhiteFi spectrum-assignment loop.

    The AP re-evaluates the channel every *reeval_interval_us*: it takes
    fresh airtime observations for itself and each client (spectrum maps
    are per-node under spatial variation), scores every candidate with
    MCham, and switches when the hysteresis margin is cleared.

    Args:
        reeval_interval_us: period of the assignment loop.
        hysteresis_margin: voluntary-switch margin (0 = ablation).
        ap_weight: AP weighting override (None = paper's N-times rule).
        aggregation: MCham aggregation ("product"/"min"/"max").
        timeline_interval_us: optional throughput sampling period.
    """
    world = _World(config)
    assigner = ChannelAssigner(
        num_channels=config.num_channels,
        hysteresis_margin=hysteresis_margin,
        ap_weight=ap_weight,
        aggregation=aggregation,
    )
    ap_map = config.effective_ap_map()
    client_maps = config.effective_client_maps()
    channel_history: list[tuple[float, WhiteFiChannel]] = []
    mcham_timeline: list[tuple[float, dict[float, float]]] = []

    def observations():
        ap_obs = world.sensor.observe("whitefi")
        # All foreground nodes share the collision domain, so their
        # ground-truth observations coincide; per-node maps still differ.
        client_obs = [ap_obs] * config.num_clients
        return ap_obs, client_obs

    def record_mcham(ap_obs, client_obs) -> None:
        del client_obs  # the timeline tracks the AP's plain metric
        best_by_width: dict[float, float] = {}
        for candidate in config.candidate_channels():
            # Figures 10/14 plot the plain MCham metric per width (the
            # best candidate of each width), not the N-weighted network
            # score used for the decision.
            value = mcham(candidate, ap_obs, aggregation=aggregation)
            width = candidate.width_mhz
            best_by_width[width] = max(best_by_width.get(width, 0.0), value)
        mcham_timeline.append((world.engine.now_us, best_by_width))

    # Warmup: sense the background before picking the boot channel.
    world.engine.run_until(config.warmup_us)
    ap_obs, client_obs = observations()
    decision = assigner.evaluate(
        ap_map,
        ap_obs,
        client_maps,
        client_obs,
        reason=SwitchReason.BOOT,
    )
    record_mcham(ap_obs, client_obs)
    world.start_foreground(decision.channel)
    channel_history.append((world.engine.now_us, decision.channel))

    start = config.warmup_us
    end = start + config.duration_us

    def reevaluate() -> None:
        if world.engine.now_us >= end:
            return
        ap_obs, client_obs = observations()
        try:
            decision = assigner.evaluate(
                ap_map,
                ap_obs,
                client_maps,
                client_obs,
                reason=SwitchReason.PERIODIC,
            )
        except NoChannelAvailableError:
            world.engine.schedule(reeval_interval_us, reevaluate)
            return
        record_mcham(ap_obs, client_obs)
        if decision.switched:
            world.retune_foreground(decision.channel)
            channel_history.append((world.engine.now_us, decision.channel))
        world.engine.schedule(reeval_interval_us, reevaluate)

    world.engine.schedule(reeval_interval_us, reevaluate)
    mbps, timeline = _measure(world, start, end, timeline_interval_us)
    return RunResult(
        aggregate_mbps=mbps,
        per_client_mbps=mbps / max(config.num_clients, 1),
        duration_us=config.duration_us,
        channel_history=channel_history,
        throughput_timeline=timeline,
        mcham_timeline=mcham_timeline,
    )
