"""In-simulation spectrum sensors.

The prototype measures airtime and AP counts by SIFT-scanning every UHF
channel (1 s dwell each, Section 5.4.2).  The full IQ -> SIFT measurement
path is validated against synthetic captures in the Table 1 / Figure 6
experiments; inside the discrete-event simulator we substitute a sensor
that reads the medium's ground-truth busy integrals — mirroring the
paper's own split between prototype measurements and QualNet simulation.

``GroundTruthSensor`` excludes the observing BSS's own traffic: MCham's
``A_c`` is meant to capture *background* load, not the BSS's own offered
load (otherwise every busy BSS would flee its own channel).
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.sim.medium import Medium
from repro.spectrum.airtime import AirtimeObservation


class GroundTruthSensor:
    """Windowed airtime / AP-count observations from medium accounting.

    Each call to :meth:`observe` reports the busy fraction per UHF channel
    over the window since the previous call (per observer), plus the
    registered AP counts.

    Args:
        medium: the medium to observe.
        noise_std: optional Gaussian noise on the busy fractions,
            modelling SIFT measurement error (Figure 6 shows ~2% error
            bars); 0 disables.
        rng: random source for the noise.
    """

    def __init__(
        self,
        medium: Medium,
        noise_std: float = 0.0,
        rng: random.Random | None = None,
    ):
        if noise_std < 0:
            raise SimulationError(f"noise std must be >= 0, got {noise_std}")
        self.medium = medium
        self.noise_std = noise_std
        self.rng = rng or random.Random(0)
        # Per (observer bss_id) -> (time, per-channel cumulative busy).
        self._snapshots: dict[str, tuple[float, list[float]]] = {}

    def _cumulative(self, bss_id: str) -> list[float]:
        return [
            self.medium.busy_integral_excluding(c, bss_id)
            for c in range(self.medium.num_channels)
        ]

    def reset(self, bss_id: str) -> None:
        """Start a fresh measurement window for *bss_id*."""
        self._snapshots[bss_id] = (
            self.medium.engine.now_us,
            self._cumulative(bss_id),
        )

    def observe(self, bss_id: str) -> AirtimeObservation:
        """Busy fractions and AP counts over the window since the last call.

        The first call for an observer measures from time 0.
        """
        now = self.medium.engine.now_us
        prev_time, prev_cum = self._snapshots.get(
            bss_id, (0.0, [0.0] * self.medium.num_channels)
        )
        window = now - prev_time
        cum = self._cumulative(bss_id)
        if window <= 0:
            busy = [0.0] * self.medium.num_channels
        else:
            busy = [
                min(max((c1 - c0) / window, 0.0), 1.0)
                for c0, c1 in zip(prev_cum, cum)
            ]
        if self.noise_std > 0:
            busy = [
                min(max(b + self.rng.gauss(0.0, self.noise_std), 0.0), 1.0)
                for b in busy
            ]
        aps = [
            self.medium.ap_count_on(c, excluding_bss=bss_id)
            for c in range(self.medium.num_channels)
        ]
        self._snapshots[bss_id] = (now, cum)
        return AirtimeObservation(tuple(busy), tuple(aps))
