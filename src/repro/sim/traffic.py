"""Traffic generators: saturating UDP, CBR, and Markov churn.

The paper's workloads (Section 5.4):

* foreground AP/clients are "backlogged and transmit UDP flows (up- and
  downstream)" — :class:`SaturatingSource`;
* background pairs send "constant-bit-rate (CBR) traffic at a
  pre-specified intensity", parameterised by inter-packet delay —
  :class:`CbrSource`;
* churn models background nodes "using a simple discrete Markov chain
  with two states (A=active, P=passive)" — :class:`MarkovChurn`.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.errors import SimulationError
from repro.mac.frames import data_frame
from repro.sim.engine import Engine
from repro.sim.node import SimNode

#: Default UDP payload size (bytes), matching the paper's 1000-byte packets.
DEFAULT_PAYLOAD_BYTES = 1000


class TrafficSource(Protocol):
    """Anything that can refill a node's MAC queue."""

    def on_ready(self, node: SimNode) -> None:
        """Called by the MAC when the node's queue has drained."""
        ...


class SaturatingSource:
    """A backlogged UDP flow: the MAC queue never runs dry.

    Args:
        node: sending node.
        destination_id: receiver node id.
        payload_bytes: UDP payload per frame.
    """

    def __init__(
        self,
        node: SimNode,
        destination_id: str,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    ):
        self.node = node
        self.destination_id = destination_id
        self.payload_bytes = payload_bytes
        node.source = self

    def start(self) -> None:
        """Prime the queue with the first frame."""
        self.on_ready(self.node)

    def on_ready(self, node: SimNode) -> None:
        """Refill with exactly one frame (keeps queue shallow and reactive)."""
        node.enqueue(
            data_frame(node.node_id, self.destination_id, self.payload_bytes)
        )


class RoundRobinSaturatingSource:
    """A backlogged downlink: the AP cycles frames across its clients.

    Args:
        node: the AP node.
        destination_ids: client node ids to cycle through.
        payload_bytes: UDP payload per frame.
    """

    def __init__(
        self,
        node: SimNode,
        destination_ids: list[str],
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    ):
        if not destination_ids:
            raise SimulationError("round-robin source needs at least one destination")
        self.node = node
        self.destination_ids = list(destination_ids)
        self.payload_bytes = payload_bytes
        self._next = 0
        node.source = self

    def start(self) -> None:
        """Prime the queue with the first frame."""
        self.on_ready(self.node)

    def on_ready(self, node: SimNode) -> None:
        """Refill with one frame for the next client in the cycle."""
        destination = self.destination_ids[self._next % len(self.destination_ids)]
        self._next += 1
        node.enqueue(data_frame(node.node_id, destination, self.payload_bytes))


class CbrSource:
    """Constant-bit-rate traffic with a fixed inter-packet delay.

    The paper specifies background intensity as the delay between packet
    *injections* (e.g. "30 ms inter-packet delay").

    Args:
        engine: simulation engine.
        node: sending node.
        destination_id: receiver node id.
        inter_packet_delay_us: injection period.
        payload_bytes: UDP payload per frame.
        start_us: first injection time (jittered by the runner to avoid
            phase-locked background flows).
    """

    def __init__(
        self,
        engine: Engine,
        node: SimNode,
        destination_id: str,
        inter_packet_delay_us: float,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        start_us: float = 0.0,
    ):
        if inter_packet_delay_us < 0:
            raise SimulationError(
                f"inter-packet delay must be >= 0, got {inter_packet_delay_us}"
            )
        self.engine = engine
        self.node = node
        self.destination_id = destination_id
        self.inter_packet_delay_us = inter_packet_delay_us
        self.payload_bytes = payload_bytes
        self.active = True
        self.injected = 0
        node.source = self
        engine.schedule_at(max(start_us, engine.now_us), self._inject)

    def on_ready(self, node: SimNode) -> None:
        """CBR is timer-driven; nothing to do when the queue drains."""

    def _inject(self) -> None:
        if self.active:
            self.injected += 1
            self.node.enqueue(
                data_frame(self.node.node_id, self.destination_id, self.payload_bytes)
            )
        delay = self.inter_packet_delay_us
        if delay <= 0:
            # Zero delay degenerates to saturation; re-inject after the
            # frame's own airtime to avoid a zero-period timer loop.
            delay = 1_000.0
        self.engine.schedule(delay, self._inject)


class ScheduledActivity:
    """Deterministic on/off gating of a CBR source.

    Used by the Figure 14 prototype-timeline experiment, where background
    traffic is injected on specific channels during scripted windows
    ("at time 50 seconds, we introduce background traffic on channels 26
    through 29 ...").

    Args:
        engine: simulation engine.
        source: the CBR source to gate.
        active_windows: (start_us, end_us) intervals during which the
            source transmits; outside them it is silent.
    """

    def __init__(
        self,
        engine: Engine,
        source: CbrSource,
        active_windows: list[tuple[float, float]],
    ):
        for start, end in active_windows:
            if end < start:
                raise SimulationError(
                    f"activity window ends ({end}) before it starts ({start})"
                )
        self.engine = engine
        self.source = source
        self.active_windows = sorted(active_windows)
        source.active = self._active_at(engine.now_us)
        for start, end in self.active_windows:
            if start >= engine.now_us:
                engine.schedule_at(start, self._set_active, True)
            if end >= engine.now_us:
                engine.schedule_at(end, self._set_active, False)

    def _active_at(self, t_us: float) -> bool:
        return any(start <= t_us < end for start, end in self.active_windows)

    def _set_active(self, active: bool) -> None:
        self.source.active = active


class MarkovChurn:
    """Two-state (Active/Passive) churn controller for a CBR source.

    Sojourn times in each state are exponential with the given means, so
    the stationary active probability is
    ``mean_active / (mean_active + mean_passive)`` and the average state
    duration is the mean of the two sojourn means — the two axes of the
    paper's Figure 13 sweep.

    Args:
        engine: simulation engine.
        source: the CBR source to gate.
        mean_active_us: mean sojourn in the Active state.
        mean_passive_us: mean sojourn in the Passive state.
        rng: random source.
        start_active: initial state (drawn from the stationary law when
            None).
    """

    def __init__(
        self,
        engine: Engine,
        source: CbrSource,
        mean_active_us: float,
        mean_passive_us: float,
        rng: random.Random,
        start_active: bool | None = None,
    ):
        if mean_active_us < 0 or mean_passive_us < 0:
            raise SimulationError("mean sojourn times must be >= 0")
        self.engine = engine
        self.source = source
        self.mean_active_us = mean_active_us
        self.mean_passive_us = mean_passive_us
        self.rng = rng
        self.transitions = 0

        if mean_active_us <= 0:
            # Degenerate chain: never active.
            self.source.active = False
            return
        if mean_passive_us <= 0:
            # Degenerate chain: always active.
            self.source.active = True
            return
        if start_active is None:
            total = mean_active_us + mean_passive_us
            start_active = rng.random() < mean_active_us / total
        self.source.active = start_active
        self._schedule_transition()

    @property
    def stationary_active_probability(self) -> float:
        """Long-run fraction of time the source transmits."""
        total = self.mean_active_us + self.mean_passive_us
        return self.mean_active_us / total if total > 0 else 0.0

    def _schedule_transition(self) -> None:
        mean = (
            self.mean_active_us if self.source.active else self.mean_passive_us
        )
        self.engine.schedule(self.rng.expovariate(1.0 / mean), self._flip)

    def _flip(self) -> None:
        self.source.active = not self.source.active
        self.transitions += 1
        self._schedule_transition()
