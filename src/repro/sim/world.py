"""Shared node-construction wiring for simulation worlds.

Every harness that populates the simulator (the scenario runner's
background pairs and foreground BSS, :class:`repro.core.network.WhiteFiBss`'s
protocol nodes) needs the same boilerplate: create a :class:`SimNode`
with its own deterministic random stream, register it in the shared
node dictionary, and point the node at that dictionary for frame
delivery.  ``NodeRoster`` is that boilerplate, written once.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.mac.frames import Frame
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.sim.rng import spawn_rng
from repro.spectrum.channels import WhiteFiChannel

__all__ = ["NodeRoster"]


class NodeRoster:
    """The engine/medium substrate plus the registry of live nodes.

    Args:
        engine: simulation engine shared by all nodes.
        medium: the collision domain shared by all nodes.
        rng: master random stream; each node's backoff stream is spawned
            from it, keyed by the node id.
    """

    def __init__(self, engine: Engine, medium: Medium, rng: random.Random):
        self.engine = engine
        self.medium = medium
        self.rng = rng
        self.nodes: dict[str, SimNode] = {}

    def add_node(
        self,
        node_id: str,
        bss_id: str,
        channel: WhiteFiChannel | None,
        *,
        on_frame_received: Callable[[SimNode, Frame], None] | None = None,
    ) -> SimNode:
        """Create, wire, and register one station.

        Raises:
            KeyError: if *node_id* is already registered.
        """
        if node_id in self.nodes:
            raise KeyError(f"node id {node_id!r} already registered")
        node = SimNode(
            self.engine,
            self.medium,
            node_id,
            bss_id,
            channel,
            rng=spawn_rng(self.rng, node_id),
        )
        node.nodes = self.nodes
        if on_frame_received is not None:
            node.on_frame_received = on_frame_received
        self.nodes[node_id] = node
        return node
