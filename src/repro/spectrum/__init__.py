"""Spectrum substrate: UHF channelization, maps, incumbents, fragmentation.

This package models everything about the UHF white spaces themselves:

* :mod:`repro.spectrum.channels` — the 30-channel US band plan and the 84
  candidate WhiteFi ``(F, W)`` channels.
* :mod:`repro.spectrum.spectrum_map` — per-node incumbent bit-vectors and
  their algebra (union across nodes, Hamming distance).
* :mod:`repro.spectrum.fragmentation` — contiguous free fragments.
* :mod:`repro.spectrum.airtime` — per-channel airtime/AP-count observations.
* :mod:`repro.spectrum.incumbents` — TV stations and wireless microphones.
* :mod:`repro.spectrum.geodata` — synthetic TV-Fool-style locale generator.
* :mod:`repro.spectrum.variation` — spatial-variation models (buildings,
  per-client flip model of Section 5.4).
"""

from repro.spectrum.channels import (
    UhfBandPlan,
    WhiteFiChannel,
    enumerate_channels,
    valid_channels,
)
from repro.spectrum.spectrum_map import SpectrumMap
from repro.spectrum.fragmentation import fragments, fragment_widths, fragment_histogram
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.incumbents import (
    TvStation,
    WirelessMicrophone,
    IncumbentField,
)

__all__ = [
    "UhfBandPlan",
    "WhiteFiChannel",
    "enumerate_channels",
    "valid_channels",
    "SpectrumMap",
    "fragments",
    "fragment_widths",
    "fragment_histogram",
    "AirtimeObservation",
    "TvStation",
    "WirelessMicrophone",
    "IncumbentField",
]
