"""Per-UHF-channel airtime observations feeding the MCham metric.

Section 4.1: "Each node also maintains an airtime utilization vector
{A0, ..., Ak}, where Ai represents an estimate of the airtime utilization
on each UHF channel.  Note that for incumbent-occupied channels, Ai is
undefined."  MCham additionally needs ``B_c``, the estimated number of
other access points operating on each UHF channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro import constants
from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap


@dataclass(frozen=True)
class AirtimeObservation:
    """One node's view of per-UHF-channel load.

    Attributes:
        busy_fraction: ``A_c`` per UHF channel, each in [0, 1].  Values on
            incumbent-occupied channels are carried but never consumed
            (the paper declares them undefined).
        ap_count: ``B_c`` per UHF channel — the number of *other* APs
            observed operating on that channel.
    """

    busy_fraction: tuple[float, ...]
    ap_count: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.busy_fraction) != len(self.ap_count):
            raise SpectrumMapError(
                "busy_fraction and ap_count must have the same length "
                f"({len(self.busy_fraction)} vs {len(self.ap_count)})"
            )
        for i, a in enumerate(self.busy_fraction):
            if not 0.0 <= a <= 1.0:
                raise SpectrumMapError(
                    f"busy fraction A[{i}]={a!r} outside [0, 1]"
                )
        for i, b in enumerate(self.ap_count):
            if b < 0:
                raise SpectrumMapError(f"AP count B[{i}]={b!r} negative")

    @classmethod
    def idle(
        cls, num_channels: int = constants.NUM_UHF_CHANNELS
    ) -> "AirtimeObservation":
        """An observation with zero load everywhere."""
        return cls((0.0,) * num_channels, (0,) * num_channels)

    @classmethod
    def from_mappings(
        cls,
        busy: Mapping[int, float],
        aps: Mapping[int, int] | None = None,
        num_channels: int = constants.NUM_UHF_CHANNELS,
    ) -> "AirtimeObservation":
        """Build an observation from sparse per-channel dicts.

        >>> obs = AirtimeObservation.from_mappings({3: 0.9}, {3: 1}, 5)
        >>> obs.busy_fraction[3], obs.ap_count[3]
        (0.9, 1)
        """
        aps = aps or {}
        busy_vec = [0.0] * num_channels
        ap_vec = [0] * num_channels
        for idx, value in busy.items():
            busy_vec[idx] = float(value)
        for idx, value in aps.items():
            ap_vec[idx] = int(value)
        return cls(tuple(busy_vec), tuple(ap_vec))

    def __len__(self) -> int:
        return len(self.busy_fraction)

    def busy(self, uhf_index: int) -> float:
        """``A_c`` for the given UHF channel index."""
        return self.busy_fraction[uhf_index]

    def aps(self, uhf_index: int) -> int:
        """``B_c`` for the given UHF channel index."""
        return self.ap_count[uhf_index]

    def clamped(self) -> "AirtimeObservation":
        """Copy with busy fractions clamped to [0, 1] (defensive)."""
        return AirtimeObservation(
            tuple(min(1.0, max(0.0, a)) for a in self.busy_fraction),
            self.ap_count,
        )


@dataclass
class NodeReport:
    """The control message a client periodically sends the AP.

    Section 4.1: "Clients periodically transmit this information to the AP
    as part of a control message" — the spectrum map plus the airtime
    observation.
    """

    node_id: str
    spectrum_map: SpectrumMap
    airtime: AirtimeObservation
    timestamp_us: float = 0.0

    def __post_init__(self) -> None:
        if len(self.spectrum_map) != len(self.airtime):
            raise SpectrumMapError(
                "spectrum map and airtime observation sizes differ: "
                f"{len(self.spectrum_map)} vs {len(self.airtime)}"
            )


def average_airtime(observations: Sequence[AirtimeObservation]) -> AirtimeObservation:
    """Element-wise average of airtime observations (diagnostics only).

    MCham itself averages at the metric level, not the observation level,
    but benchmark reporting uses this to summarise network-wide load.
    """
    if not observations:
        raise SpectrumMapError("average_airtime requires at least one observation")
    size = len(observations[0])
    if any(len(o) != size for o in observations):
        raise SpectrumMapError("airtime observations have differing sizes")
    n = len(observations)
    busy = tuple(
        sum(o.busy_fraction[i] for o in observations) / n for i in range(size)
    )
    # AP counts are maxima rather than means: a contending AP seen by any
    # node contends with the whole BSS.
    aps = tuple(max(o.ap_count[i] for o in observations) for i in range(size))
    return AirtimeObservation(busy, aps)
