"""UHF band plan and WhiteFi channel enumeration.

Terminology follows Section 4 of the paper:

* A **UHF channel** is one of the 30 usable 6 MHz segments of the US TV
  band (channels 21-51 minus 37).  Internally we index them 0..29.
* A **channel** (WhiteFi channel) is a tuple ``(F, W)`` where ``F`` is a
  center frequency and ``W`` in {5, 10, 20} MHz.  Channels are always
  centered on a UHF channel's center frequency; a 5 MHz channel fits one
  UHF channel, 10 MHz spans three, and 20 MHz spans five.  There are
  30 + 28 + 26 = 84 candidate channels.

The paper's counts treat the 30 usable channels as a contiguous index
space (channel 37 is simply absent).  ``UhfBandPlan`` reproduces that by
default; ``allow_gap_spanning=False`` additionally refuses 10/20 MHz
channels whose physical span would straddle the channel-37 hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro import constants
from repro.errors import ChannelError


@dataclass(frozen=True)
class UhfBandPlan:
    """The usable UHF channel table for white space devices.

    Attributes:
        first: first usable TV channel number (21 in the US).
        last: last usable TV channel number (51 in the US).
        reserved: TV channel numbers excluded from use (37 in the US).
    """

    first: int = constants.FIRST_UHF_CHANNEL
    last: int = constants.LAST_UHF_CHANNEL
    reserved: tuple[int, ...] = (constants.RESERVED_UHF_CHANNEL,)

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ChannelError(
                f"band plan first channel {self.first} exceeds last {self.last}"
            )

    @property
    def channel_numbers(self) -> tuple[int, ...]:
        """Usable TV channel numbers, ascending (e.g. 21..36, 38..51)."""
        return tuple(
            n for n in range(self.first, self.last + 1) if n not in self.reserved
        )

    @property
    def num_channels(self) -> int:
        """Number of usable UHF channels (30 in the US)."""
        return len(self.channel_numbers)

    def index_of(self, channel_number: int) -> int:
        """Map a TV channel number to its 0-based usable-channel index.

        Raises:
            ChannelError: if *channel_number* is reserved or out of band.
        """
        try:
            return self.channel_numbers.index(channel_number)
        except ValueError:
            raise ChannelError(
                f"TV channel {channel_number} is not usable under this band plan"
            ) from None

    def number_of(self, index: int) -> int:
        """Map a 0-based usable-channel index back to its TV channel number."""
        numbers = self.channel_numbers
        if not 0 <= index < len(numbers):
            raise ChannelError(
                f"UHF channel index {index} out of range 0..{len(numbers) - 1}"
            )
        return numbers[index]

    def center_frequency_mhz(self, index: int) -> float:
        """Center frequency (MHz) of the UHF channel at *index*.

        US TV channel ``n`` (21 <= n <= 51) occupies
        ``[512 + (n - 21) * 6, 518 + (n - 21) * 6]`` MHz.
        """
        number = self.number_of(index)
        low_edge = constants.UHF_BAND_START_MHZ + (
            (number - constants.FIRST_UHF_CHANNEL) * constants.UHF_CHANNEL_WIDTH_MHZ
        )
        return low_edge + constants.UHF_CHANNEL_WIDTH_MHZ / 2.0

    def indices_are_physically_adjacent(self, a: int, b: int) -> bool:
        """True when usable indices *a* and *b* are adjacent in frequency.

        Adjacent indices that straddle a reserved channel (e.g. TV channels
        36 and 38 around 37) are *not* physically adjacent.
        """
        if abs(a - b) != 1:
            return False
        return abs(self.number_of(a) - self.number_of(b)) == 1


#: The default (US) band plan used throughout the library.
US_BAND_PLAN = UhfBandPlan()


@dataclass(frozen=True, order=True)
class WhiteFiChannel:
    """A WhiteFi channel ``(F, W)``: a center UHF index plus a width.

    Attributes:
        center_index: 0-based usable-UHF-channel index the channel is
            centered on.
        width_mhz: channel width, one of 5.0, 10.0, 20.0 MHz.
    """

    center_index: int
    width_mhz: float

    def __post_init__(self) -> None:
        if self.width_mhz not in constants.SPAN_BY_WIDTH_MHZ:
            raise ChannelError(
                f"unsupported width {self.width_mhz!r} MHz; "
                f"expected one of {constants.CHANNEL_WIDTHS_MHZ}"
            )
        half_span = constants.span_channels(self.width_mhz) // 2
        lo = self.center_index - half_span
        hi = self.center_index + half_span
        if lo < 0 or hi >= constants.NUM_UHF_CHANNELS:
            raise ChannelError(
                f"channel ({self.center_index}, {self.width_mhz} MHz) spans "
                f"UHF indices {lo}..{hi}, outside 0..{constants.NUM_UHF_CHANNELS - 1}"
            )

    @property
    def span(self) -> int:
        """Number of UHF channels spanned (1, 3, or 5)."""
        return constants.span_channels(self.width_mhz)

    @property
    def spanned_indices(self) -> tuple[int, ...]:
        """The usable-UHF-channel indices covered by this channel."""
        half = self.span // 2
        return tuple(range(self.center_index - half, self.center_index + half + 1))

    def center_frequency_mhz(self, plan: UhfBandPlan = US_BAND_PLAN) -> float:
        """Physical center frequency in MHz under *plan*."""
        return plan.center_frequency_mhz(self.center_index)

    def overlaps(self, other: "WhiteFiChannel") -> bool:
        """True when this channel shares at least one UHF channel with *other*."""
        mine = set(self.spanned_indices)
        return any(i in mine for i in other.spanned_indices)

    def contains_index(self, uhf_index: int) -> bool:
        """True when *uhf_index* is one of the spanned UHF channels."""
        return uhf_index in self.spanned_indices

    def capacity_factor(self) -> float:
        """Capacity relative to a 5 MHz reference channel (W / 5 MHz)."""
        return self.width_mhz / constants.REFERENCE_WIDTH_MHZ

    def __str__(self) -> str:
        return f"(F=ch{self.center_index}, W={self.width_mhz:g}MHz)"


def _spans_gap(channel: WhiteFiChannel, plan: UhfBandPlan) -> bool:
    """True if *channel* physically straddles a reserved-channel hole."""
    idx = channel.spanned_indices
    return any(
        not plan.indices_are_physically_adjacent(a, b)
        for a, b in zip(idx, idx[1:])
    )


@lru_cache(maxsize=8)
def _enumerate_cached(
    num_channels: int, allow_gap_spanning: bool, plan: UhfBandPlan
) -> tuple[WhiteFiChannel, ...]:
    result: list[WhiteFiChannel] = []
    for width in constants.CHANNEL_WIDTHS_MHZ:
        half = constants.span_channels(width) // 2
        for center in range(half, num_channels - half):
            channel = WhiteFiChannel(center, width)
            if not allow_gap_spanning and _spans_gap(channel, plan):
                continue
            result.append(channel)
    return tuple(result)


def enumerate_channels(
    num_channels: int = constants.NUM_UHF_CHANNELS,
    *,
    allow_gap_spanning: bool = True,
    plan: UhfBandPlan = US_BAND_PLAN,
) -> tuple[WhiteFiChannel, ...]:
    """Enumerate every candidate WhiteFi channel.

    With the paper's defaults this yields 30 five-MHz, 28 ten-MHz and 26
    twenty-MHz channels (84 total).

    Args:
        num_channels: size of the usable-UHF index space.
        allow_gap_spanning: when False, drop 10/20 MHz channels whose
            physical span would straddle the reserved channel-37 hole.
        plan: band plan used for the gap check.

    Returns:
        Tuple of channels ordered by (width, center index).
    """
    if num_channels < 1:
        raise ChannelError(f"num_channels must be >= 1, got {num_channels}")
    if num_channels == constants.NUM_UHF_CHANNELS:
        return _enumerate_cached(num_channels, allow_gap_spanning, plan)
    # Non-default sizes (used by narrow-fragment experiments) bypass the
    # gap check, which is only meaningful for the full US table.
    result: list[WhiteFiChannel] = []
    for width in constants.CHANNEL_WIDTHS_MHZ:
        half = constants.span_channels(width) // 2
        for center in range(half, num_channels - half):
            result.append(WhiteFiChannel(center, width))
    return tuple(result)


def valid_channels(
    free_indices: Iterable[int],
    num_channels: int = constants.NUM_UHF_CHANNELS,
    *,
    allow_gap_spanning: bool = True,
) -> list[WhiteFiChannel]:
    """Channels whose entire span lies within *free_indices*.

    This is the candidate set the AP scores with MCham: every UHF channel
    under the candidate must be free of incumbents at every node (the
    caller passes the indices free in the OR-ed spectrum map).

    >>> [str(c) for c in valid_channels({3, 4, 5}, 10)][:3]
    ['(F=ch3, W=5MHz)', '(F=ch4, W=5MHz)', '(F=ch5, W=5MHz)']
    """
    free = set(free_indices)
    return [
        channel
        for channel in enumerate_channels(
            num_channels, allow_gap_spanning=allow_gap_spanning
        )
        if all(i in free for i in channel.spanned_indices)
    ]


def channels_overlapping_index(
    uhf_index: int, num_channels: int = constants.NUM_UHF_CHANNELS
) -> Iterator[WhiteFiChannel]:
    """Yield every candidate channel whose span covers *uhf_index*."""
    for channel in enumerate_channels(num_channels):
        if channel.contains_index(uhf_index):
            yield channel


def count_by_width(
    channels: Sequence[WhiteFiChannel],
) -> dict[float, int]:
    """Histogram of *channels* by width (MHz)."""
    counts = {width: 0 for width in constants.CHANNEL_WIDTHS_MHZ}
    for channel in channels:
        counts[channel.width_mhz] += 1
    return counts
