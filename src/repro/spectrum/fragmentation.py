"""Contiguous-fragment analysis of spectrum maps.

Section 2.2: "UHF white spaces are fragmented due to the presence of
incumbents.  The size of each fragment can vary from 1 channel to several
channels."  Figure 2 plots the histogram of contiguous fragment widths
across urban, suburban, and rural locales.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.spectrum.spectrum_map import SpectrumMap


@dataclass(frozen=True)
class Fragment:
    """A maximal run of contiguous free UHF channels.

    Attributes:
        start: first free UHF channel index of the run.
        length: number of contiguous free channels.
    """

    start: int
    length: int

    @property
    def stop(self) -> int:
        """One past the last index of the fragment."""
        return self.start + self.length

    @property
    def indices(self) -> tuple[int, ...]:
        """The UHF channel indices comprising this fragment."""
        return tuple(range(self.start, self.stop))

    @property
    def width_mhz(self) -> float:
        """Physical width of the fragment in MHz (6 MHz per channel)."""
        return self.length * 6.0


def fragments(spectrum_map: SpectrumMap) -> list[Fragment]:
    """Extract maximal contiguous free fragments from *spectrum_map*.

    >>> fragments(SpectrumMap([1, 0, 0, 1, 0]))
    [Fragment(start=1, length=2), Fragment(start=4, length=1)]
    """
    result: list[Fragment] = []
    run_start: int | None = None
    for i, bit in enumerate(spectrum_map):
        if not bit:
            if run_start is None:
                run_start = i
        elif run_start is not None:
            result.append(Fragment(run_start, i - run_start))
            run_start = None
    if run_start is not None:
        result.append(Fragment(run_start, len(spectrum_map) - run_start))
    return result


def fragment_widths(spectrum_map: SpectrumMap) -> list[int]:
    """Fragment lengths (in UHF channels) of *spectrum_map*, in band order."""
    return [f.length for f in fragments(spectrum_map)]


def widest_fragment(spectrum_map: SpectrumMap) -> Fragment | None:
    """The largest contiguous free fragment, or None if nothing is free."""
    frags = fragments(spectrum_map)
    if not frags:
        return None
    return max(frags, key=lambda f: f.length)


def fragment_histogram(maps: Iterable[SpectrumMap]) -> Counter[int]:
    """Histogram of fragment widths (channels) across many locales.

    This is the quantity plotted in Figure 2: for each locale's spectrum
    map, count its contiguous fragments by width, aggregated over locales.
    """
    histogram: Counter[int] = Counter()
    for spectrum_map in maps:
        histogram.update(fragment_widths(spectrum_map))
    return histogram


def max_fragment_width(maps: Sequence[SpectrumMap]) -> int:
    """Largest fragment width (channels) seen across *maps* (0 if none free)."""
    best = 0
    for spectrum_map in maps:
        widest = widest_fragment(spectrum_map)
        if widest is not None:
            best = max(best, widest.length)
    return best


def single_fragment_map(
    fragment_length: int, num_channels: int, start: int = 0
) -> SpectrumMap:
    """A map whose only free spectrum is one fragment of *fragment_length*.

    Used by the Figure 8 discovery experiment, which sets "the spectrum map
    to have only one available fragment" and sweeps its width from 1 to 30.
    """
    if not 1 <= fragment_length <= num_channels:
        raise ValueError(
            f"fragment_length {fragment_length} out of range 1..{num_channels}"
        )
    if start < 0 or start + fragment_length > num_channels:
        raise ValueError(
            f"fragment [{start}, {start + fragment_length}) does not fit in "
            f"{num_channels} channels"
        )
    free = range(start, start + fragment_length)
    return SpectrumMap.from_free(free, num_channels)
