"""Synthetic TV-station geodata (the paper's TV Fool substitute).

Section 2.2 derives per-locale spectrum maps from the TV Fool dataset for
three settings — urban (top-10 cities), suburban (10 fast-growing
suburbs), rural (10 small towns) — and plots the histogram of contiguous
fragment widths (Figure 2).  Section 5.2 reuses the same maps for the
Figure 9 discovery experiment.

The dataset itself is proprietary terrain-model output, so we substitute a
generative model: TV-station count per locale scales with population
density, stations land on random UHF channels, and adjacent-market
stations cluster (urban dials pack stations next to each other).  The
generated maps match the paper's qualitative fragmentation claims:

* every setting has at least one locale with a >= 4-channel fragment;
* rural locales exhibit fragments up to 16 channels;
* urban locales are dominated by 1-2 channel fragments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro import constants
from repro.spectrum.spectrum_map import SpectrumMap

#: Recognised settings, in decreasing population density.
SETTINGS = ("urban", "suburban", "rural")

#: Mean number of occupied UHF channels (out of 30) per setting, chosen so
#: that the post-DTV-transition fragment histograms match Figure 2's shape.
_MEAN_OCCUPIED = {"urban": 16.0, "suburban": 11.0, "rural": 4.5}

#: Bounds on occupied-channel counts per setting.
_OCCUPIED_BOUNDS = {"urban": (13, 21), "suburban": (7, 15), "rural": (3, 8)}

#: Probability that a new station lands adjacent to an existing one
#: (stations in dense markets cluster on the dial).
_CLUSTERING = {"urban": 0.55, "suburban": 0.35, "rural": 0.1}


@dataclass(frozen=True)
class Locale:
    """One synthetic measurement location.

    Attributes:
        name: human-readable identifier (e.g. "urban-03").
        setting: one of "urban", "suburban", "rural".
        spectrum_map: incumbent occupancy at this locale.
    """

    name: str
    setting: str
    spectrum_map: SpectrumMap

    @property
    def num_free(self) -> int:
        """Number of incumbent-free UHF channels at this locale."""
        return self.spectrum_map.num_free()


def _sample_occupied_count(setting: str, rng: random.Random) -> int:
    """Draw the number of occupied channels for one locale."""
    mean = _MEAN_OCCUPIED[setting]
    lo, hi = _OCCUPIED_BOUNDS[setting]
    # Binomial around the mean keeps variance realistic without heavy tails.
    count = sum(rng.random() < mean / 30.0 for _ in range(30))
    return min(hi, max(lo, count))


def generate_locale(
    setting: str,
    rng: random.Random,
    name: str = "",
    num_channels: int = constants.NUM_UHF_CHANNELS,
) -> Locale:
    """Generate one locale's spectrum map for *setting*.

    Args:
        setting: "urban", "suburban", or "rural".
        rng: deterministic random source (pass ``random.Random(seed)``).
        name: optional locale label.
        num_channels: size of the UHF index space.

    Raises:
        ValueError: for an unrecognised setting.
    """
    if setting not in SETTINGS:
        raise ValueError(f"unknown setting {setting!r}; expected one of {SETTINGS}")
    target = _sample_occupied_count(setting, rng)
    target = min(target, num_channels - 1)  # never fully occupy the band
    occupied: set[int] = set()
    clustering = _CLUSTERING[setting]
    while len(occupied) < target:
        if occupied and rng.random() < clustering:
            seed_channel = rng.choice(sorted(occupied))
            candidate = seed_channel + rng.choice((-1, 1))
        else:
            candidate = rng.randrange(num_channels)
        if 0 <= candidate < num_channels:
            occupied.add(candidate)
    return Locale(
        name=name or f"{setting}-{rng.randrange(10_000):04d}",
        setting=setting,
        spectrum_map=SpectrumMap.from_occupied(occupied, num_channels),
    )


def generate_locales(
    setting: str,
    count: int = 10,
    seed: int = 2009,
    num_channels: int = constants.NUM_UHF_CHANNELS,
) -> list[Locale]:
    """Generate *count* locales for one setting (Figure 2 uses 10 each)."""
    rng = random.Random(f"{seed}:{setting}")
    return [
        generate_locale(setting, rng, name=f"{setting}-{i:02d}", num_channels=num_channels)
        for i in range(count)
    ]


def generate_study(
    count_per_setting: int = 10, seed: int = 2009
) -> dict[str, list[Locale]]:
    """Generate the full three-setting study used by Figures 2 and 9."""
    return {
        setting: generate_locales(setting, count_per_setting, seed)
        for setting in SETTINGS
    }


def iter_maps(locales: Sequence[Locale]) -> Iterator[SpectrumMap]:
    """Yield the spectrum maps of *locales* in order."""
    for locale in locales:
        yield locale.spectrum_map
