"""Incumbent (primary user) models: TV stations and wireless microphones.

Two incumbent classes matter to WhiteFi (Section 2):

* **TV stations** — effectively static occupancy over the timescales of a
  network session; they define the baseline spectrum map.
* **Wireless microphones** — the source of *temporal variation*: "Wireless
  mics can be turned on at any time" (Section 2.3), stay active for
  bounded durations, and may appear on any UHF channel.

``IncumbentField`` composes both into a queryable, time-varying occupancy
model that drives spectrum maps and disconnection events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import random

from repro import constants
from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap


@dataclass(frozen=True)
class TvStation:
    """A TV broadcast occupying one UHF channel (static incumbent).

    Attributes:
        uhf_index: occupied usable-UHF-channel index.
        power_dbm: received signal strength at the measurement point; used
            only to check against the scanner's detection threshold.
    """

    uhf_index: int
    power_dbm: float = -60.0

    def detectable(self, threshold_dbm: float = constants.TV_DETECTION_THRESHOLD_DBM) -> bool:
        """True if a compliant scanner must treat this channel as occupied."""
        return self.power_dbm >= threshold_dbm


@dataclass(frozen=True)
class MicSession:
    """One contiguous interval of wireless-microphone activity."""

    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise SpectrumMapError(
                f"mic session ends ({self.end_us}) before it starts ({self.start_us})"
            )

    def active_at(self, t_us: float) -> bool:
        """True when the session covers time *t_us* (half-open interval)."""
        return self.start_us <= t_us < self.end_us


@dataclass
class WirelessMicrophone:
    """A wireless microphone with a schedule of on/off sessions.

    Attributes:
        uhf_index: UHF channel the microphone transmits on.
        sessions: activity intervals, in microseconds; may be built up
            front (scripted experiments) or generated (random workloads).
        power_dbm: received power; mics are detectable at very low levels.
    """

    uhf_index: int
    sessions: list[MicSession] = field(default_factory=list)
    power_dbm: float = -80.0

    def add_session(self, start_us: float, end_us: float) -> None:
        """Append an activity interval (must not precede existing ones)."""
        self.sessions.append(MicSession(start_us, end_us))
        self.sessions.sort(key=lambda s: s.start_us)

    def active_at(self, t_us: float) -> bool:
        """True when the microphone is transmitting at *t_us*."""
        return any(s.active_at(t_us) for s in self.sessions)

    def next_transition_after(self, t_us: float) -> float | None:
        """Earliest session start/end strictly after *t_us*, or None."""
        candidates = [
            edge
            for s in self.sessions
            for edge in (s.start_us, s.end_us)
            if edge > t_us
        ]
        return min(candidates) if candidates else None

    def detectable(
        self, threshold_dbm: float = constants.MIC_DETECTION_THRESHOLD_DBM
    ) -> bool:
        """True if a compliant scanner must react to this microphone."""
        return self.power_dbm >= threshold_dbm

    @classmethod
    def random_schedule(
        cls,
        uhf_index: int,
        horizon_us: float,
        rng: random.Random,
        mean_on_us: float = 600e6,
        mean_off_us: float = 3600e6,
    ) -> "WirelessMicrophone":
        """A microphone with exponentially distributed on/off periods.

        Models the paper's observation that mic use is "highly
        unpredictable" — intermittent, for limited durations, on any
        channel (Section 2.3).
        """
        mic = cls(uhf_index)
        t = rng.expovariate(1.0 / mean_off_us)
        while t < horizon_us:
            duration = rng.expovariate(1.0 / mean_on_us)
            mic.add_session(t, min(t + duration, horizon_us))
            t += duration + rng.expovariate(1.0 / mean_off_us)
        return mic


class IncumbentField:
    """Composite incumbent occupancy: static TV stations + dynamic mics.

    The field answers two questions WhiteFi nodes ask their scanner:

    * which UHF channels are occupied *now* (→ spectrum map), and
    * when does occupancy next change (→ event scheduling in simulations).
    """

    def __init__(
        self,
        num_channels: int = constants.NUM_UHF_CHANNELS,
        tv_stations: Iterable[TvStation] = (),
        microphones: Iterable[WirelessMicrophone] = (),
    ):
        self.num_channels = num_channels
        self.tv_stations = list(tv_stations)
        self.microphones = list(microphones)
        for tv in self.tv_stations:
            self._check_index(tv.uhf_index)
        for mic in self.microphones:
            self._check_index(mic.uhf_index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_channels:
            raise SpectrumMapError(
                f"incumbent on UHF index {index}, outside 0..{self.num_channels - 1}"
            )

    def add_tv_station(self, station: TvStation) -> None:
        """Register a static TV incumbent."""
        self._check_index(station.uhf_index)
        self.tv_stations.append(station)

    def add_microphone(self, mic: WirelessMicrophone) -> None:
        """Register a wireless microphone."""
        self._check_index(mic.uhf_index)
        self.microphones.append(mic)

    def occupied_indices(self, t_us: float = 0.0) -> set[int]:
        """UHF channels occupied by any detectable incumbent at *t_us*."""
        occupied = {tv.uhf_index for tv in self.tv_stations if tv.detectable()}
        occupied.update(
            mic.uhf_index
            for mic in self.microphones
            if mic.detectable() and mic.active_at(t_us)
        )
        return occupied

    def spectrum_map(self, t_us: float = 0.0) -> SpectrumMap:
        """Snapshot spectrum map at time *t_us*."""
        return SpectrumMap.from_occupied(
            self.occupied_indices(t_us), self.num_channels
        )

    def mic_active_on(self, uhf_index: int, t_us: float) -> bool:
        """True when a detectable mic is transmitting on *uhf_index* at *t_us*."""
        return any(
            mic.uhf_index == uhf_index and mic.detectable() and mic.active_at(t_us)
            for mic in self.microphones
        )

    def next_transition_after(self, t_us: float) -> float | None:
        """Earliest future mic on/off edge after *t_us* (TV is static)."""
        edges = [
            edge
            for mic in self.microphones
            if (edge := mic.next_transition_after(t_us)) is not None
        ]
        return min(edges) if edges else None


def field_from_spectrum_map(spectrum_map: SpectrumMap) -> IncumbentField:
    """Build a static field (TV stations only) matching *spectrum_map*."""
    return IncumbentField(
        num_channels=len(spectrum_map),
        tv_stations=[TvStation(i) for i in spectrum_map.occupied_indices()],
    )
