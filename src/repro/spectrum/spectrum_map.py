"""Per-node spectrum maps (incumbent occupancy bit-vectors).

Section 4.1: "The AP and each client maintains a spectrum map which is a
bit-vector {u0, ..., uk} where each ui represents whether the corresponding
UHF channel is currently in use by an incumbent user ... ui = 1 if the
channel is in use by an incumbent, and 0 otherwise."

The key operation is the bitwise OR across the AP's and the clients' maps,
which yields the set of UHF channels free at *all* nodes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro import constants
from repro.errors import SpectrumMapError


class SpectrumMap:
    """Immutable incumbent-occupancy bit-vector over the usable UHF channels.

    ``map[i] == 1`` means UHF channel index ``i`` is occupied by an
    incumbent (TV station or wireless microphone) and must not be used.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int]):
        bits = tuple(int(b) for b in bits)
        if not bits:
            raise SpectrumMapError("spectrum map cannot be empty")
        if any(b not in (0, 1) for b in bits):
            raise SpectrumMapError(f"spectrum map bits must be 0/1, got {bits!r}")
        self._bits = bits

    # -- constructors -------------------------------------------------------

    @classmethod
    def all_free(cls, num_channels: int = constants.NUM_UHF_CHANNELS) -> "SpectrumMap":
        """A map with every UHF channel free of incumbents."""
        return cls([0] * num_channels)

    @classmethod
    def all_occupied(
        cls, num_channels: int = constants.NUM_UHF_CHANNELS
    ) -> "SpectrumMap":
        """A map with every UHF channel occupied by an incumbent."""
        return cls([1] * num_channels)

    @classmethod
    def from_occupied(
        cls,
        occupied_indices: Iterable[int],
        num_channels: int = constants.NUM_UHF_CHANNELS,
    ) -> "SpectrumMap":
        """Build a map from the set of occupied UHF channel indices."""
        occupied = set(occupied_indices)
        bad = [i for i in occupied if not 0 <= i < num_channels]
        if bad:
            raise SpectrumMapError(
                f"occupied indices {bad} out of range 0..{num_channels - 1}"
            )
        return cls([1 if i in occupied else 0 for i in range(num_channels)])

    @classmethod
    def from_free(
        cls,
        free_indices: Iterable[int],
        num_channels: int = constants.NUM_UHF_CHANNELS,
    ) -> "SpectrumMap":
        """Build a map from the set of *free* UHF channel indices."""
        free = set(free_indices)
        bad = [i for i in free if not 0 <= i < num_channels]
        if bad:
            raise SpectrumMapError(
                f"free indices {bad} out of range 0..{num_channels - 1}"
            )
        return cls([0 if i in free else 1 for i in range(num_channels)])

    @classmethod
    def from_tv_channels(
        cls,
        occupied_tv_channels: Iterable[int],
        plan=None,
    ) -> "SpectrumMap":
        """Build a map from occupied TV channel *numbers* (e.g. 21, 44)."""
        from repro.spectrum.channels import US_BAND_PLAN

        plan = plan or US_BAND_PLAN
        return cls.from_occupied(
            (plan.index_of(n) for n in occupied_tv_channels), plan.num_channels
        )

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __getitem__(self, index: int) -> int:
        return self._bits[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpectrumMap):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"SpectrumMap({''.join(str(b) for b in self._bits)})"

    # -- queries --------------------------------------------------------------

    @property
    def bits(self) -> tuple[int, ...]:
        """The raw occupancy bits."""
        return self._bits

    def is_occupied(self, index: int) -> bool:
        """True when UHF channel *index* is in use by an incumbent."""
        return bool(self._bits[index])

    def is_free(self, index: int) -> bool:
        """True when UHF channel *index* is free of incumbents."""
        return not self._bits[index]

    def free_indices(self) -> tuple[int, ...]:
        """Indices of incumbent-free UHF channels, ascending."""
        return tuple(i for i, b in enumerate(self._bits) if not b)

    def occupied_indices(self) -> tuple[int, ...]:
        """Indices of incumbent-occupied UHF channels, ascending."""
        return tuple(i for i, b in enumerate(self._bits) if b)

    def num_free(self) -> int:
        """Count of free UHF channels."""
        return len(self._bits) - sum(self._bits)

    def span_is_free(self, indices: Iterable[int]) -> bool:
        """True when every UHF channel in *indices* is free."""
        return all(self.is_free(i) for i in indices)

    # -- algebra ---------------------------------------------------------------

    def _check_compatible(self, other: "SpectrumMap") -> None:
        if len(self) != len(other):
            raise SpectrumMapError(
                f"spectrum maps have different sizes: {len(self)} vs {len(other)}"
            )

    def union(self, other: "SpectrumMap") -> "SpectrumMap":
        """Bitwise OR: occupied anywhere => occupied in the result.

        This is the first step of channel probing (Section 4.1): OR-ing the
        clients' and AP's maps yields the channels available at all nodes.
        """
        self._check_compatible(other)
        return SpectrumMap(a | b for a, b in zip(self._bits, other._bits))

    def __or__(self, other: "SpectrumMap") -> "SpectrumMap":
        return self.union(other)

    def intersection(self, other: "SpectrumMap") -> "SpectrumMap":
        """Bitwise AND of occupancy (occupied at both nodes)."""
        self._check_compatible(other)
        return SpectrumMap(a & b for a, b in zip(self._bits, other._bits))

    def __and__(self, other: "SpectrumMap") -> "SpectrumMap":
        return self.intersection(other)

    def hamming_distance(self, other: "SpectrumMap") -> int:
        """Number of UHF channels whose availability differs.

        Section 2.1 uses this across building pairs: "the number of
        channels available at one location but unavailable at another".
        """
        self._check_compatible(other)
        return sum(a != b for a, b in zip(self._bits, other._bits))

    def with_occupied(self, *indices: int) -> "SpectrumMap":
        """Copy of this map with the given indices marked occupied."""
        bits = list(self._bits)
        for i in indices:
            if not 0 <= i < len(bits):
                raise SpectrumMapError(
                    f"index {i} out of range 0..{len(bits) - 1}"
                )
            bits[i] = 1
        return SpectrumMap(bits)

    def with_free(self, *indices: int) -> "SpectrumMap":
        """Copy of this map with the given indices marked free."""
        bits = list(self._bits)
        for i in indices:
            if not 0 <= i < len(bits):
                raise SpectrumMapError(
                    f"index {i} out of range 0..{len(bits) - 1}"
                )
            bits[i] = 0
        return SpectrumMap(bits)


def union_all(maps: Sequence[SpectrumMap]) -> SpectrumMap:
    """OR together every map in *maps* (channels free at all nodes remain free).

    Raises:
        SpectrumMapError: if *maps* is empty or the maps disagree on size.
    """
    if not maps:
        raise SpectrumMapError("union_all requires at least one spectrum map")
    result = maps[0]
    for other in maps[1:]:
        result = result.union(other)
    return result
