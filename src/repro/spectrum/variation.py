"""Spatial-variation models for spectrum availability.

Two models from the paper:

* **Building campaign** (Section 2.1): spectrum measured in 9 campus
  buildings shows a median pairwise Hamming distance close to 7 — nearby
  locations disagree on roughly seven channels' availability.  We model a
  shared regional map perturbed per building by local obstructions.
* **Flip model** (Section 5.4, Figure 12): "for each client (and AP) and
  for each UHF channel i, we randomly flip the entry u_i with probability
  P", sweeping P from 0 (no variation) to 0.14 (large variation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from statistics import median
from typing import Sequence

from repro import constants
from repro.spectrum.spectrum_map import SpectrumMap


def flip_map(
    base: SpectrumMap, flip_probability: float, rng: random.Random
) -> SpectrumMap:
    """Independently flip each occupancy bit with *flip_probability*.

    This is exactly the Figure 12 perturbation.  Flips go both ways: a
    free channel may become locally occupied (an obstruction revealed a
    transmitter, or a local mic) and vice versa.

    Raises:
        ValueError: if the probability is outside [0, 1].
    """
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(
            f"flip probability {flip_probability!r} outside [0, 1]"
        )
    return SpectrumMap(
        (1 - bit) if rng.random() < flip_probability else bit for bit in base
    )


def per_node_maps(
    base: SpectrumMap,
    num_nodes: int,
    flip_probability: float,
    seed: int = 0,
) -> list[SpectrumMap]:
    """Per-node maps for an AP plus clients under the flip model.

    Returns ``num_nodes`` maps (index 0 conventionally the AP's).
    """
    rng = random.Random(f"{seed}:{round(flip_probability * 1e6)}")
    return [flip_map(base, flip_probability, rng) for _ in range(num_nodes)]


@dataclass(frozen=True)
class BuildingCampaign:
    """A synthetic reproduction of the 9-building measurement campaign.

    Attributes:
        buildings: per-building spectrum maps, in building order.
    """

    buildings: tuple[SpectrumMap, ...]

    def pairwise_hamming(self) -> list[int]:
        """Hamming distances across all building pairs (36 pairs for 9)."""
        return [
            a.hamming_distance(b) for a, b in combinations(self.buildings, 2)
        ]

    def median_hamming(self) -> float:
        """Median pairwise Hamming distance (the paper's headline ~7)."""
        return median(self.pairwise_hamming())


def generate_building_campaign(
    num_buildings: int = 9,
    seed: int = 2009,
    num_channels: int = constants.NUM_UHF_CHANNELS,
    regional_occupied: int = 13,
    local_flip_probability: float = 0.135,
) -> BuildingCampaign:
    """Generate a campus measurement campaign.

    A regional incumbent map (TV stations visible across the whole campus)
    is perturbed per building with independent bit flips representing
    construction-material shadowing and local wireless microphones.  The
    default flip probability is calibrated so the median pairwise Hamming
    distance lands near the paper's measured value of 7:  two buildings
    differ on a channel when exactly one of two independent flips fired,
    i.e. with probability ``2p(1-p)``; with 30 channels and p = 0.135 the
    expected distance is ``30 * 2 * 0.135 * 0.865 ≈ 7.0``.

    Args:
        num_buildings: number of measurement sites (paper: 9).
        seed: RNG seed for reproducibility.
        num_channels: UHF index space size.
        regional_occupied: TV channels occupied region-wide.
        local_flip_probability: per-building per-channel flip probability.
    """
    rng = random.Random(seed)
    regional = SpectrumMap.from_occupied(
        rng.sample(range(num_channels), regional_occupied), num_channels
    )
    buildings = tuple(
        flip_map(regional, local_flip_probability, rng)
        for _ in range(num_buildings)
    )
    return BuildingCampaign(buildings)


def availability_disagreement(maps: Sequence[SpectrumMap]) -> float:
    """Fraction of (node pair, channel) combinations that disagree.

    A compact summary of spatial variation used in tests: 0 means all
    nodes agree everywhere.
    """
    if len(maps) < 2:
        return 0.0
    pairs = list(combinations(maps, 2))
    total = len(pairs) * len(maps[0])
    disagreements = sum(a.hamming_distance(b) for a, b in pairs)
    return disagreements / total
