"""repro.telemetry — observability with two clocks kept strictly apart.

* :mod:`repro.telemetry.metrics` — the **sim-clock** metrics registry:
  counters/gauges/histograms (fixed deterministic buckets, labeled
  series, mergeable snapshots) plus per-tick time series.  Deterministic
  by contract: scalar and vector engines, parallel and sequential
  runners, all produce byte-identical snapshots for the same spec.
  Enabled through the ``telemetry`` experiment-spec knob.
* :mod:`repro.telemetry.profiler` — the **wall-clock** phase profiler
  for the vector engine's tick phases and the ``ParallelRunner``
  fan-out.  Non-deterministic by nature, so it is never spec-driven and
  never enters a report; callers attach it explicitly
  (``make profile``, ``bench_scale``).
* :mod:`repro.telemetry.export` — deterministic exporters: canonical
  JSON, Prometheus text exposition, and columnar npz for the tick
  series.
"""

from repro.telemetry.export import (
    snapshot_to_json,
    snapshot_to_prometheus,
    write_metrics,
    write_series_npz,
)
from repro.telemetry.metrics import (
    DEFAULT_BATCH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS_US,
    NULL_TELEMETRY,
    TELEMETRY_MODES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    histogram_quantile,
    merge_snapshots,
    metric_key,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
)

__all__ = [
    "Counter",
    "DEFAULT_BATCH_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS_US",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TELEMETRY",
    "NullProfiler",
    "NullTelemetry",
    "PhaseProfiler",
    "TELEMETRY_MODES",
    "histogram_quantile",
    "merge_snapshots",
    "metric_key",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "write_metrics",
    "write_series_npz",
]
