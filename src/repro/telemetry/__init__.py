"""repro.telemetry — observability with two clocks kept strictly apart.

* :mod:`repro.telemetry.metrics` — the **sim-clock** metrics registry:
  counters/gauges/histograms (fixed deterministic buckets, labeled
  series, mergeable snapshots) plus per-tick time series.  Deterministic
  by contract: scalar and vector engines, parallel and sequential
  runners, all produce byte-identical snapshots for the same spec.
  Enabled through the ``telemetry`` experiment-spec knob.
* :mod:`repro.telemetry.spans` — the **sim-clock** distributed-tracing
  layer: request-scoped parent→child span trees across the cluster
  tier (admission, token-bucket wait, shard fan-out, cache lookups,
  stale serves, push fan-out), with critical-path extraction,
  tail-latency attribution, histogram-bucket exemplars, and
  deterministic sampling.  Enabled through the ``spans`` /
  ``span_sample`` experiment-spec knobs; byte-identical across
  engines.
* :mod:`repro.telemetry.profiler` — the **wall-clock** phase profiler
  for the vector engine's tick phases and the ``ParallelRunner``
  fan-out.  Non-deterministic by nature, so it is never spec-driven and
  never enters a report; callers attach it explicitly
  (``make profile``, ``bench_scale``).
* :mod:`repro.telemetry.export` — deterministic exporters: canonical
  JSON, Prometheus text exposition, columnar npz for the tick series,
  and span JSONL / Chrome trace events for span tables.
"""

from repro.telemetry.export import (
    snapshot_to_json,
    snapshot_to_prometheus,
    spans_to_chrome,
    spans_to_jsonl,
    write_metrics,
    write_series_npz,
    write_spans,
)
from repro.telemetry.metrics import (
    DEFAULT_BATCH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS_US,
    NULL_TELEMETRY,
    TELEMETRY_MODES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    histogram_quantile,
    merge_snapshots,
    metric_key,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
)
from repro.telemetry.spans import (
    NULL_SPANS,
    SPANS_MODES,
    NullSpans,
    SpanRecorder,
    critical_path,
    lookup_steps,
    parse_span_sample,
    path_self_times,
    tail_attribution,
    trace_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_BATCH_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS_US",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NullProfiler",
    "NullSpans",
    "NullTelemetry",
    "PhaseProfiler",
    "SPANS_MODES",
    "SpanRecorder",
    "TELEMETRY_MODES",
    "critical_path",
    "histogram_quantile",
    "lookup_steps",
    "merge_snapshots",
    "metric_key",
    "parse_span_sample",
    "path_self_times",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "spans_to_chrome",
    "spans_to_jsonl",
    "tail_attribution",
    "trace_spans",
    "write_metrics",
    "write_series_npz",
    "write_spans",
]
