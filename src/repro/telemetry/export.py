"""Deterministic exporters for metric snapshots.

Three formats, all byte-stable for a given snapshot (which is itself
deterministic for a given spec — see :mod:`repro.telemetry.metrics`):

* **canonical JSON** — the snapshot verbatim, sorted keys, compact
  separators; the archival/diffable form.
* **Prometheus text exposition** — counters/gauges/histograms rendered
  in the scrape format (cumulative ``le`` buckets, ``_sum``/``_count``);
  per-tick series are a trace concern and are not exposed here.
* **columnar npz** — the per-tick series through
  :func:`repro.traces.columnar.write_columns_npz` (numpy gated; the
  JSON/Prometheus paths stay importable without it).

Span tables (:meth:`repro.telemetry.spans.SpanRecorder.snapshot`) get
two formats of their own, equally byte-stable:

* **span JSONL** — one meta header line (the table minus its spans)
  followed by one canonical-JSON span per line; greppable, diffable,
  streamable.
* **Chrome trace events** — the ``traceEvents`` JSON the Chrome
  tracing UI and Perfetto load: one complete ``"X"`` event per span,
  microsecond timestamps straight off the sim clock, one ``tid`` lane
  per trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_metrics",
    "write_series_npz",
    "write_spans",
]


def snapshot_to_json(snapshot: Mapping[str, Any]) -> str:
    """Canonical JSON (sorted keys, compact separators, one newline)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def _format_value(value: float) -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(int(value))
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _split_key(key: str) -> tuple[str, str]:
    """``name{a="b"}`` → (``name``, ``a="b"``); no labels → (key, "")."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _labeled(name: str, labels: str, extra: str = "") -> str:
    inner = ",".join(part for part in (labels, extra) if part)
    return f"{name}{{{inner}}}" if inner else name


def snapshot_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    Keys are already Prometheus-rendered (see ``metric_key``), so
    counters and gauges emit directly; histograms expand their
    non-cumulative bucket counts into the cumulative ``le`` form plus
    the implicit ``+Inf`` bucket.  ``# TYPE`` lines appear once per
    base metric name; everything iterates in sorted order, so the text
    is byte-stable.
    """
    lines: list[str] = []

    def emit_family(family: Mapping[str, Any], kind: str) -> None:
        last_base = None
        for key in sorted(family):
            base, _ = _split_key(key)
            if base != last_base:
                lines.append(f"# TYPE {base} {kind}")
                last_base = base
            lines.append(f"{key} {_format_value(family[key])}")

    emit_family(snapshot.get("counters", {}), "counter")
    emit_family(snapshot.get("gauges", {}), "gauge")

    histograms = snapshot.get("histograms", {})
    last_base = None
    for key in sorted(histograms):
        hist = histograms[key]
        base, labels = _split_key(key)
        if base != last_base:
            lines.append(f"# TYPE {base} histogram")
            last_base = base
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            bucket = _labeled(
                f"{base}_bucket", labels, f'le="{_format_value(bound)}"'
            )
            lines.append(f"{bucket} {cumulative}")
        cumulative += hist["counts"][len(hist["bounds"])]
        bucket = _labeled(f"{base}_bucket", labels, 'le="+Inf"')
        lines.append(f"{bucket} {cumulative}")
        lines.append(
            f"{_labeled(f'{base}_sum', labels)} {_format_value(hist['sum'])}"
        )
        lines.append(f"{_labeled(f'{base}_count', labels)} {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(
    snapshot: Mapping[str, Any],
    json_path: str | Path | None = None,
    prom_path: str | Path | None = None,
) -> None:
    """Write the JSON and/or Prometheus renderings of one snapshot."""
    if json_path is not None:
        json_path = Path(json_path)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(snapshot_to_json(snapshot))
    if prom_path is not None:
        prom_path = Path(prom_path)
        prom_path.parent.mkdir(parents=True, exist_ok=True)
        prom_path.write_text(snapshot_to_prometheus(snapshot))


def spans_to_jsonl(table: Mapping[str, Any]) -> str:
    """Render one span table as deterministic JSONL.

    Line 1 is the table's metadata (every key except ``"spans"``) as
    canonical JSON; each following line is one span, in the table's
    own deterministic order (traces sorted by root start time, spans
    preorder within each trace).  Round-trips losslessly: the header
    plus the span lines reassemble the exact table.
    """
    meta = {k: v for k, v in table.items() if k != "spans"}
    lines = [json.dumps(meta, sort_keys=True, separators=(",", ":"))]
    for span in table.get("spans", []):
        lines.append(json.dumps(span, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def spans_to_chrome(table: Mapping[str, Any]) -> str:
    """Render one span table as Chrome trace-event JSON (Perfetto-loadable).

    Every span becomes one complete ``"X"`` duration event with
    microsecond ``ts``/``dur`` straight off the sim clock, ``name`` =
    span kind, ``cat`` = site, and the trace/span/parent ids in
    ``args``.  Traces map to ``tid`` lanes in first-appearance order
    (the table's deterministic trace order), so one request's tree
    stacks in one lane.
    """
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in table.get("spans", []):
        trace = span["trace"]
        if trace not in tids:
            tids[trace] = len(tids) + 1
        args = dict(span["attrs"])
        args["trace"] = trace
        args["span"] = span["span"]
        args["parent"] = span["parent"]
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[trace],
                "ts": span["t0_us"],
                "dur": span["t1_us"] - span["t0_us"],
                "name": span["kind"],
                "cat": span["site"],
                "args": args,
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_spans(
    table: Mapping[str, Any],
    jsonl_path: str | Path | None = None,
    chrome_path: str | Path | None = None,
) -> None:
    """Write the JSONL and/or Chrome-trace renderings of one span table."""
    if jsonl_path is not None:
        jsonl_path = Path(jsonl_path)
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        jsonl_path.write_text(spans_to_jsonl(table))
    if chrome_path is not None:
        chrome_path = Path(chrome_path)
        chrome_path.parent.mkdir(parents=True, exist_ok=True)
        chrome_path.write_text(spans_to_chrome(table))


def write_series_npz(
    snapshot: Mapping[str, Any], npz_path: str | Path
) -> dict[str, Any]:
    """Export the per-tick series as a columnar npz archive.

    Requires numpy (imported lazily, like every columnar path); raises
    ``SimulationError`` when the snapshot recorded no series.
    """
    from repro.errors import SimulationError
    from repro.traces.columnar import write_columns_npz

    series = snapshot.get("series", {})
    if not series:
        raise SimulationError("snapshot has no per-tick series to export")
    return write_columns_npz(
        npz_path, dict(series), meta={"source": "repro.telemetry"}
    )
