"""Deterministic exporters for metric snapshots.

Three formats, all byte-stable for a given snapshot (which is itself
deterministic for a given spec — see :mod:`repro.telemetry.metrics`):

* **canonical JSON** — the snapshot verbatim, sorted keys, compact
  separators; the archival/diffable form.
* **Prometheus text exposition** — counters/gauges/histograms rendered
  in the scrape format (cumulative ``le`` buckets, ``_sum``/``_count``);
  per-tick series are a trace concern and are not exposed here.
* **columnar npz** — the per-tick series through
  :func:`repro.traces.columnar.write_columns_npz` (numpy gated; the
  JSON/Prometheus paths stay importable without it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "write_metrics",
    "write_series_npz",
]


def snapshot_to_json(snapshot: Mapping[str, Any]) -> str:
    """Canonical JSON (sorted keys, compact separators, one newline)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def _format_value(value: float) -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(int(value))
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _split_key(key: str) -> tuple[str, str]:
    """``name{a="b"}`` → (``name``, ``a="b"``); no labels → (key, "")."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _labeled(name: str, labels: str, extra: str = "") -> str:
    inner = ",".join(part for part in (labels, extra) if part)
    return f"{name}{{{inner}}}" if inner else name


def snapshot_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    Keys are already Prometheus-rendered (see ``metric_key``), so
    counters and gauges emit directly; histograms expand their
    non-cumulative bucket counts into the cumulative ``le`` form plus
    the implicit ``+Inf`` bucket.  ``# TYPE`` lines appear once per
    base metric name; everything iterates in sorted order, so the text
    is byte-stable.
    """
    lines: list[str] = []

    def emit_family(family: Mapping[str, Any], kind: str) -> None:
        last_base = None
        for key in sorted(family):
            base, _ = _split_key(key)
            if base != last_base:
                lines.append(f"# TYPE {base} {kind}")
                last_base = base
            lines.append(f"{key} {_format_value(family[key])}")

    emit_family(snapshot.get("counters", {}), "counter")
    emit_family(snapshot.get("gauges", {}), "gauge")

    histograms = snapshot.get("histograms", {})
    last_base = None
    for key in sorted(histograms):
        hist = histograms[key]
        base, labels = _split_key(key)
        if base != last_base:
            lines.append(f"# TYPE {base} histogram")
            last_base = base
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            bucket = _labeled(
                f"{base}_bucket", labels, f'le="{_format_value(bound)}"'
            )
            lines.append(f"{bucket} {cumulative}")
        cumulative += hist["counts"][len(hist["bounds"])]
        bucket = _labeled(f"{base}_bucket", labels, 'le="+Inf"')
        lines.append(f"{bucket} {cumulative}")
        lines.append(
            f"{_labeled(f'{base}_sum', labels)} {_format_value(hist['sum'])}"
        )
        lines.append(f"{_labeled(f'{base}_count', labels)} {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(
    snapshot: Mapping[str, Any],
    json_path: str | Path | None = None,
    prom_path: str | Path | None = None,
) -> None:
    """Write the JSON and/or Prometheus renderings of one snapshot."""
    if json_path is not None:
        json_path = Path(json_path)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(snapshot_to_json(snapshot))
    if prom_path is not None:
        prom_path = Path(prom_path)
        prom_path.parent.mkdir(parents=True, exist_ok=True)
        prom_path.write_text(snapshot_to_prometheus(snapshot))


def write_series_npz(
    snapshot: Mapping[str, Any], npz_path: str | Path
) -> dict[str, Any]:
    """Export the per-tick series as a columnar npz archive.

    Requires numpy (imported lazily, like every columnar path); raises
    ``SimulationError`` when the snapshot recorded no series.
    """
    from repro.errors import SimulationError
    from repro.traces.columnar import write_columns_npz

    series = snapshot.get("series", {})
    if not series:
        raise SimulationError("snapshot has no per-tick series to export")
    return write_columns_npz(
        npz_path, dict(series), meta={"source": "repro.telemetry"}
    )
