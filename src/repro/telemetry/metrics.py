"""The sim-clock metrics registry: counters, gauges, histograms, series.

Everything in this module is clocked by **simulation time** and is
therefore deterministic: two runs of the same spec — scalar or vector
engine, parallel or sequential — produce byte-identical snapshots.
That determinism is a contract, exactly like the byte-identical report
contract the engines already honor, and it is what makes a metric
snapshot cacheable, diffable, and comparable across PRs.  Wall-clock
observation lives in :mod:`repro.telemetry.profiler` and never mixes
into a registry.

Design points:

* **Fixed histogram buckets.**  A :class:`Histogram` is created with an
  explicit, immutable bound tuple (defaults below), so bucket layout is
  part of the snapshot contract — p50/p99/p999 read off the same edges
  everywhere, and snapshots merge bucket-by-bucket.
* **Labeled series.**  ``registry.counter("wsdb_queries", shard=3)``
  names the series ``wsdb_queries{shard="3"}`` — already the Prometheus
  rendering, so the exporter never re-parses keys.
* **Mergeable snapshots.**  :func:`merge_snapshots` sums counters and
  histograms (gauges take the max — high-water semantics), which is how
  per-shard or per-run registries aggregate.
* **The null object.**  Drivers accept ``telemetry=None`` and substitute
  :data:`NULL_TELEMETRY`; every hook site guards on ``.enabled``, so a
  run with telemetry off executes the exact pre-existing code path and
  its report stays byte-identical.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from math import ceil
from typing import Any, Mapping

from repro.errors import SimulationError

__all__ = [
    "Counter",
    "DEFAULT_BATCH_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS_US",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TELEMETRY_MODES",
    "histogram_quantile",
    "merge_snapshots",
    "metric_key",
]

#: The values the ``telemetry`` experiment-spec knob accepts.  "off"
#: (and the None default) runs the byte-identical pre-telemetry path;
#: "on" attaches a fresh :class:`MetricsRegistry` to the run and adds a
#: ``telemetry`` snapshot to the report.
TELEMETRY_MODES = ("off", "on")

#: Default request-latency bucket bounds (simulation microseconds).
#: The sub-tick edges are groundwork for the ROADMAP's async service
#: tier; today's synchronous frontend serves within the tick, so
#: admitted requests land in the first bucket and deferred re-checks
#: land on tick multiples.
DEFAULT_LATENCY_BOUNDS_US = (
    0.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    2_000_000.0,
    5_000_000.0,
    15_000_000.0,
    60_000_000.0,
    300_000_000.0,
)

#: Default batch-size bucket bounds (requests per frontend burst).
DEFAULT_BATCH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """The canonical series key: Prometheus-rendered name + labels.

    Labels sort by key, so one logical series always renders to one
    string — the property flat snapshot dicts and the exporter rely on.
    """
    if not _NAME_RE.match(name):
        raise SimulationError(f"invalid metric name {name!r}")
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise SimulationError(
                f"counters only increase; got inc({amount!r})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucket counts plus sum/count.

    ``bounds`` are inclusive upper edges (Prometheus ``le`` semantics);
    one implicit overflow bucket catches everything above the last
    bound.  Counts are stored per-bucket (non-cumulative); the exporter
    renders the cumulative ``le`` form.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_US):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise SimulationError(
                f"histogram bounds must be strictly increasing, got {bounds!r}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


def histogram_quantile(snapshot: Mapping[str, Any], q: float) -> float:
    """The *q*-quantile upper bound of one snapshot histogram entry.

    Reads the ``{"bounds", "counts", "count"}`` plain-data form.  The
    answer is the inclusive upper edge of the bucket holding the
    quantile rank — the conventional histogram-quantile estimate; the
    overflow bucket reports ``inf``.  An empty histogram reports 0.0
    (a fleet that was never asked has no latency, not an error — the
    zero-denominator contract the stats ratios also follow).
    """
    if not 0.0 <= q <= 1.0:
        raise SimulationError(f"quantile must be in [0, 1], got {q!r}")
    total = snapshot["count"]
    if not total:
        return 0.0
    rank = max(1, min(total, ceil(q * total)))
    seen = 0
    for bound, count in zip(snapshot["bounds"], snapshot["counts"]):
        seen += count
        if seen >= rank:
            return float(bound)
    return float("inf")


class MetricsRegistry:
    """A deterministic, sim-clock metrics registry with tick series.

    The registry holds three metric families (:class:`Counter`,
    :class:`Gauge`, :class:`Histogram`) plus one **per-tick time
    series**: :meth:`sample_tick` appends one row per simulation tick
    (cumulative counts sampled at the tick fence, and instantaneous
    gauges like the open-violation count), stored columnar so the
    snapshot exports straight through the traces columnar machinery.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, list[float]] = {}
        self._series_columns: tuple[str, ...] | None = None

    # -- metric families -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                DEFAULT_LATENCY_BOUNDS_US if bounds is None else bounds
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise SimulationError(
                f"histogram {key!r} already exists with bounds "
                f"{metric.bounds!r}; cannot re-declare as {tuple(bounds)!r}"
            )
        return metric

    # -- stats absorption ----------------------------------------------------

    def record_stats(self, prefix: str, stats: Mapping[str, Any]) -> None:
        """Publish one ``as_dict()``-style stats mapping.

        Integer values become ``{prefix}_{key}`` counters, floats become
        gauges (ratio properties like ``hit_rate``), and non-numeric
        entries are skipped — so every existing ``WsdbStats`` /
        ``FrontendStats`` / ``PushStats`` snapshot publishes without a
        per-field adapter.
        """
        for key in sorted(stats):
            value = stats[key]
            if isinstance(value, bool):
                self.counter(f"{prefix}_{key}").inc(int(value))
            elif isinstance(value, int):
                self.counter(f"{prefix}_{key}").inc(value)
            elif isinstance(value, float):
                self.gauge(f"{prefix}_{key}").set(value)

    # -- per-tick time series ------------------------------------------------

    def sample_tick(self, t_us: float, **columns: float) -> None:
        """Append one time-series row at tick fence *t_us*.

        The first call fixes the column set; later calls must supply
        exactly the same columns (a drifting column set would desync the
        columnar export).
        """
        names = tuple(sorted(columns))
        if self._series_columns is None:
            self._series_columns = names
            self._series["t_us"] = []
            for name in names:
                self._series[name] = []
        elif names != self._series_columns:
            raise SimulationError(
                f"tick sample columns {names!r} != established "
                f"{self._series_columns!r}"
            )
        self._series["t_us"].append(float(t_us))
        for name in names:
            # Coerced so scalar ints and numpy scalars land identically
            # (snapshot equality across engines is exact, not modulo
            # types).
            self._series[name].append(float(columns[name]))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as sorted plain JSON data."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
            "series": {k: list(v) for k, v in sorted(self._series.items())},
        }


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Aggregate snapshots: counters/histograms sum, gauges take max.

    Histograms merge bucket-by-bucket and therefore require identical
    bounds.  Series concatenate only when their column keys are disjoint
    between snapshots (two runs' tick series have no meaningful
    interleave); overlapping series raise.
    """
    merged: dict[str, Any] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "series": {},
    }
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            merged["gauges"][key] = max(
                merged["gauges"].get(key, float("-inf")), value
            )
        for key, hist in snap.get("histograms", {}).items():
            into = merged["histograms"].get(key)
            if into is None:
                merged["histograms"][key] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if list(hist["bounds"]) != into["bounds"]:
                raise SimulationError(
                    f"cannot merge histogram {key!r}: bounds differ"
                )
            into["counts"] = [
                a + b for a, b in zip(into["counts"], hist["counts"])
            ]
            into["sum"] += hist["sum"]
            into["count"] += hist["count"]
        for key, column in snap.get("series", {}).items():
            if key in merged["series"] and key != "t_us":
                raise SimulationError(
                    f"cannot merge overlapping series column {key!r}"
                )
            merged["series"][key] = list(column)
    for family in ("counters", "gauges", "histograms", "series"):
        merged[family] = dict(sorted(merged[family].items()))
    return merged


class _NullMetric:
    """The do-nothing metric every :class:`NullTelemetry` family returns."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullTelemetry:
    """The zero-overhead telemetry sink (telemetry off).

    Mirrors :class:`MetricsRegistry`'s surface with no-ops so drivers
    hold exactly one code shape; hook sites still guard on ``enabled``
    so an off-run never pays even the argument-marshalling cost.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None, **labels: Any
    ) -> _NullMetric:
        return _NULL_METRIC

    def record_stats(self, prefix: str, stats: Mapping[str, Any]) -> None:
        pass

    def sample_tick(self, t_us: float, **columns: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}


#: Shared zero-overhead instance (the telemetry twin of NULL_RECORDER).
NULL_TELEMETRY = NullTelemetry()
