"""The wall-clock phase profiler — observation only, never spec-driven.

This is the *other* clock, kept strictly apart from the sim-clock
metrics registry: phase timings come from ``time.perf_counter`` and are
therefore non-deterministic by nature.  They must never enter a report,
a metric snapshot, or anything spec-hashed — a profiler is attached
explicitly by a caller that wants a profile artifact (``make profile``,
``bench_scale``), not through the experiment spec.

The instrumented sites are the vector engine's tick phases (advance /
recheck-detect / batch-lookup / associate / compliance) and the
``ParallelRunner`` fan-out; any of them accept ``profiler=None`` and
fall back to :data:`NULL_PROFILER`, whose ``phase()`` is a shared
no-op context manager.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

__all__ = ["NULL_PROFILER", "NullProfiler", "PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    ``clock`` is injectable so determinism tests can drive the profiler
    with a fake counter; production callers leave the default.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - start)

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self) -> dict[str, float]:
        """Per-phase totals, sorted by name — the ``phases`` row shape
        that ``BENCH_scale.json`` vector runs carry."""
        return {name: self._seconds[name] for name in sorted(self._seconds)}

    def report(self) -> dict[str, dict[str, float]]:
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in sorted(self._seconds)
        }

    def write(self, path: str | Path, meta: Mapping[str, Any] | None = None) -> Path:
        """Write the profile artifact (pretty JSON; wall-clock data, so
        the artifact is intentionally *not* byte-stable across runs)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"meta": dict(meta or {}), "phases": self.report()}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def write_chrome(
        self, path: str | Path, meta: Mapping[str, Any] | None = None
    ) -> Path:
        """Write the profile as Chrome trace-event JSON (Perfetto-loadable).

        The profiler keeps per-phase *totals*, not individual
        intervals, so the timeline is an aggregate: one ``"X"`` event
        per phase, laid head-to-tail in sorted-name order, each span's
        width its accumulated seconds (``args`` carries the call count
        and the raw total).  Wall-clock data — like :meth:`write`, the
        artifact is intentionally not byte-stable across runs.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events: list[dict[str, Any]] = []
        offset_us = 0.0
        for name in sorted(self._seconds):
            dur_us = self._seconds[name] * 1e6
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "ts": offset_us,
                    "dur": dur_us,
                    "name": name,
                    "cat": "wall",
                    "args": {
                        "calls": self._calls[name],
                        "seconds": self._seconds[name],
                    },
                }
            )
            offset_us += dur_us
        payload = {"traceEvents": events, "metadata": dict(meta or {})}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


class NullProfiler:
    """The do-nothing profiler substituted for ``profiler=None``."""

    enabled = False
    _NULL_CONTEXT = nullcontext()

    def phase(self, name: str) -> Any:
        return self._NULL_CONTEXT

    def add(self, name: str, seconds: float) -> None:
        pass

    def seconds(self) -> dict[str, float]:
        return {}

    def report(self) -> dict[str, dict[str, float]]:
        return {}


#: Shared no-op instance.
NULL_PROFILER = NullProfiler()
