"""Sim-clock distributed tracing: request-scoped span trees.

The metrics registry (:mod:`repro.telemetry.metrics`) says *that* p99
frontend latency is high; the trace recorder (:mod:`repro.traces`)
says *what* happened.  This module records *why a specific request was
slow*: a :class:`SpanRecorder` builds one parent→child span tree per
frontend request across the whole cluster tier — admission,
token-bucket wait, shed deferrals, per-shard batch fan-out, database
cache hit/miss and index scan, stale-store serves, and push fan-out —
and links latency-histogram buckets to example trace ids
(Prometheus-exemplar style), so a tail bucket resolves to the concrete
span tree that produced it.

Determinism is the same contract as everything else in the tree:

* **Ids are content-derived.**  A trace id is a hash of the request's
  kind, subject, and enqueue tick — never wall clock, never ``id()`` —
  so the scalar and vector engines (which issue the identical request
  sequence) mint identical ids.  Span ids are per-trace sequence
  numbers assigned in a fixed tree-build order.
* **Sim-clock only.**  Every timestamp in a span is simulation time;
  the module never reads a wall clock (it lives outside the detlint
  wall-clock zone on purpose).
* **Observation only.**  Recording changes no report: a driver run
  with :data:`NULL_SPANS` is byte-identical to a pre-spans run, and a
  run with a recorder attached differs only by the ``"spans"`` table.

Sampling (the ``span_sample`` spec knob) is deterministic too:
``"off"`` records every trace, ``"head-N"`` keeps one in N by trace-id
hash, and ``"tail"`` keeps only traces with a nonzero enqueue→serve
duration (the slow requests a tail investigation wants).  The
recorder's latency bucket counts always cover *all* served requests,
so the p99 threshold is exact even under sampling; only the kept trees
are exported.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.telemetry.metrics import DEFAULT_LATENCY_BOUNDS_US

__all__ = [
    "NULL_SPANS",
    "NullSpans",
    "SPANS_MODES",
    "SPANS_SCHEMA",
    "SpanRecorder",
    "bucket_label",
    "critical_path",
    "lookup_steps",
    "parse_span_sample",
    "path_self_times",
    "tail_attribution",
    "trace_spans",
]

#: Valid values of the ``spans`` experiment-spec knob.
SPANS_MODES = ("off", "on")

#: Version tag carried by every span table (schema evolution seam).
SPANS_SCHEMA = "repro.spans/v1"

#: Exemplar trace ids retained per latency bucket (first N distinct).
EXEMPLARS_PER_BUCKET = 4

#: The tail quantile :func:`tail_attribution` reports on.
TAIL_QUANTILE = 0.99


def parse_span_sample(sample: str | None) -> tuple:
    """Parse a ``span_sample`` knob value into a sampling mode.

    Returns ``("off",)``, ``("head", N)``, or ``("tail",)``; raises
    ``SimulationError`` on anything else.  ``None`` means "off"
    (record everything).
    """
    if sample is None or sample == "off":
        return ("off",)
    if sample == "tail":
        return ("tail",)
    if isinstance(sample, str) and sample.startswith("head-"):
        try:
            n = int(sample[len("head-"):])
        except ValueError:
            n = 0
        if n >= 1:
            return ("head", n)
    raise SimulationError(
        f"unknown span_sample {sample!r}; expected 'off', 'head-N' "
        "(N >= 1), or 'tail'"
    )


def _trace_id(req: str, subject: Any, enqueue_us: float) -> str:
    """A deterministic 64-bit trace id from the request's identity."""
    text = f"{req}:{subject}:{enqueue_us!r}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _fmt_bound(bound: float) -> str:
    """Histogram bound rendered the way the Prometheus exporter does."""
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def bucket_label(bounds: Sequence[float], index: int) -> str:
    """The exemplar-map key for latency bucket *index* (``le`` style)."""
    if index < len(bounds):
        return f"le_{_fmt_bound(bounds[index])}"
    return "le_inf"


def lookup_steps(
    hit: bool, candidates: int, site: str, shard: bool = False
) -> tuple:
    """The serve-side step tree for one database cell lookup.

    ``db_lookup`` → ``cache_hit``, or ``db_lookup`` → ``cache_miss`` →
    ``index_scan`` (carrying the spatial-index candidate count); with
    ``shard=True`` the chain is wrapped in a ``shard_lookup`` span (the
    frontend's per-shard fan-out hop).
    """
    if hit:
        leaf = ("cache_hit", site, {}, ())
    else:
        leaf = (
            "cache_miss",
            site,
            {},
            (("index_scan", site, {"candidates": int(candidates)}, ()),),
        )
    chain = ("db_lookup", site, {}, (leaf,))
    if shard:
        return ("shard_lookup", site, {}, (chain,))
    return chain


class _PendingTrace:
    """A begun-but-unserved request: enqueue stamp + defer attempts."""

    __slots__ = ("req", "subject", "enqueue_us", "defers")

    def __init__(self, req: str, subject: Any, enqueue_us: float):
        self.req = req
        self.subject = subject
        self.enqueue_us = enqueue_us
        self.defers: list[float] = []


class SpanRecorder:
    """Records deterministic span trees across the cluster tier.

    Args:
        sample: the ``span_sample`` knob value — ``None``/``"off"``
            (keep every trace), ``"head-N"`` (keep one in N by trace-id
            hash), or ``"tail"`` (keep only traces with nonzero
            duration).
        latency_bounds: histogram bucket bounds the exemplar links and
            tail attribution use; must match the latency histogram the
            frontend observes into (the shared default does).
    """

    enabled = True

    def __init__(
        self,
        sample: str | None = None,
        latency_bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_US,
    ):
        self.sample = "off" if sample is None else str(sample)
        self._mode = parse_span_sample(sample)
        self._bounds = tuple(float(b) for b in latency_bounds)
        # Served-request latency counts per bucket (+Inf last), over
        # *all* serves — sampling never skews the tail threshold.
        self._latency_counts = [0] * (len(self._bounds) + 1)
        self._pending: dict[str, _PendingTrace] = {}
        # Finished traces as (root_t0, trace_id, spans): sorted at
        # snapshot so engines that finish traces in different interleavings
        # would still export identical tables.
        self._done: list[tuple[float, str, list[dict[str, Any]]]] = []
        self._dropped = 0
        self._exemplars: dict[int, list[str]] = {}

    def _keep(self, trace_id: str, duration_us: float) -> bool:
        mode = self._mode
        if mode[0] == "off":
            return True
        if mode[0] == "head":
            return int(trace_id[:8], 16) % mode[1] == 0
        return duration_us > 0

    # -- request lifecycle (frontend path) -----------------------------------

    def request_begin(
        self, req: str, subject: Any, enqueue_us: float
    ) -> str:
        """Open (or find) the trace for one frontend request.

        The id derives from (req, subject, enqueue) — a deferred
        re-check retried with its first-attempt stamp lands back in the
        same trace, accumulating ``shed_defer`` attempts until it
        serves.
        """
        trace_id = _trace_id(req, subject, enqueue_us)
        if trace_id not in self._pending:
            self._pending[trace_id] = _PendingTrace(req, subject, enqueue_us)
        return trace_id

    def request_defer(self, trace_id: str, t_us: float) -> None:
        """Record one shed attempt (token-bucket denial) at *t_us*."""
        pending = self._pending.get(trace_id)
        if pending is not None:
            pending.defers.append(t_us)

    def request_serve(
        self,
        trace_id: str,
        t_us: float,
        site: str,
        steps: Sequence[tuple],
    ) -> bool:
        """Close a request's trace at serve time *t_us*.

        Builds the tree — root ``request`` spanning enqueue→serve, a
        ``queue_wait`` child covering the same window (carrying the
        zero-duration ``shed_defer`` attempts), then the serve-side
        *steps* chains at the serve instant — observes the duration
        into the latency bucket counts, applies sampling, and links an
        exemplar when the trace is kept.  Returns whether it was kept.
        """
        pending = self._pending.pop(trace_id, None)
        if pending is None:
            return False
        t0 = pending.enqueue_us
        duration = t_us - t0
        bucket = bisect_left(self._bounds, duration)
        self._latency_counts[bucket] += 1
        if not self._keep(trace_id, duration):
            self._dropped += 1
            return False
        spans: list[dict[str, Any]] = []
        root = self._add(
            spans,
            trace_id,
            None,
            "request",
            site,
            t0,
            t_us,
            {
                "req": pending.req,
                "subject": pending.subject,
                "latency_us": duration,
            },
        )
        wait = self._add(
            spans, trace_id, root, "queue_wait", site, t0, t_us, {}
        )
        for attempt_us in pending.defers:
            self._add(
                spans,
                trace_id,
                wait,
                "shed_defer",
                site,
                attempt_us,
                attempt_us,
                {},
            )
        for step in steps:
            self._attach(spans, trace_id, root, step, t_us)
        self._done.append((t0, trace_id, spans))
        exemplars = self._exemplars.setdefault(bucket, [])
        if (
            len(exemplars) < EXEMPLARS_PER_BUCKET
            and trace_id not in exemplars
        ):
            exemplars.append(trace_id)
        return True

    # -- one-shot trees (mic registrations, direct-db lookups) ---------------

    def record_tree(
        self,
        kind: str,
        req: str,
        subject: Any,
        t_us: float,
        site: str,
        steps: Sequence[tuple],
    ) -> str:
        """Record a complete zero-duration tree at *t_us*.

        Used for work that begins and ends inside one call today: a
        direct database lookup on the roaming path, or a microphone
        registration's invalidate + push fan-out.  Returns the trace
        id (minted even when sampling drops the tree, so callers can
        log it either way).
        """
        trace_id = _trace_id(req, subject, t_us)
        if not self._keep(trace_id, 0.0):
            self._dropped += 1
            return trace_id
        spans: list[dict[str, Any]] = []
        root = self._add(
            spans,
            trace_id,
            None,
            kind,
            site,
            t_us,
            t_us,
            {"req": req, "subject": subject},
        )
        for step in steps:
            self._attach(spans, trace_id, root, step, t_us)
        self._done.append((t_us, trace_id, spans))
        return trace_id

    # -- tree building -------------------------------------------------------

    def _add(
        self,
        spans: list[dict[str, Any]],
        trace_id: str,
        parent: int | None,
        kind: str,
        site: str,
        t0_us: float,
        t1_us: float,
        attrs: Mapping[str, Any],
    ) -> int:
        span_id = len(spans)
        spans.append(
            {
                "trace": trace_id,
                "span": span_id,
                "parent": parent,
                "kind": kind,
                "site": site,
                "t0_us": float(t0_us),
                "t1_us": float(t1_us),
                "attrs": dict(attrs),
            }
        )
        return span_id

    def _attach(
        self,
        spans: list[dict[str, Any]],
        trace_id: str,
        parent: int,
        step: tuple,
        t_us: float,
    ) -> None:
        kind, site, attrs, children = step
        span_id = self._add(
            spans, trace_id, parent, kind, site, t_us, t_us, attrs
        )
        for child in children:
            self._attach(spans, trace_id, span_id, child, t_us)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The span table: a sorted, JSON-plain view of every kept trace.

        Traces order by (root start, trace id) and spans within a trace
        by span id, so any two runs that recorded the same trees export
        byte-identical tables regardless of finish interleaving.
        """
        spans: list[dict[str, Any]] = []
        for _, _, trace in sorted(self._done, key=lambda e: (e[0], e[1])):
            spans.extend(trace)
        exemplars = {
            bucket_label(self._bounds, bucket): list(trace_ids)
            for bucket, trace_ids in sorted(self._exemplars.items())
        }
        return {
            "schema": SPANS_SCHEMA,
            "sample": self.sample,
            "latency_bounds": list(self._bounds),
            "latency_counts": list(self._latency_counts),
            "traces": len(self._done),
            "dropped": self._dropped,
            "unserved": len(self._pending),
            "exemplars": exemplars,
            "spans": spans,
        }


class NullSpans:
    """The do-nothing recorder substituted for ``spans=None``."""

    enabled = False
    sample = "off"

    def request_begin(self, req: str, subject: Any, enqueue_us: float) -> str:
        return ""

    def request_defer(self, trace_id: str, t_us: float) -> None:
        pass

    def request_serve(
        self, trace_id: str, t_us: float, site: str, steps: Sequence[tuple]
    ) -> bool:
        return False

    def record_tree(
        self,
        kind: str,
        req: str,
        subject: Any,
        t_us: float,
        site: str,
        steps: Sequence[tuple],
    ) -> str:
        return ""

    def snapshot(self) -> dict[str, Any]:
        return {
            "schema": SPANS_SCHEMA,
            "sample": "off",
            "latency_bounds": [],
            "latency_counts": [],
            "traces": 0,
            "dropped": 0,
            "unserved": 0,
            "exemplars": {},
            "spans": [],
        }


#: Shared no-op instance.
NULL_SPANS = NullSpans()


# -- analysis over exported tables ---------------------------------------------


def _iter_traces(
    table: Mapping[str, Any],
) -> Iterator[tuple[str, list[dict[str, Any]]]]:
    """Group a table's span list into (trace_id, spans) runs.

    Tables keep each trace contiguous with the root span first, so one
    linear pass suffices.
    """
    current: list[dict[str, Any]] = []
    current_id = None
    for span in table["spans"]:
        if span["trace"] != current_id:
            if current:
                yield current_id, current
            current_id = span["trace"]
            current = []
        current.append(span)
    if current:
        yield current_id, current


def trace_spans(
    table: Mapping[str, Any], trace_id: str
) -> list[dict[str, Any]]:
    """All spans of one trace, in span-id order (empty when unknown)."""
    for tid, spans in _iter_traces(table):
        if tid == trace_id:
            return spans
    return []


def critical_path(spans: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """The root-to-leaf path following the longest child at each level.

    Ties break toward the lowest span id (the earliest-recorded child),
    so the path is deterministic even among zero-duration siblings.
    """
    if not spans:
        return []
    children: dict[int, list[Mapping[str, Any]]] = {}
    root = None
    for span in spans:
        if span["parent"] is None:
            root = span
        else:
            children.setdefault(span["parent"], []).append(span)
    if root is None:
        return []
    path = [dict(root)]
    node = root
    while True:
        kids = children.get(node["span"])
        if not kids:
            return path
        node = max(
            kids,
            key=lambda s: (s["t1_us"] - s["t0_us"], -s["span"]),
        )
        path.append(dict(node))


def path_self_times(
    path: Sequence[Mapping[str, Any]],
) -> list[tuple[str, float]]:
    """Per-kind exclusive time along a critical path.

    Each span's self time is its duration minus its on-path child's
    duration, so the self times sum exactly to the root's duration —
    the attribution invariant the tail report relies on.
    """
    out: list[tuple[str, float]] = []
    for i, span in enumerate(path):
        duration = span["t1_us"] - span["t0_us"]
        if i + 1 < len(path):
            child = path[i + 1]
            duration -= child["t1_us"] - child["t0_us"]
        out.append((span["kind"], duration))
    return out


def tail_attribution(
    table: Mapping[str, Any], quantile: float = TAIL_QUANTILE
) -> dict[str, Any]:
    """Where tail-bucket requests spent their sim-time, by span kind.

    Finds the latency bucket containing the *quantile* point of the
    recorded latency distribution (all served requests, sampled or
    not), then sums critical-path self times per span kind over every
    *kept* trace whose duration lands in that bucket or above.

    Returns ``{"quantile", "threshold_le", "requests", "traces",
    "by_kind"}`` — ``threshold_le`` is the tail bucket's lower bound
    edge (``None`` for the +Inf bucket), ``requests`` counts all served
    requests in the tail buckets, ``traces`` the kept trees among them.
    """
    bounds = table.get("latency_bounds", [])
    counts = table.get("latency_counts", [])
    report: dict[str, Any] = {
        "quantile": quantile,
        "threshold_le": None,
        "requests": 0,
        "traces": 0,
        "by_kind": {},
    }
    total = sum(counts)
    if total == 0:
        return report
    need = quantile * total
    cumulative = 0
    tail_bucket = len(counts) - 1
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= need:
            tail_bucket = index
            break
    report["threshold_le"] = (
        float(bounds[tail_bucket]) if tail_bucket < len(bounds) else None
    )
    report["requests"] = int(sum(counts[tail_bucket:]))
    by_kind: dict[str, float] = {}
    kept = 0
    for _, spans in _iter_traces(table):
        root = spans[0]
        latency = root["attrs"].get("latency_us")
        if latency is None:
            continue
        if bisect_left(bounds, latency) < tail_bucket:
            continue
        kept += 1
        for kind, self_us in path_self_times(critical_path(spans)):
            by_kind[kind] = by_kind.get(kind, 0.0) + self_us
    report["traces"] = kept
    report["by_kind"] = {kind: by_kind[kind] for kind in sorted(by_kind)}
    return report
