"""repro.traces — dense run recording, columnar export, trace replay.

WhiteFi's evaluation is built on *measured traces*; this subsystem
gives the simulation the same spine.  Every wsdb driver
(``wsdb.citywide``, ``wsdb.mobility``, ``wsdb.vector``, and
``wsdb.cluster.querystorm`` — scalar and vector engines alike) accepts
a ``recorder`` and emits one dense event stream per run: queries,
re-checks, handoffs, mic registrations, push notifications, admission
outcomes, and violation-window open/close — each stamped ``t_us`` x
cell x channel set.  Three layers:

- **record** (:mod:`repro.traces.record`): the versioned event schema,
  :class:`TraceRecorder` (gzip JSONL, canonical ordering, deterministic
  bytes), and the zero-overhead :data:`NULL_RECORDER` default.
- **columnar** (:mod:`repro.traces.columnar`): a K7-like converter
  packing event streams into typed numpy ``.npz`` columns with
  per-column min/max stats; lossless both ways.
- **replay** (:mod:`repro.traces.replay`): :class:`TraceWorkload`
  feeds a recorded storm's query stream back through ``BatchFrontend``
  in place of the synthetic generator; surfaced as the ``storm_trace``
  spec knob and the ``replay`` run kind.

Trace-format spec (``repro.traces/v1``, schema version 1)
---------------------------------------------------------

**JSONL layer.**  A trace file is gzip-compressed JSONL (readers also
accept plain JSONL).  Line 1 is the header::

    {"schema": "repro.traces/v1", "version": 1,
     "events": <count>, "meta": {...}}

Each following line is one event in canonical stream order — sorted by
``(t_us, kind rank, subject)`` — as compact sorted-key JSON with None
fields omitted::

    {"t_us": ..., "kind": ..., "subject": ...,
     "cell": [cx, cy]?, "channels": [..]?, "x": ..?, "y": ..?, "aux": ..?}

``kind`` is one of ``mic``, ``push``, ``query``, ``recheck``,
``handoff``, ``violation_open``, ``violation_close`` (rank order; see
:mod:`repro.traces.record` for per-kind field semantics — shed/admit
outcomes ride the ``aux`` flag of ``query``/``recheck`` events).  The
gzip mtime is zeroed and the JSON form canonical, so equal streams
produce equal *bytes*.

**Columnar layer.**  ``.npz`` struct-of-arrays: ``t_us`` (f64),
``kind`` (u8, index into the vocabulary), ``subject`` (i64), masked
value pairs ``cell_mask``/``cell_x``/``cell_y``, ``xy_mask``/``x``/
``y``, ``aux_mask``/``aux``, and a CSR channel list ``chan_mask``/
``chan_offsets`` (length n+1)/``chan_values``; plus the JSON
``header`` and per-column ``{min, max, count}`` ``stats`` as 0-d
string entries.  JSONL -> columnar -> JSONL round-trips losslessly.

Importing :mod:`repro.traces` (or recording/replaying) does not
require numpy; the columnar names load lazily on first use.
"""

from __future__ import annotations

from repro.traces.record import (
    EVENT_KINDS,
    NULL_RECORDER,
    NullTraceRecorder,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceRecorder,
    read_trace,
    write_trace,
)
from repro.traces.replay import TraceWorkload

__all__ = [
    "EVENT_KINDS",
    "NULL_RECORDER",
    "NullTraceRecorder",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceRecorder",
    "TraceWorkload",
    "columnar_stats",
    "from_columnar",
    "read_columnar",
    "read_trace",
    "to_columnar",
    "write_trace",
]

_COLUMNAR_NAMES = frozenset(
    {"columnar_stats", "from_columnar", "read_columnar", "to_columnar"}
)


def __getattr__(name: str):
    # Lazy so that recording/replay (and the scalar drivers that import
    # them) never pull numpy in; only columnar conversion needs it.
    if name in _COLUMNAR_NAMES:
        from repro.traces import columnar

        return getattr(columnar, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
