"""K7-like columnar trace export: typed numpy columns + min/max stats.

A trace's event stream converts to one ``.npz`` archive of typed
columns — struct-of-arrays, one entry per event, in the canonical
stream order:

=================== ========== =================================================
array               dtype      meaning
=================== ========== =================================================
``t_us``            float64    event timestamp
``kind``            uint8      index into :data:`EVENT_KINDS`
``subject``         int64      actor id (-1 when absent)
``cell_mask``       bool       True where the event carries a cell
``cell_x/cell_y``   int64      cell coordinates (0 where masked out)
``xy_mask``         bool       True where the event carries coordinates
``x/y``             float64    exact coordinates (0.0 where masked out)
``aux_mask``        bool       True where the event carries an aux value
``aux``             int64      aux value (0 where masked out)
``chan_mask``       bool       True where the event carries a channel set
                               (distinguishes "no channels" from "empty set")
``chan_offsets``    int64      CSR offsets, length n+1: event i's channels are
                               ``chan_values[chan_offsets[i]:chan_offsets[i+1]]``
``chan_values``     int64      concatenated channel indices
=================== ========== =================================================

Two 0-d string entries ride along: ``header`` (the source trace's JSON
header, schema + version + meta) and ``stats`` (JSON per-column
``{min, max, count}`` over the *present* entries of each maskable
column — the quick-look summary a K7 file keeps per column).

The conversion is lossless: :func:`from_columnar` regenerates a JSONL
trace byte-identical to the source (both writers emit canonical JSON
and a zeroed gzip mtime).

This module is the only part of ``repro.traces`` that needs numpy;
recording and replay stay importable without it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.traces.record import (
    EVENT_KINDS,
    TraceEvent,
    read_trace,
    write_trace,
)

__all__ = [
    "columnar_stats",
    "from_columnar",
    "read_columnar",
    "read_columns_npz",
    "to_columnar",
    "write_columns_npz",
]

_KIND_CODE = {kind: code for code, kind in enumerate(EVENT_KINDS)}


def _column_stats(
    values: np.ndarray, mask: np.ndarray | None = None
) -> dict[str, Any]:
    """min/max/count over the present entries of one column."""
    present = values if mask is None else values[mask]
    if present.size == 0:
        return {"min": None, "max": None, "count": 0}
    return {
        "min": present.min().item(),
        "max": present.max().item(),
        "count": int(present.size),
    }


def to_columnar(
    trace_path: str | pathlib.Path,
    npz_path: str | pathlib.Path,
) -> dict[str, Any]:
    """Convert a JSONL trace into a columnar ``.npz``; returns the stats."""
    header, events = read_trace(trace_path)
    n = len(events)
    t_us = np.empty(n, np.float64)
    kind = np.empty(n, np.uint8)
    subject = np.empty(n, np.int64)
    cell_mask = np.zeros(n, bool)
    cell_x = np.zeros(n, np.int64)
    cell_y = np.zeros(n, np.int64)
    xy_mask = np.zeros(n, bool)
    x = np.zeros(n, np.float64)
    y = np.zeros(n, np.float64)
    aux_mask = np.zeros(n, bool)
    aux = np.zeros(n, np.int64)
    chan_mask = np.zeros(n, bool)
    chan_offsets = np.zeros(n + 1, np.int64)
    flat_channels: list[int] = []
    for i, event in enumerate(events):
        t_us[i] = event.t_us
        kind[i] = _KIND_CODE[event.kind]
        subject[i] = event.subject
        if event.cell is not None:
            cell_mask[i] = True
            cell_x[i], cell_y[i] = event.cell
        if event.x is not None:
            xy_mask[i] = True
            x[i] = event.x
            y[i] = 0.0 if event.y is None else event.y
        if event.aux is not None:
            aux_mask[i] = True
            aux[i] = event.aux
        if event.channels is not None:
            chan_mask[i] = True
            flat_channels.extend(event.channels)
        chan_offsets[i + 1] = len(flat_channels)
    chan_values = np.asarray(flat_channels, np.int64)
    stats = {
        "t_us": _column_stats(t_us),
        "kind": _column_stats(kind),
        "subject": _column_stats(subject),
        "cell_x": _column_stats(cell_x, cell_mask),
        "cell_y": _column_stats(cell_y, cell_mask),
        "x": _column_stats(x, xy_mask),
        "y": _column_stats(y, xy_mask),
        "aux": _column_stats(aux, aux_mask),
        "chan_values": _column_stats(chan_values),
    }
    npz_path = pathlib.Path(npz_path)
    npz_path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        npz_path,
        t_us=t_us,
        kind=kind,
        subject=subject,
        cell_mask=cell_mask,
        cell_x=cell_x,
        cell_y=cell_y,
        xy_mask=xy_mask,
        x=x,
        y=y,
        aux_mask=aux_mask,
        aux=aux,
        chan_mask=chan_mask,
        chan_offsets=chan_offsets,
        chan_values=chan_values,
        header=np.asarray(
            json.dumps(header, sort_keys=True, separators=(",", ":"))
        ),
        stats=np.asarray(
            json.dumps(stats, sort_keys=True, separators=(",", ":"))
        ),
    )
    return stats


def read_columnar(
    npz_path: str | pathlib.Path,
) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Load a columnar archive back into ``(header, events)``."""
    npz_path = pathlib.Path(npz_path)
    if not npz_path.exists():
        raise SimulationError(f"no columnar trace at {npz_path}")
    with np.load(npz_path) as data:
        header = json.loads(str(data["header"][()]))
        t_us = data["t_us"]
        kind = data["kind"]
        subject = data["subject"]
        cell_mask = data["cell_mask"]
        cell_x = data["cell_x"]
        cell_y = data["cell_y"]
        xy_mask = data["xy_mask"]
        x = data["x"]
        y = data["y"]
        aux_mask = data["aux_mask"]
        aux = data["aux"]
        chan_mask = data["chan_mask"]
        chan_offsets = data["chan_offsets"]
        chan_values = data["chan_values"]
    events = []
    for i in range(len(t_us)):
        lo, hi = int(chan_offsets[i]), int(chan_offsets[i + 1])
        events.append(
            TraceEvent(
                t_us=float(t_us[i]),
                kind=EVENT_KINDS[int(kind[i])],
                subject=int(subject[i]),
                cell=(
                    (int(cell_x[i]), int(cell_y[i]))
                    if cell_mask[i]
                    else None
                ),
                channels=(
                    tuple(int(c) for c in chan_values[lo:hi])
                    if chan_mask[i]
                    else None
                ),
                x=float(x[i]) if xy_mask[i] else None,
                y=float(y[i]) if xy_mask[i] else None,
                aux=int(aux[i]) if aux_mask[i] else None,
            )
        )
    return header, events


def columnar_stats(npz_path: str | pathlib.Path) -> dict[str, Any]:
    """The per-column ``{min, max, count}`` stats stored in the archive."""
    npz_path = pathlib.Path(npz_path)
    if not npz_path.exists():
        raise SimulationError(f"no columnar trace at {npz_path}")
    with np.load(npz_path) as data:
        return json.loads(str(data["stats"][()]))


def write_columns_npz(
    npz_path: str | pathlib.Path,
    columns: dict[str, Any],
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write a generic struct-of-arrays archive in the house style.

    Same conventions as :func:`to_columnar` — equal-length float64
    columns, per-column ``{min, max, count}`` riding along as a 0-d
    JSON ``stats`` entry, caller metadata as a 0-d JSON ``header``
    entry.  This is how a telemetry snapshot's per-tick series lands on
    disk; returns the stats.
    """
    if not columns:
        raise SimulationError("write_columns_npz needs at least one column")
    arrays = {
        name: np.asarray(values, np.float64) for name, values in columns.items()
    }
    lengths = {name: arr.shape for name, arr in arrays.items()}
    (n,) = next(iter(lengths.values()))
    for name, shape in lengths.items():
        if shape != (n,):
            raise SimulationError(
                f"column {name!r} has shape {shape}, expected ({n},)"
            )
    stats = {name: _column_stats(arrays[name]) for name in sorted(arrays)}
    npz_path = pathlib.Path(npz_path)
    npz_path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        npz_path,
        **{name: arrays[name] for name in sorted(arrays)},
        header=np.asarray(
            json.dumps(meta or {}, sort_keys=True, separators=(",", ":"))
        ),
        stats=np.asarray(
            json.dumps(stats, sort_keys=True, separators=(",", ":"))
        ),
    )
    return stats


def read_columns_npz(
    npz_path: str | pathlib.Path,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load a generic column archive back into ``(meta, columns)``."""
    npz_path = pathlib.Path(npz_path)
    if not npz_path.exists():
        raise SimulationError(f"no column archive at {npz_path}")
    with np.load(npz_path) as data:
        meta = json.loads(str(data["header"][()]))
        columns = {
            name: data[name]
            for name in data.files
            if name not in ("header", "stats")
        }
    return meta, columns


def from_columnar(
    npz_path: str | pathlib.Path,
    trace_path: str | pathlib.Path,
) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Regenerate a JSONL trace from a columnar archive (lossless)."""
    header, events = read_columnar(npz_path)
    write_trace(trace_path, events, header.get("meta"))
    return header, events
