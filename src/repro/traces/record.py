"""Dense run recording: the versioned event schema and the JSONL writer.

One simulated session becomes one *trace*: a gzip-compressed JSONL
file whose first line is a header record and whose remaining lines are
:class:`TraceEvent` records in canonical order.  The schema is stable
and versioned (:data:`TRACE_SCHEMA` / :data:`TRACE_SCHEMA_VERSION`):
replaying, diffing, and columnar conversion all key off it, so a
breaking change to the event vocabulary bumps the version instead of
silently shifting meanings.

**Event vocabulary** (:data:`EVENT_KINDS`, in canonical rank order):

========================= ====================================================
kind                      one ...
========================= ====================================================
``mic``                   microphone registration going live (subject = event
                          index; channels = the protected UHF index)
``push``                  PAWS notification delivered to a subscribed device
                          (subject = device id; aux = mic event index)
``query``                 storm/sweep availability request (subject = request
                          sequence; aux = admitted 0/1; channels = response,
                          None when shed without a stale fallback)
``recheck``               mobile client re-check under the FCC rule (subject =
                          client id; aux = admitted 0/1 — a deferred re-check
                          is aux 0 with channels None)
``handoff``               association change (subject = client id; aux = new
                          AP id; channels = the new AP's spanned indices)
``violation_open``        client entered ground-truth violation (channels =
                          the offending AP's spanned indices)
``violation_close``       client left violation — naturally (aux 0) or at end
                          of run while still violating (aux 1)
========================= ====================================================

Every event is stamped ``t_us`` x ``cell`` x channel set, plus the
exact float coordinates where they exist (a recorded ``query`` stream
is replayable bit-for-bit because JSON round-trips Python floats
exactly).  The admission outcome (*shed/admit*) rides the ``query`` and
``recheck`` events' ``aux`` flag rather than being its own kind.

**Canonical order.**  Within one run the scalar and vector engines
reach the same per-tick outcomes but interleave their hook calls
differently (the scalar loop finishes one client before the next; the
vector engine finishes one *stage* before the next).  The recorder
therefore buffers events and sorts them by ``(t_us, kind rank,
subject)`` on :meth:`TraceRecorder.close` — a total order both engines
produce identically, which is what makes "both engines emit identical
streams" checkable with a byte compare.

The writer zeroes the gzip mtime field, so identical event streams
produce identical *bytes* — trace files diff like content, not like
timestamps.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SimulationError

__all__ = [
    "EVENT_KINDS",
    "NULL_RECORDER",
    "NullTraceRecorder",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceRecorder",
    "read_trace",
    "write_trace",
]

#: Schema identifier written into (and checked against) every header.
TRACE_SCHEMA = "repro.traces/v1"

#: Bumped on any breaking change to the event vocabulary or fields.
TRACE_SCHEMA_VERSION = 1

#: The event vocabulary, in canonical within-timestamp rank order.
EVENT_KINDS = (
    "mic",
    "push",
    "query",
    "recheck",
    "handoff",
    "violation_open",
    "violation_close",
)

_KIND_RANK = {kind: rank for rank, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded simulation event (see the module docstring table).

    Attributes:
        t_us: simulation timestamp (exact float; tick fences for tick
            events, the registration's own start for mic events).
        kind: one of :data:`EVENT_KINDS`.
        subject: the event's deterministic actor id — client id, device
            id, AP id, mic event index, or storm request sequence
            number (-1 when no actor applies).
        cell: the quantization cell the event is about, or None.
        channels: the channel set stamped on the event (a response, an
            AP's spans, a protected index), or None.
        x / y: exact coordinates where meaningful (always present on
            ``query`` events — the replayable storm stream).
        aux: kind-specific small integer (admitted flag, new AP id,
            mic event index, end-of-run close marker).
    """

    t_us: float
    kind: str
    subject: int = -1
    cell: tuple[int, int] | None = None
    channels: tuple[int, ...] | None = None
    x: float | None = None
    y: float | None = None
    aux: int | None = None

    def sort_key(self) -> tuple[float, int, int]:
        """The canonical stream order: (t_us, kind rank, subject)."""
        return (self.t_us, _KIND_RANK[self.kind], self.subject)

    def to_dict(self) -> dict[str, Any]:
        """A plain-data record (None fields omitted; JSON-compatible)."""
        record: dict[str, Any] = {
            "t_us": self.t_us,
            "kind": self.kind,
            "subject": self.subject,
        }
        if self.cell is not None:
            record["cell"] = list(self.cell)
        if self.channels is not None:
            record["channels"] = list(self.channels)
        if self.x is not None:
            record["x"] = self.x
        if self.y is not None:
            record["y"] = self.y
        if self.aux is not None:
            record["aux"] = self.aux
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (tolerates parsed-JSON lists)."""
        cell = data.get("cell")
        channels = data.get("channels")
        x = data.get("x")
        y = data.get("y")
        aux = data.get("aux")
        return cls(
            t_us=float(data["t_us"]),
            kind=str(data["kind"]),
            subject=int(data.get("subject", -1)),
            cell=None if cell is None else (int(cell[0]), int(cell[1])),
            channels=(
                None if channels is None else tuple(int(c) for c in channels)
            ),
            x=None if x is None else float(x),
            y=None if y is None else float(y),
            aux=None if aux is None else int(aux),
        )


def _dumps(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: str | pathlib.Path,
    events: Sequence[TraceEvent],
    meta: Mapping[str, Any] | None = None,
) -> None:
    """Write a header + *events* as deterministic gzip JSONL.

    The gzip mtime is pinned to zero and the JSON form is canonical
    (sorted keys, compact separators), so the same events and meta
    always produce the same bytes — the property the record -> columnar
    -> record round-trip test and ``trace_diff`` rely on.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_SCHEMA_VERSION,
        "events": len(events),
        "meta": dict(meta or {}),
    }
    with open(path, "wb") as raw:
        # filename="" keeps the gzip FNAME field empty and mtime=0 the
        # timestamp zeroed: equal streams -> equal bytes, any path.
        with gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as gz:
            with io.TextIOWrapper(gz, encoding="utf-8", newline="\n") as text:
                text.write(_dumps(header) + "\n")
                for event in events:
                    text.write(_dumps(event.to_dict()) + "\n")


def read_trace(
    path: str | pathlib.Path,
) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Read a trace file; returns ``(header, events)``.

    Accepts both gzip-compressed (the writer's output) and plain JSONL
    (detected by magic bytes).  Raises :class:`SimulationError` on a
    missing file, an empty file, or a foreign/newer schema.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise SimulationError(f"no trace file at {path}")
    with open(path, "rb") as raw:
        payload = raw.read()
    if payload[:2] == b"\x1f\x8b":
        payload = gzip.decompress(payload)
    lines = payload.decode("utf-8").splitlines()
    if not lines:
        raise SimulationError(f"empty trace file {path}")
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise SimulationError(
            f"{path} is not a {TRACE_SCHEMA} trace "
            f"(schema {header.get('schema')!r})"
        )
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise SimulationError(
            f"{path} has trace schema version {header.get('version')!r}; "
            f"this build reads version {TRACE_SCHEMA_VERSION}"
        )
    events = [TraceEvent.from_dict(json.loads(line)) for line in lines[1:]]
    return header, events


class TraceRecorder:
    """Buffers simulation events and writes one canonical trace file.

    Pass one to a driver (``simulate_querystorm(..., recorder=...)``)
    and :meth:`close` it afterwards — or use it as a context manager.
    Events are buffered in memory and sorted into the canonical stream
    order at close, so hook sites never need to coordinate ordering.

    Args:
        path: destination trace file (gzip JSONL).
        meta: free-form JSON-plain annotations for the header (run
            parameters, seeds, labels).  Meta is informational: event
            comparison (``trace_diff``, the replay bit-identity check)
            never reads it.
    """

    enabled = True

    def __init__(
        self,
        path: str | pathlib.Path,
        meta: Mapping[str, Any] | None = None,
    ):
        self.path = pathlib.Path(path)
        self.meta = dict(meta or {})
        self._events: list[TraceEvent] = []
        self._closed = False

    def emit(
        self,
        kind: str,
        t_us: float,
        subject: int = -1,
        cell: tuple[int, int] | None = None,
        channels: Iterable[int] | None = None,
        x: float | None = None,
        y: float | None = None,
        aux: int | None = None,
    ) -> None:
        """Record one event (values normalized to plain Python types)."""
        if kind not in _KIND_RANK:
            raise SimulationError(
                f"unknown trace event kind {kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        self._events.append(
            TraceEvent(
                t_us=float(t_us),
                kind=kind,
                subject=int(subject),
                cell=None if cell is None else (int(cell[0]), int(cell[1])),
                channels=(
                    None
                    if channels is None
                    else tuple(int(c) for c in channels)
                ),
                x=None if x is None else float(x),
                y=None if y is None else float(y),
                aux=None if aux is None else int(aux),
            )
        )

    def sorted_events(self) -> list[TraceEvent]:
        """The buffered events in canonical stream order."""
        return sorted(self._events, key=TraceEvent.sort_key)

    def close(self) -> None:
        """Sort and write the trace (idempotent)."""
        if self._closed:
            return
        self._closed = True
        write_trace(self.path, self.sorted_events(), self.meta)

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class NullTraceRecorder:
    """The zero-overhead default: every hook site is a guarded no-op.

    Drivers test ``recorder.enabled`` before building event arguments,
    so a run without a recorder executes exactly the pre-traces code
    path — reports stay byte-identical.
    """

    enabled = False

    def emit(self, *args: object, **kwargs: object) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTraceRecorder":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: The shared do-nothing recorder drivers default to.
NULL_RECORDER = NullTraceRecorder()
