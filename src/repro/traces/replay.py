"""Trace replay: feed a recorded storm's query stream back as workload.

:class:`TraceWorkload` extracts the ``query`` events from a trace and
iterates them as ``(t_us, x, y)`` triples — the exact shape the storm
seam (``repro.wsdb.cluster.querystorm.synthetic_storm`` /
``StormFeed``) produces for synthetic traffic, so a replayed storm runs
through ``BatchFrontend`` on the same code path as a generated one.

Determinism chain: ``query`` events record the *exact* request floats
(JSON round-trips Python floats bit-for-bit) and sort canonically by
``(t_us, kind, sequence)``, which is the original submission order —
so replaying a recorded storm re-issues the identical bursts at the
identical fences, and a re-recorded replay is byte-identical to its
source trace.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterator, Sequence

from repro.errors import SimulationError
from repro.traces.record import TraceEvent, read_trace

__all__ = ["TraceWorkload"]


class TraceWorkload:
    """The replayable ``(t_us, x, y)`` query stream of a recorded run.

    Build one with :meth:`open` (reads ``.jsonl``/``.jsonl.gz`` traces,
    or ``.npz`` columnar archives when numpy is available) and pass it
    to ``simulate_querystorm(..., storm_source=workload)`` — or set the
    ``storm_trace`` spec knob and let the ``querystorm``/``replay`` run
    kinds do exactly that.
    """

    def __init__(
        self,
        events: Sequence[TraceEvent],
        path: str | pathlib.Path | None = None,
    ):
        self.path = None if path is None else pathlib.Path(path)
        self._queries: list[tuple[float, float, float]] = []
        for event in events:
            if event.kind != "query":
                continue
            if event.x is None or event.y is None:
                raise SimulationError(
                    f"query event at t_us={event.t_us} has no coordinates; "
                    f"not a replayable trace"
                )
            self._queries.append((event.t_us, event.x, event.y))

    @classmethod
    def open(cls, path: str | pathlib.Path) -> "TraceWorkload":
        """Load a workload from a JSONL trace or a columnar archive."""
        path = pathlib.Path(path)
        if path.suffix == ".npz":
            from repro.traces.columnar import read_columnar

            _header, events = read_columnar(path)
        else:
            _header, events = read_trace(path)
        return cls(events, path)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[tuple[float, float, float]]:
        return iter(self._queries)

    def __repr__(self) -> str:
        origin = "" if self.path is None else f" from {self.path}"
        return f"<TraceWorkload {len(self._queries)} queries{origin}>"

    def to_meta(self) -> dict[str, Any]:
        """A small JSON-plain description (for recorder meta headers)."""
        return {
            "source": None if self.path is None else str(self.path),
            "queries": len(self._queries),
        }
