"""Geolocation white-space database: the post-sensing FCC regime.

WhiteFi's nodes *sense* incumbents; the ecosystem that followed
standardized on **geolocation databases** — APs query a service for the
channels available at their coordinate.  This package supplies that
missing layer as a deterministic, seedable simulation component:

* :mod:`repro.wsdb.model` — the spatial ground truth: TV transmitter
  sites and wireless-microphone registrations on a 2-D metro plane,
  with protected contours derived from power (reusing the
  :mod:`repro.spectrum.incumbents` records and the
  :mod:`repro.spectrum.geodata` locale settings).
* :mod:`repro.wsdb.index` — a uniform-grid spatial index answering
  point availability queries without scanning every incumbent.
* :mod:`repro.wsdb.service` — :class:`WhiteSpaceDatabase`: the query
  façade with a TTL + LRU response cache, mic-registration
  invalidation, and query/hit/miss counters.
* :mod:`repro.wsdb.citywide` — the city-scale workload driver behind
  the ``citywide`` run kind: many APs assigning channels off database
  responses via MCham, with backup-channel recovery on mic events.
* :mod:`repro.wsdb.mobility` — the mobile-client workload behind the
  ``roaming`` run kind: seeded waypoint paths, the FCC 100 m re-check
  rule (re-query on cell crossing or TTL expiry), nearest-AP
  association with handoffs, and mic-zone channel vacation.
* :mod:`repro.wsdb.vector` — the columnar numpy twin of the mobility
  engine (``engine="vector"`` on the roaming/querystorm kinds):
  whole-fleet array ops per tick, bit-identical reports, scales to
  millions of clients.  Imported lazily so the scalar paths never
  require numpy.
* :mod:`repro.wsdb.cluster` — the service tier: ``ShardRouter`` (K
  cell-aligned shards, each its own database), ``BatchFrontend``
  (per-shard batching, token-bucket admission, pluggable shed
  policies), ``PushRegistry`` (PAWS-style zone notifications), and the
  ``querystorm`` workload driver.
"""

from repro.wsdb.citywide import (
    CityAp,
    MicEvent,
    assign_ap,
    boot_aps,
    displace_covered_aps,
    generate_mic_events,
    simulate_citywide,
)
from repro.wsdb.cluster import (
    BatchFrontend,
    PushRegistry,
    ShardRouter,
    simulate_querystorm,
)
from repro.wsdb.mobility import (
    ENGINES,
    RoamingClient,
    associate_nearest,
    simulate_roaming,
)
from repro.wsdb.index import GridIndex
from repro.wsdb.model import (
    Metro,
    MicRegistration,
    TvTransmitterSite,
    generate_metro,
    generate_metro_for_setting,
    protected_radius_m,
)
from repro.wsdb.service import (
    AvailabilityService,
    WhiteSpaceDatabase,
    WsdbStats,
)

__all__ = [
    "AvailabilityService",
    "BatchFrontend",
    "CityAp",
    "ENGINES",
    "GridIndex",
    "Metro",
    "MicEvent",
    "MicRegistration",
    "PushRegistry",
    "RoamingClient",
    "ShardRouter",
    "TvTransmitterSite",
    "WhiteSpaceDatabase",
    "WsdbStats",
    "assign_ap",
    "associate_nearest",
    "boot_aps",
    "displace_covered_aps",
    "generate_metro",
    "generate_metro_for_setting",
    "generate_mic_events",
    "protected_radius_m",
    "simulate_citywide",
    "simulate_querystorm",
    "simulate_roaming",
]
