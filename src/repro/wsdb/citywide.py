"""City-scale WhiteFi: many APs sharing one metro through the wsdb.

The paper evaluates one BSS at a time; the regime that followed
("Optimizing City-Wide White-Fi Networks in TV White Spaces") is
hundreds of APs drawing on one metro spectrum pool.  This driver models
that workload on top of :class:`~repro.wsdb.service.WhiteSpaceDatabase`:

* Every AP is dropped at a coordinate and — instead of sensing — asks
  the database for the channels available *there*, then picks its
  ``(F, W)`` with the paper's own MCham machinery
  (:class:`~repro.core.assignment.ChannelAssigner`), seeing neighboring
  APs' load as per-channel airtime/AP counts.
* Each AP keeps a short ranked list of **backup channels** (the
  disconnection protocol's backup-channel idea, Section 4.3).  When a
  wireless microphone registers mid-session, the database invalidates
  the cached responses inside the protection zone and every covered AP
  on the mic's channel vacates, walking its backup list against a fresh
  database response — in ranked order, the way SIFT walks candidate
  channels — before falling back to a full MCham re-assignment.
* The run ends with a compliance re-query per AP (generating the
  repeated same-coordinate queries the response cache exists for) and a
  city-wide availability-disagreement summary
  (:func:`~repro.spectrum.variation.availability_disagreement` over the
  per-AP database responses — the Section 2.1 metric, metro-scale).

Everything derives from the master seed through labelled
:func:`~repro.sim.rng.stream_seed` streams, so a run is byte-identical
in any process — the contract the ``citywide`` run kind and
``ParallelRunner`` rely on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from repro import constants
from repro.core.assignment import ChannelAssigner, SwitchReason
from repro.core.mcham import channel_preference_key
from repro.errors import NoChannelAvailableError, SimulationError
from repro.sim.rng import stream_seed
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap
from repro.spectrum.variation import availability_disagreement
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.traces.record import NULL_RECORDER
from repro.wsdb.model import MicRegistration
from repro.wsdb.service import (
    AvailabilityService,
    WhiteSpaceDatabase,
    quantize_cell,
)

__all__ = [
    "CityAp",
    "MicEvent",
    "assign_ap",
    "boot_aps",
    "displace_covered_aps",
    "generate_mic_events",
    "simulate_citywide",
    "snapshot_assigned_aps",
]

#: Radius within which two APs contend (meters).  City-scale APs are
#: sectorized/low-power; a few km of mutual interference is the regime
#: the city-wide White-Fi literature optimizes.
DEFAULT_INTERFERENCE_RADIUS_M = 2_500.0

#: Busy-airtime fraction one neighboring AP contributes to each UHF
#: channel it spans (heavy-traffic assumption; fractions add and cap
#: at 1, where MCham's 1/(B+1) fair-share floor takes over).
AP_LOAD_FRACTION = 0.35

#: Throughput of one MCham score unit (an empty 5 MHz reference
#: channel): the prototype's 20 MHz rate scaled down by width.
REFERENCE_RATE_MBPS = constants.BASE_DATA_RATE_MBPS / (
    20.0 / constants.REFERENCE_WIDTH_MHZ
)

#: Backup channels each AP keeps ranked for mic-event recovery.
NUM_BACKUP_CHANNELS = 3


@dataclass
class CityAp:
    """One access point of the citywide deployment."""

    ap_id: int
    x_m: float
    y_m: float
    channel: WhiteFiChannel | None = None
    backups: tuple[WhiteFiChannel, ...] = ()


@dataclass(frozen=True)
class MicEvent:
    """One mid-session microphone registration."""

    t_us: float
    end_us: float
    x_m: float
    y_m: float
    uhf_index: int

    def registration(self) -> MicRegistration:
        """The wsdb registration protecting this event's session."""
        return MicRegistration.single_session(
            self.uhf_index, self.x_m, self.y_m, self.t_us, self.end_us
        )


def generate_mic_events(
    count: int,
    duration_us: float,
    extent_m: float,
    num_channels: int,
    seed: int,
) -> list[MicEvent]:
    """*count* random registrations in start-time order, seeded."""
    rng = random.Random(seed)
    # Sessions may outlive the measured window (a venue's booking does
    # not end with the experiment): mics still active at the horizon
    # keep shaping the end-of-session availability sweep.
    events = [
        MicEvent(
            t_us=(t := rng.uniform(0.0, duration_us)),
            end_us=t + rng.uniform(30e6, 300e6),
            x_m=rng.uniform(0.0, extent_m),
            y_m=rng.uniform(0.0, extent_m),
            uhf_index=rng.randrange(num_channels),
        )
        for _ in range(count)
    ]
    events.sort(key=lambda e: (e.t_us, e.uhf_index))
    return events


def _neighbor_observation(
    ap: CityAp,
    aps: list[CityAp],
    num_channels: int,
    interference_radius_m: float,
) -> AirtimeObservation:
    """*ap*'s per-channel view of neighboring APs' load.

    ``B_c`` counts assigned neighbors whose channel spans ``c``;
    ``A_c`` models each as a saturating contender contributing
    :data:`AP_LOAD_FRACTION` of airtime.
    """
    counts = [0] * num_channels
    for other in aps:
        if other is ap or other.channel is None:
            continue
        if (
            math.hypot(other.x_m - ap.x_m, other.y_m - ap.y_m)
            <= interference_radius_m
        ):
            for c in other.channel.spanned_indices:
                counts[c] += 1
    busy = tuple(min(1.0, AP_LOAD_FRACTION * n) for n in counts)
    return AirtimeObservation(busy, tuple(counts))


def assign_ap(
    ap: CityAp,
    db: AvailabilityService,
    aps: list[CityAp],
    t_us: float,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
) -> bool:
    """Query the database at *ap*'s coordinate and pick (F, W) via MCham.

    Also refreshes the AP's ranked backup list.  Returns False (and
    leaves the AP unserved) when no candidate span is available.
    """
    num_channels = db.metro.num_channels
    avail = db.spectrum_map_at(ap.x_m, ap.y_m, t_us)
    obs = _neighbor_observation(ap, aps, num_channels, interference_radius_m)
    assigner = ChannelAssigner(num_channels)
    try:
        decision = assigner.evaluate(avail, obs, reason=SwitchReason.BOOT)
    except NoChannelAvailableError:
        ap.channel = None
        ap.backups = ()
        return False
    ap.channel = decision.channel
    ranked = sorted(
        (
            c
            for c in assigner.candidate_channels([avail])
            if c != decision.channel
        ),
        key=lambda c: channel_preference_key(assigner.score(c, obs, ()), c),
        reverse=True,
    )
    ap.backups = tuple(ranked[:NUM_BACKUP_CHANNELS])
    return True


def boot_aps(
    db: AvailabilityService,
    num_aps: int,
    seed: int,
    stream: str = "citywide-aps",
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
) -> list[CityAp]:
    """Place *num_aps* APs on the metro plane and assign their channels.

    Boot is a sequential greedy assignment (earlier APs are incumbent
    load for later ones — the deterministic stand-in for staggered
    power-on across a city).  Placement derives from the *stream*
    labelled child of *seed*, so different drivers (citywide, roaming)
    booting on the same master seed do not replay one another's draws.
    """
    if num_aps < 1:
        raise SimulationError(
            f"boot_aps needs num_aps >= 1, got {num_aps!r}"
        )
    extent_m = db.metro.extent_m
    placement = random.Random(stream_seed(seed, stream))
    aps = [
        CityAp(
            i,
            placement.uniform(0.0, extent_m),
            placement.uniform(0.0, extent_m),
        )
        for i in range(num_aps)
    ]
    for ap in aps:
        assign_ap(ap, db, aps, 0.0, interference_radius_m)
    return aps


def snapshot_assigned_aps(
    aps: list[CityAp],
) -> tuple[
    list[tuple[CityAp, frozenset[int]]], dict[int, frozenset[int]]
]:
    """(live list, spans by ap_id) of the APs currently holding a channel.

    AP channels only change on mic events, so the mobility drivers
    snapshot once and rebuild only after an event fires; both the
    roaming and querystorm tick loops compare association candidates
    against exactly this view.
    """
    live = [
        (ap, frozenset(ap.channel.spanned_indices))
        for ap in aps
        if ap.channel is not None
    ]
    return live, {ap.ap_id: spans for ap, spans in live}


def displace_covered_aps(
    db: AvailabilityService,
    aps: list[CityAp],
    event: MicEvent,
    registration: MicRegistration,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
) -> tuple[int, int, int, int]:
    """Vacate and recover the APs whose response *event* invalidated.

    Coverage is protocol-level (:meth:`WhiteSpaceDatabase.zone_affects`
    — the zone touches the AP's response cell), not point containment:
    an AP just outside the zone whose cell the zone clips receives the
    denying cell response too, and must move with the rest.  Returns
    ``(displaced, backup_recoveries, full_reassignments, outages)``.
    """
    displaced = backup_recoveries = full_reassignments = outages = 0
    for ap in aps:
        if (
            ap.channel is None
            or event.uhf_index not in ap.channel.spanned_indices
            or not db.zone_affects(registration, ap.x_m, ap.y_m)
        ):
            continue
        displaced += 1
        # Backup-channel discovery: walk the ranked list against a
        # fresh (post-invalidation) response before re-planning.
        free = set(db.channels_at(ap.x_m, ap.y_m, event.t_us))
        backup = next(
            (
                b
                for b in ap.backups
                if all(i in free for i in b.spanned_indices)
            ),
            None,
        )
        if backup is not None:
            ap.channel = backup
            ap.backups = tuple(b for b in ap.backups if b != backup)
            backup_recoveries += 1
        elif assign_ap(ap, db, aps, event.t_us, interference_radius_m):
            full_reassignments += 1
        else:
            outages += 1
    return displaced, backup_recoveries, full_reassignments, outages


def simulate_citywide(
    db: WhiteSpaceDatabase,
    num_aps: int,
    duration_us: float,
    seed: int,
    mic_events: int = 0,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
    recorder: Any = None,
    telemetry: Any = None,
) -> dict[str, Any]:
    """Run one citywide session; returns a plain-data report.

    The report is JSON-plain throughout (the ``citywide`` run kind's
    probe routes it into an ``ExperimentResult`` unchanged).  Pass a
    :class:`~repro.traces.record.TraceRecorder` as ``recorder`` to
    stream the run's mic registrations and end-of-session sweep
    queries; recording observes only, so the report is bit-identical
    with and without it.  Pass a sim-clock ``MetricsRegistry`` as
    ``telemetry`` to publish the database and deployment counters and
    add a ``"telemetry"`` snapshot to the report (the citywide session
    is event-driven — no tick loop — so it publishes counters and
    gauges, not a per-tick series).
    """
    if duration_us <= 0:
        raise SimulationError(
            f"citywide duration must be > 0, got {duration_us!r}"
        )
    if recorder is None:
        recorder = NULL_RECORDER
    recording = recorder.enabled
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    extent_m = db.metro.extent_m
    aps = boot_aps(db, num_aps, seed, "citywide-aps", interference_radius_m)

    events = generate_mic_events(
        mic_events,
        duration_us,
        extent_m,
        db.metro.num_channels,
        stream_seed(seed, "citywide-mics"),
    )
    displaced = backup_recoveries = full_reassignments = outages = 0
    for index, event in enumerate(events):
        registration = event.registration()
        db.register_mic(registration)
        if recording:
            recorder.emit(
                "mic",
                event.t_us,
                subject=index,
                cell=quantize_cell(
                    event.x_m, event.y_m, db.cache_resolution_m
                ),
                channels=(event.uhf_index,),
                x=event.x_m,
                y=event.y_m,
                aux=event.uhf_index,
            )
        d, b, r, o = displace_covered_aps(
            db, aps, event, registration, interference_radius_m
        )
        displaced += d
        backup_recoveries += b
        full_reassignments += r
        outages += o

    # End-of-session sweep: one compliance re-query per AP — the
    # repeated same-coordinate queries the response cache is for — with
    # both the disagreement map and the compliance free-set derived
    # from that single response (querying twice at the same t would
    # double-count stats.queries and inflate the reported hit rate).
    num_channels = db.metro.num_channels
    final_responses = [
        db.channels_at(ap.x_m, ap.y_m, duration_us) for ap in aps
    ]
    if recording:
        for ap, response in zip(aps, final_responses):
            recorder.emit(
                "query",
                duration_us,
                subject=ap.ap_id,
                cell=quantize_cell(ap.x_m, ap.y_m, db.cache_resolution_m),
                channels=response,
                x=ap.x_m,
                y=ap.y_m,
                aux=1,
            )
    final_maps = [
        SpectrumMap.from_free(free, num_channels) for free in final_responses
    ]
    noncompliant = 0
    per_ap: list[tuple[int, int | None, float | None, float]] = []
    total_mbps = 0.0
    width_counts: dict[float, int] = {}
    for ap, response in zip(aps, final_responses):
        if ap.channel is None:
            per_ap.append((ap.ap_id, None, None, 0.0))
            continue
        free = set(response)
        if not all(i in free for i in ap.channel.spanned_indices):
            noncompliant += 1
        obs = _neighbor_observation(
            ap, aps, db.metro.num_channels, interference_radius_m
        )
        score = ChannelAssigner(db.metro.num_channels).score(
            ap.channel, obs, ()
        )
        mbps = score * REFERENCE_RATE_MBPS
        total_mbps += mbps
        width_counts[ap.channel.width_mhz] = (
            width_counts.get(ap.channel.width_mhz, 0) + 1
        )
        per_ap.append(
            (ap.ap_id, ap.channel.center_index, ap.channel.width_mhz, mbps)
        )

    assigned = sum(1 for ap in aps if ap.channel is not None)
    assigned_mbps = [m for _, center, _, m in per_ap if center is not None]
    if tel.enabled:
        db.publish_metrics(tel)
        tel.counter("mic_events").inc(len(events))
        tel.counter("displaced_aps").inc(displaced)
        tel.counter("backup_recoveries").inc(backup_recoveries)
        tel.counter("full_reassignments").inc(full_reassignments)
        tel.counter("outages").inc(outages)
        tel.counter("noncompliant_aps").inc(noncompliant)
        tel.gauge("assigned_aps").set(float(assigned))
        tel.gauge("aggregate_mbps").set(total_mbps)
    report = {
        "num_aps": num_aps,
        "extent_m": extent_m,
        "duration_us": duration_us,
        "assigned_aps": assigned,
        "unserved_aps": num_aps - assigned,
        "aggregate_mbps": total_mbps,
        "mean_ap_mbps": (total_mbps / assigned) if assigned else 0.0,
        "min_ap_mbps": min(assigned_mbps) if assigned_mbps else 0.0,
        "width_counts": tuple(sorted(width_counts.items())),
        "availability_disagreement": availability_disagreement(final_maps),
        "mic_events": len(events),
        "displaced_aps": displaced,
        "backup_recoveries": backup_recoveries,
        "full_reassignments": full_reassignments,
        "outages": outages,
        "noncompliant_aps": noncompliant,
        "per_ap": tuple(per_ap),
        "db": db.stats.as_dict(),
    }
    if tel.enabled:
        report["telemetry"] = tel.snapshot()
    return report
