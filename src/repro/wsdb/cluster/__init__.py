"""The wsdb service tier: sharding, batching, admission, push.

:class:`~repro.wsdb.service.WhiteSpaceDatabase` is one in-process
database; serving a metro of millions needs a *cluster* in front of it.
This package layers that tier on top of the existing service without
changing a single response bit:

* :mod:`repro.wsdb.cluster.router` — :class:`ShardRouter`: K
  cell-aligned shards, each its own database over the territory's
  incumbent subset, with deterministic coordinate routing, mic fan-out,
  and per-shard / aggregate :class:`~repro.wsdb.service.WsdbStats`.
  Sharding shrinks the candidates a query scans; answers stay equal to
  the unsharded database's.
* :mod:`repro.wsdb.cluster.frontend` — :class:`BatchFrontend`: bursts
  coalesced by cell into per-shard batched calls, token-bucket
  admission clocked by simulation time, and pluggable shed policies
  (``reject`` vs ``serve-stale``) with shed/deferred accounting.
* :mod:`repro.wsdb.cluster.push` — :class:`PushRegistry`: PAWS-style
  device registration; a new protection zone notifies every subscribed
  device whose cell it touches, closing the pull model's violation
  window.
* :mod:`repro.wsdb.cluster.querystorm` — the driver behind the
  ``querystorm`` run kind: a synthetic query storm plus the roaming
  population plus the citywide deployment, all against one cluster,
  with push-vs-pull violation accounting.
"""

from repro.wsdb.cluster.frontend import (
    BatchFrontend,
    FrontendStats,
    RejectPolicy,
    SHED_POLICIES,
    ServeStalePolicy,
    TokenBucket,
    shed_policy,
)
from repro.wsdb.cluster.push import PushRegistry, PushStats
from repro.wsdb.cluster.querystorm import simulate_querystorm
from repro.wsdb.cluster.router import ShardRouter, ShardTerritory, shard_grid

__all__ = [
    "BatchFrontend",
    "FrontendStats",
    "PushRegistry",
    "PushStats",
    "RejectPolicy",
    "SHED_POLICIES",
    "ServeStalePolicy",
    "ShardRouter",
    "ShardTerritory",
    "TokenBucket",
    "shard_grid",
    "shed_policy",
    "simulate_querystorm",
]
