"""The cluster front door: batched queries, admission control, shedding.

A city under load does not send the database one polite query at a
time — it sends *bursts*: every AP re-checking at a TTL edge, every
client in a commuter flow crossing cells in the same tick, a survey
sweep.  :class:`BatchFrontend` is the service tier's front end for that
shape of traffic:

* **Coalescing.**  A burst handed to :meth:`query_batch` is grouped by
  owning shard and deduplicated by quantization cell before any shard
  is touched: N requests in one cell become one shard lookup whose
  response every requester shares (the counters record how many
  requests coalesced away).  Each shard then sees one batched call per
  burst, not one call per request.
* **Token-bucket rate limiting.**  The frontend admits requests against
  a bucket refilled at ``rate_limit_qps`` (burst capacity
  ``burst_size``), clocked by *simulation* time — admission is a pure
  function of the request sequence, preserving the byte-identical
  parallel/sequential contract.
* **Pluggable shed policies.**  An over-limit request is *shed* through
  a policy: ``"reject"`` returns None (the device keeps its stale
  response and retries — the deferral the querystorm driver counts),
  ``"serve-stale"`` answers from the frontend's last-known response for
  the cell, trading admission for availability.  Policies register in
  :data:`SHED_POLICIES`; a load-balancer experiment can plug its own.

The stale store honors the response protocol's own validity contract:
entries are stamped with their TTL bucket and served only inside it
(a response past its bucket is dead, exactly as in the database's
cache), and :meth:`register_mic` purges entries with the same
zone/cell geometry the databases use — so ``serve-stale`` never serves
across a protection-zone edge it has been told about, and never serves
a response the pull protocol itself would no longer honor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence

from repro.errors import SimulationError, SpectrumMapError
from repro.telemetry.metrics import (
    DEFAULT_BATCH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS_US,
    NULL_TELEMETRY,
)
from repro.telemetry.spans import NULL_SPANS, lookup_steps
from repro.wsdb.cluster.push import PushRegistry
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.index import circle_intersects_cell
from repro.wsdb.model import MicRegistration
from repro.wsdb.service import ttl_bucket

__all__ = [
    "BatchFrontend",
    "FrontendStats",
    "RejectPolicy",
    "SHED_POLICIES",
    "ServeStalePolicy",
    "ShedPolicy",
    "TokenBucket",
    "shed_policy",
]


class TokenBucket:
    """A deterministic token bucket clocked by simulation time.

    Args:
        rate_qps: refill rate (tokens per simulated second); None
            disables limiting (every request admitted).
        burst_size: bucket capacity (None: one second's worth of
            tokens, the conventional default, floored at one token so
            a sub-1 qps rate can still ever admit anything).
    """

    def __init__(self, rate_qps: float | None, burst_size: float | None = None):
        if rate_qps is not None and rate_qps <= 0:
            raise SpectrumMapError(
                f"rate_qps must be > 0 (or None), got {rate_qps!r}"
            )
        if burst_size is not None and burst_size < 1:
            raise SpectrumMapError(
                f"burst_size must be >= 1, got {burst_size!r}"
            )
        self.rate_qps = rate_qps
        self.burst_size = (
            float(burst_size)
            if burst_size is not None
            else (max(1.0, rate_qps) if rate_qps is not None else 0.0)
        )
        self._tokens = self.burst_size
        self._last_t_us = 0.0

    def admit(self, t_us: float) -> bool:
        """Consume one token at *t_us*; False when the bucket is dry.

        Time never runs backwards here: a *t_us* behind the last
        observed clock refills nothing (out-of-order queries cannot
        mint tokens).
        """
        if self.rate_qps is None:
            return True
        if t_us > self._last_t_us:
            self._tokens = min(
                self.burst_size,
                self._tokens + (t_us - self._last_t_us) * self.rate_qps / 1e6,
            )
            self._last_t_us = t_us
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class FrontendStats:
    """Frontend counters for benchmarking the admission/batching path.

    Attributes:
        requests: availability requests received.
        admitted: requests the token bucket let through.
        shed: over-limit requests (however the policy answered them).
        served_stale: shed requests answered from the stale store.
        coalesced: admitted requests answered by another request's
            shard lookup in the same batch (deduplicated by cell).
        batches: :meth:`BatchFrontend.query_batch` invocations.
        shard_batches: per-shard batched calls issued (at most one per
            shard per batch — the fan-in the batching exists for).
    """

    requests: int = 0
    admitted: int = 0
    shed: int = 0
    served_stale: int = 0
    coalesced: int = 0
    batches: int = 0
    shard_batches: int = 0

    @property
    def shed_rate(self) -> float:
        """Shed requests over all requests (0 when nothing was asked)."""
        return self.shed / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Plain-data snapshot (for probes and benchmark JSON)."""
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "shed": self.shed,
            "served_stale": self.served_stale,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "shard_batches": self.shard_batches,
            "shed_rate": self.shed_rate,
        }


class ShedPolicy(Protocol):
    """How the frontend answers an over-limit request."""

    name: str

    def shed(
        self, frontend: "BatchFrontend", qx: int, qy: int
    ) -> tuple[int, ...] | None:
        """The response for a shed request at cell (qx, qy), or None."""
        ...


class RejectPolicy:
    """Shed by refusal: the requester gets None and must retry later."""

    name = "reject"

    def shed(
        self, frontend: "BatchFrontend", qx: int, qy: int
    ) -> tuple[int, ...] | None:
        return None


class ServeStalePolicy:
    """Shed by degrading: answer from the last-known cell response.

    Falls back to refusal when the cell was never served in the
    current TTL bucket (a cold or expired cell has nothing still-valid
    to offer).
    """

    name = "serve-stale"

    def shed(
        self, frontend: "BatchFrontend", qx: int, qy: int
    ) -> tuple[int, ...] | None:
        stale = frontend.stale_response(qx, qy)
        if stale is not None:
            frontend.stats.served_stale += 1
        return stale


#: Registered shed policies by name; plug new ones in directly.
SHED_POLICIES: dict[str, type] = {
    RejectPolicy.name: RejectPolicy,
    ServeStalePolicy.name: ServeStalePolicy,
}


def shed_policy(name: str) -> ShedPolicy:
    """Instantiate a registered shed policy by name."""
    try:
        return SHED_POLICIES[name]()
    except KeyError:
        raise SimulationError(
            f"unknown shed policy {name!r}; "
            f"expected one of {tuple(sorted(SHED_POLICIES))}"
        ) from None


class BatchFrontend:
    """Admission control + per-shard batching over a :class:`ShardRouter`.

    Args:
        router: the shard tier answering admitted requests.
        rate_limit_qps: token-bucket refill rate (None: no limiting).
        burst_size: token-bucket capacity (None: one second's refill).
        policy: shed-policy name from :data:`SHED_POLICIES`.
        push: optional :class:`PushRegistry` notified on
            :meth:`register_mic` (its cell resolution must match the
            router's).
        telemetry: optional sim-clock ``MetricsRegistry``.  When
            attached, every *served* request observes its
            enqueue→serve latency into the ``frontend_latency_us``
            histogram and every burst observes its size into
            ``frontend_batch_requests``; None keeps the pre-telemetry
            path byte-identical.
        spans: optional sim-clock
            :class:`~repro.telemetry.spans.SpanRecorder`.  When
            attached *and* a caller labels its requests (the
            ``span_refs`` argument of :meth:`query_batch`), every
            served request records a full admission → shard-lookup →
            cache span tree and every shed attempt a ``shed_defer``;
            None keeps the path byte-identical.
    """

    def __init__(
        self,
        router: ShardRouter,
        rate_limit_qps: float | None = None,
        burst_size: float | None = None,
        policy: str = RejectPolicy.name,
        push: PushRegistry | None = None,
        telemetry=None,
        spans=None,
    ):
        if push is not None and (
            push.cache_resolution_m != router.cache_resolution_m
        ):
            raise SimulationError(
                "push registry cell edge "
                f"({push.cache_resolution_m!r} m) must match the router's "
                f"({router.cache_resolution_m!r} m)"
            )
        self.router = router
        self.bucket = TokenBucket(rate_limit_qps, burst_size)
        self.policy = shed_policy(policy)
        self.push = push
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.spans = NULL_SPANS if spans is None else spans
        self.stats = FrontendStats()
        # cell -> (TTL bucket the response was computed in, channels).
        self._stale: dict[tuple[int, int], tuple[int, tuple[int, ...]]] = {}
        self._bucket_now = 0
        # The last burst's admission plan, one (cell, admitted) entry
        # per request in request order.  A serve-stale shed returns
        # channels just like an admitted request, so the return value
        # alone can't tell callers (e.g. trace recorders) what the
        # admission outcome was — the plan can.
        self.last_plan: list[tuple[tuple[int, int], bool]] = []

    def stale_response(self, qx: int, qy: int) -> tuple[int, ...] | None:
        """The cell's last response, if it is still inside its TTL bucket.

        A response from an earlier bucket is dead under the protocol's
        validity contract (the database itself would recompute), so it
        is never served — serve-stale trades *admission*, not validity.
        """
        entry = self._stale.get((qx, qy))
        if entry is None or entry[0] != self._bucket_now:
            return None
        return entry[1]

    # -- queries -------------------------------------------------------------

    def query_batch(
        self,
        points: Sequence[tuple[float, float]],
        t_us: float = 0.0,
        enqueue_t_us: Sequence[float] | None = None,
        span_refs: Sequence[tuple[str, Any]] | None = None,
    ) -> list[tuple[int, ...] | None]:
        """Answer a burst: admit, coalesce by cell, batch per shard.

        Returns one entry per point in point order — a channel tuple,
        or None for a request shed without a stale fallback.  Admission
        is evaluated per request in order (the bucket sees the burst
        the way a wire would deliver it), then admitted requests
        deduplicate to one shard lookup per distinct cell.

        ``enqueue_t_us`` optionally stamps each request's enqueue time
        (storm-event generation, or the first attempt of a deferred
        re-check); a served request then observes ``t_us - enqueue``
        into the latency histogram.  Today's frontend is synchronous —
        a request serves inside its own call, so the unstamped latency
        is honestly zero — but the stamp plumbing is exactly what the
        ROADMAP's pipelined async tier will feed with real
        queue-residency times.

        ``span_refs`` optionally labels each request with a
        ``(req, subject)`` identity for the attached span recorder
        (e.g. ``("storm", sequence)`` / ``("recheck", client_id)``);
        trace ids derive from the label plus the enqueue stamp, so a
        deferred request's retries accumulate into one trace.
        """
        if not points:
            return []
        self.stats.batches += 1
        self.stats.requests += len(points)
        self._bucket_now = ttl_bucket(t_us, self.router.ttl_us)
        # Pass 1: admission.  Each entry is (cell, admitted).
        plan: list[tuple[tuple[int, int], bool]] = []
        for x_m, y_m in points:
            cell = self.router.cell_of(x_m, y_m)
            admitted = self.bucket.admit(t_us)
            if admitted:
                self.stats.admitted += 1
            else:
                self.stats.shed += 1
            plan.append((cell, admitted))
        self.last_plan = plan
        # Pass 2: group the admitted cells by owning shard, deduped.
        by_shard: dict[int, list[tuple[int, int]]] = {}
        seen: set[tuple[int, int]] = set()
        admitted_count = 0
        for cell, admitted in plan:
            if not admitted:
                continue
            admitted_count += 1
            if cell in seen:
                continue
            seen.add(cell)
            by_shard.setdefault(self.router.shard_of_cell(*cell), []).append(
                cell
            )
        self.stats.coalesced += admitted_count - len(seen)
        # Pass 3: one batched call per shard, in shard order (the
        # deterministic order the parallel/sequential contract needs).
        span_on = self.spans.enabled and span_refs is not None
        lookups: dict[tuple[int, int], tuple[int, bool, int]] = {}
        responses: dict[tuple[int, int], tuple[int, ...]] = {}
        for shard_id in sorted(by_shard):
            self.stats.shard_batches += 1
            shard = self.router.shards[shard_id]
            for cell in by_shard[shard_id]:
                responses[cell] = shard.channels_in_cell(*cell, t_us)
                if span_on:
                    hit, scanned = shard.last_outcomes[0]
                    lookups[cell] = (shard_id, hit, scanned)
        for cell, channels in responses.items():
            self._stale[cell] = (self._bucket_now, channels)
        # Pass 4: answer in request order; shed requests go through the
        # policy (which may read the just-refreshed stale store).
        answers = [
            responses[cell] if admitted else self.policy.shed(self, *cell)
            for cell, admitted in plan
        ]
        if span_on:
            self._record_spans(
                plan, answers, lookups, t_us, enqueue_t_us, span_refs
            )
        tel = self.telemetry
        if tel.enabled:
            tel.histogram(
                "frontend_batch_requests", DEFAULT_BATCH_BOUNDS
            ).observe(float(len(points)))
            latency = tel.histogram(
                "frontend_latency_us", DEFAULT_LATENCY_BOUNDS_US
            )
            for i, answer in enumerate(answers):
                if answer is None:
                    continue
                enqueued = t_us if enqueue_t_us is None else enqueue_t_us[i]
                latency.observe(t_us - enqueued)
        return answers

    def _record_spans(
        self,
        plan: list[tuple[tuple[int, int], bool]],
        answers: list[tuple[int, ...] | None],
        lookups: dict[tuple[int, int], tuple[int, bool, int]],
        t_us: float,
        enqueue_t_us: Sequence[float] | None,
        span_refs: Sequence[tuple[str, Any]],
    ) -> None:
        """Record one span tree (or a defer) per request of the burst.

        Replays the batch's own classification in request order: the
        first admitted request per cell is the *primary* (it carries
        the shard lookup's cache-hit/scan spans), later admitted
        requests for the same cell are ``coalesced``, and shed
        requests either defer (answer None) or serve from the stale
        store.
        """
        sp = self.spans
        primary: set[tuple[int, int]] = set()
        for i, ((cell, admitted), answer) in enumerate(zip(plan, answers)):
            req, subject = span_refs[i]
            enq = t_us if enqueue_t_us is None else enqueue_t_us[i]
            tid = sp.request_begin(req, subject, enq)
            if not admitted:
                sp.request_defer(tid, t_us)
                if answer is None:
                    continue
                sp.request_serve(
                    tid, t_us, "frontend",
                    [("stale_serve", "frontend", {}, ())],
                )
                continue
            if cell in lookups and cell not in primary:
                primary.add(cell)
                shard_id, hit, scanned = lookups[cell]
                steps = [
                    ("admission", "frontend", {}, ()),
                    lookup_steps(hit, scanned, f"shard{shard_id}", shard=True),
                ]
            else:
                steps = [
                    ("admission", "frontend", {}, ()),
                    ("coalesced", "frontend", {}, ()),
                ]
            sp.request_serve(tid, t_us, "frontend", steps)

    def query(
        self,
        x_m: float,
        y_m: float,
        t_us: float = 0.0,
        enqueue_t_us: float | None = None,
        span_ref: tuple[str, Any] | None = None,
    ) -> tuple[int, ...] | None:
        """One request through the same admission/batching path."""
        stamps = None if enqueue_t_us is None else [enqueue_t_us]
        refs = None if span_ref is None else [span_ref]
        return self.query_batch(
            [(x_m, y_m)], t_us, enqueue_t_us=stamps, span_refs=refs
        )[0]

    # -- updates -------------------------------------------------------------

    def register_mic(
        self,
        registration: MicRegistration,
        span_ref: tuple[int, float] | None = None,
    ) -> tuple[int, ...]:
        """Accept a registration: invalidate, then push-notify.

        Routes the zone through the shard tier (each touched shard
        invalidates its cached responses), drops the frontend's own
        stale entries the zone touches (``serve-stale`` must never
        serve across a zone edge it has been told about), and fans the
        notification out through the push registry when one is
        attached.  Returns the notified device ids (empty without a
        registry).

        ``span_ref`` optionally labels the registration with its
        ``(event index, t_us)`` identity so the attached span recorder
        can record the invalidation + push fan-out tree.
        """
        invalidated = self.router.register_mic(registration)
        purged = [
            cell
            for cell in self._stale
            if circle_intersects_cell(
                registration.x_m,
                registration.y_m,
                registration.radius_m,
                *cell,
                self.router.cache_resolution_m,
            )
        ]
        for cell in purged:
            del self._stale[cell]
        notified = (
            () if self.push is None else self.push.notify_zone(registration)
        )
        sp = self.spans
        if sp.enabled and span_ref is not None:
            index, t_us = span_ref
            steps = [
                (
                    "invalidate",
                    "frontend",
                    {"entries": int(invalidated), "stale_purged": len(purged)},
                    (),
                )
            ]
            if self.push is not None:
                steps.append(
                    ("push_fanout", "push", {"notified": len(notified)}, ())
                )
            sp.record_tree("mic_register", "mic", index, t_us, "frontend", steps)
        return notified

    def publish_metrics(self, telemetry=None) -> None:
        """Publish the whole front-door stack into a sim-clock registry.

        Frontend counters land as ``frontend_*``; the router (and,
        when attached, the push registry) cascade their own
        ``publish_metrics``, so one call snapshots the full tier.
        Defaults to the registry attached at construction.
        """
        tel = self.telemetry if telemetry is None else telemetry
        if not tel.enabled:
            return
        tel.record_stats("frontend", self.stats.as_dict())
        self.router.publish_metrics(tel)
        if self.push is not None:
            self.push.publish_metrics(tel)
