"""PAWS-style push notifications: registered devices hear about zones.

The pull-only FCC regime leaves a **violation window**: a device
re-checks the database only after moving ~100 m (or on TTL expiry), so
a microphone registering *between* re-checks is protected on paper
while the device keeps transmitting on its stale response — the
staleness :func:`~repro.wsdb.mobility.simulate_roaming` scores as
``violation_ticks``.  The PAWS protocol (RFC 7545, the IETF
standardization of these databases) closes it with *registration*:
a device subscribes with its location, and the database **pushes** a
notification when a new protection zone can change the device's
response.

:class:`PushRegistry` is that subscription book, cell-granular like the
response protocol itself: a device subscribes to its current
quantization cell (moving is an idempotent re-subscribe), and
:meth:`notify_zone` fans a new zone out to every device whose
subscribed cell the zone touches — the same
:func:`~repro.wsdb.index.circle_intersects_cell` predicate the service
uses to invalidate cached responses, so a device is notified exactly
when its cached response may have changed.  Notification order is
sorted by device id, keeping fan-out deterministic for the
byte-identical parallel/sequential contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpectrumMapError
from repro.wsdb.index import circle_intersects_cell
from repro.wsdb.model import MicRegistration
from repro.wsdb.service import DEFAULT_CACHE_RESOLUTION_M

__all__ = ["PushRegistry", "PushStats"]


@dataclass
class PushStats:
    """Registry counters for benchmarking the push path.

    Attributes:
        subscriptions: first-time device registrations.
        moves: re-subscriptions that changed a device's cell.
        unsubscriptions: devices dropped from the book.
        zones_notified: zone events that reached at least one device.
        notifications: total device notifications delivered (the
            fan-out; one zone touching five subscribed cells delivers
            five).
    """

    subscriptions: int = 0
    moves: int = 0
    unsubscriptions: int = 0
    zones_notified: int = 0
    notifications: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-data snapshot (for probes and benchmark JSON)."""
        return {
            "subscriptions": self.subscriptions,
            "moves": self.moves,
            "unsubscriptions": self.unsubscriptions,
            "zones_notified": self.zones_notified,
            "notifications": self.notifications,
        }


class PushRegistry:
    """Cell-granular device subscriptions with zone fan-out.

    Args:
        cache_resolution_m: quantization-cell edge — must match the
            database the devices query, so a notification fires exactly
            when the device's cached cell response may have changed.
    """

    def __init__(
        self, cache_resolution_m: float = DEFAULT_CACHE_RESOLUTION_M
    ):
        if cache_resolution_m <= 0:
            raise SpectrumMapError(
                f"cache_resolution_m must be > 0, got {cache_resolution_m!r}"
            )
        self.cache_resolution_m = cache_resolution_m
        self._cell_of_device: dict[int, tuple[int, int]] = {}
        self._devices_in_cell: dict[tuple[int, int], set[int]] = {}
        self.stats = PushStats()

    def __len__(self) -> int:
        return len(self._cell_of_device)

    def subscribed_cell(self, device_id: int) -> tuple[int, int] | None:
        """The cell *device_id* is subscribed to (None when absent)."""
        return self._cell_of_device.get(device_id)

    def subscribe(self, device_id: int, qx: int, qy: int) -> None:
        """Subscribe *device_id* to cell (qx, qy).

        Move semantics: a device already subscribed elsewhere is moved
        (its old cell is released); re-subscribing to the current cell
        is a no-op, so callers can refresh every tick for free.
        """
        cell = (qx, qy)
        previous = self._cell_of_device.get(device_id)
        if previous == cell:
            return
        if previous is None:
            self.stats.subscriptions += 1
        else:
            self.stats.moves += 1
            self._release(device_id, previous)
        self._cell_of_device[device_id] = cell
        self._devices_in_cell.setdefault(cell, set()).add(device_id)

    def unsubscribe(self, device_id: int) -> None:
        """Drop *device_id* from the book (absent devices are a no-op)."""
        cell = self._cell_of_device.pop(device_id, None)
        if cell is None:
            return
        self._release(device_id, cell)
        self.stats.unsubscriptions += 1

    def _release(self, device_id: int, cell: tuple[int, int]) -> None:
        devices = self._devices_in_cell[cell]
        devices.discard(device_id)
        if not devices:
            del self._devices_in_cell[cell]

    def notify_zone(self, registration: MicRegistration) -> tuple[int, ...]:
        """Devices whose subscribed cell *registration*'s zone touches.

        Returns the notified device ids sorted ascending (deterministic
        fan-out).  The zone/cell predicate is the service's own
        invalidation geometry, so the notified set is exactly the
        devices whose cached response the registration can change.
        """
        notified: list[int] = []
        for (qx, qy), devices in self._devices_in_cell.items():
            if circle_intersects_cell(
                registration.x_m,
                registration.y_m,
                registration.radius_m,
                qx,
                qy,
                self.cache_resolution_m,
            ):
                notified.extend(devices)
        notified.sort()
        if notified:
            self.stats.zones_notified += 1
        self.stats.notifications += len(notified)
        return tuple(notified)

    def publish_metrics(self, telemetry) -> None:
        """Publish the push counters (``push_*``) plus the live
        subscription count into a sim-clock registry."""
        if not telemetry.enabled:
            return
        telemetry.record_stats("push", self.stats.as_dict())
        telemetry.gauge("push_live_subscriptions").set(float(len(self)))
