"""The querystorm workload: a sharded cluster under storm + mobility.

This driver is the cluster subsystem's proving ground, combining three
load sources against one :class:`~repro.wsdb.cluster.router.ShardRouter`
behind one :class:`~repro.wsdb.cluster.frontend.BatchFrontend`:

* a **query storm** — ``offered_qps`` synthetic availability requests
  per simulated second, drawn uniformly over the plane and submitted as
  one burst per tick (the batch shape the frontend coalesces and, when
  a rate limit is set, sheds);
* a **roaming population** — the :mod:`~repro.wsdb.mobility` mobile
  clients, re-checking through the same frontend (so a storm can starve
  them: a shed re-check is *deferred* — the client keeps its stale
  response and retries next tick);
* a **citywide deployment** — ``num_aps`` fixed APs booted off the
  router with mic-event backup-channel recovery, exactly as in the
  citywide/roaming drivers (AP control traffic queries the router
  directly: the operator's own path is not admission-controlled).

With ``push=True`` the clients additionally register in a
:class:`~repro.wsdb.cluster.push.PushRegistry`: a mid-session
microphone registration then notifies every subscribed client whose
cell the zone touches, and the notified clients refresh **that tick**
instead of waiting for the FCC re-check rule's next trigger — closing
the pull model's violation window.  ``bench_wsdb_cluster`` asserts the
closure: pushed runs accrue strictly less ground-truth violation time
than pull-only runs of the same seed.

Everything derives from the master seed through labelled
:func:`~repro.sim.rng.stream_seed` streams, and admission/batching are
clocked by simulation time, so a run is byte-identical in any process —
the contract the ``querystorm`` run kind and ``ParallelRunner`` rely
on.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator

from repro.errors import SimulationError
from repro.sim.rng import stream_seed
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.telemetry.spans import NULL_SPANS
from repro.traces.record import NULL_RECORDER
from repro.wsdb.citywide import (
    DEFAULT_INTERFERENCE_RADIUS_M,
    MicEvent,
    boot_aps,
    displace_covered_aps,
    generate_mic_events,
    snapshot_assigned_aps,
)
from repro.wsdb.cluster.frontend import BatchFrontend, RejectPolicy
from repro.wsdb.cluster.push import PushRegistry
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.mobility import (
    DEFAULT_SPEED_MPS,
    DEFAULT_TICK_US,
    ENGINES,
    advance_client,
    associate_nearest,
    in_violation,
    spawn_clients,
)
from repro.wsdb.service import quantize_cell, ttl_bucket

__all__ = ["StormFeed", "simulate_querystorm", "synthetic_storm"]


def synthetic_storm(
    offered_qps: float,
    tick_us: float,
    ticks: int,
    extent_m: float,
    rng: random.Random,
) -> Iterator[tuple[float, float, float]]:
    """The synthetic poisson-ish storm as a ``(t_us, x, y)`` stream.

    This is the workload-source seam both storm engines consume (via
    :class:`StormFeed`): per tick, a fractional request budget of
    ``offered_qps * tick_us / 1e6`` accrues and its integer part is
    drained as uniformly placed requests — the exact accrual arithmetic
    and RNG draw order the drivers used inline before the seam existed,
    so synthetic output is pinned unchanged.  A recorded trace's
    :class:`~repro.traces.replay.TraceWorkload` yields the same triple
    shape, which is all it takes to replay captured traffic through the
    same path.
    """
    budget = 0.0
    for k in range(ticks + 1):
        t_us = k * tick_us
        budget += offered_qps * tick_us / 1e6
        n = int(budget)
        budget -= n
        for _ in range(n):
            yield (
                t_us,
                rng.uniform(0.0, extent_m),
                rng.uniform(0.0, extent_m),
            )


class StormFeed:
    """One-event-lookahead consumer of a ``(t_us, x, y)`` storm source.

    :meth:`burst` drains every pending request stamped at or before the
    tick fence, preserving source order — the burst shape the frontend
    admits and coalesces.
    """

    def __init__(self, source: Iterable[tuple[float, float, float]]):
        self._it = iter(source)
        self._pending = next(self._it, None)
        #: The last burst's source timestamps, one per returned point —
        #: the enqueue stamps the frontend's latency histogram observes
        #: (a replayed trace carries sub-tick stamps; the synthetic
        #: storm stamps on the fence).
        self.last_times: list[float] = []

    def burst(self, t_us: float) -> list[tuple[float, float]]:
        """All queued ``(x, y)`` points due at or before ``t_us``."""
        points: list[tuple[float, float]] = []
        times: list[float] = []
        pending = self._pending
        while pending is not None and pending[0] <= t_us:
            points.append((pending[1], pending[2]))
            times.append(pending[0])
            pending = next(self._it, None)
        self._pending = pending
        self.last_times = times
        return points


def simulate_querystorm(
    router: ShardRouter,
    num_aps: int,
    num_clients: int,
    duration_us: float,
    seed: int,
    offered_qps: float = 0.0,
    push: bool = False,
    speed_mps: float = DEFAULT_SPEED_MPS,
    recheck_m: float | None = None,
    mic_events: int = 0,
    tick_us: float = DEFAULT_TICK_US,
    rate_limit_qps: float | None = None,
    burst_size: float | None = None,
    policy: str = RejectPolicy.name,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
    engine: str = "scalar",
    storm_source: Iterable[tuple[float, float, float]] | None = None,
    recorder: Any = None,
    telemetry: Any = None,
    profiler: Any = None,
    spans: Any = None,
) -> dict[str, Any]:
    """Run one querystorm session; returns a plain-data report.

    The report is JSON-plain throughout (the ``querystorm`` run kind's
    probe routes it into an ``ExperimentResult`` unchanged).

    Args:
        router: the sharded database tier (APs, clients, and the storm
            share it).
        num_aps: fixed APs booted across the plane (citywide-style).
        num_clients: mobile clients following waypoint paths (0 runs a
            pure storm with no mobility or compliance scoring).
        duration_us: session length; the tick loop covers [0, duration].
        seed: master seed; placement, paths, storm points, and mic
            events derive from labelled streams of it.
        offered_qps: synthetic storm load (requests per simulated
            second), submitted as one burst per tick.
        push: register clients for PAWS-style zone notifications; a
            notified client refreshes immediately instead of waiting
            for its next re-check trigger.
        speed_mps: client speed along its path.
        recheck_m: movement granularity of the re-check rule (None:
            the router's own ``cache_resolution_m``).
        mic_events: mid-session microphone registrations.
        tick_us: simulation step.
        rate_limit_qps / burst_size / policy: frontend admission
            control (None rate: nothing is shed).
        interference_radius_m: AP mutual-interference radius.
        engine: "scalar" (the reference per-client loop here) or
            "vector" (the columnar numpy engine,
            :mod:`repro.wsdb.vector`).  Both produce bit-identical
            reports; "vector" is the one that scales to millions of
            clients.
        storm_source: an explicit ``(t_us, x, y)`` workload stream in
            place of the synthetic generator — typically a
            :class:`~repro.traces.replay.TraceWorkload` replaying a
            recorded storm.  ``offered_qps`` is then only echoed in the
            report (pass the source run's value to make the reports
            comparable key-for-key).
        recorder: a :class:`~repro.traces.record.TraceRecorder` to
            stream dense run events into (None: the zero-overhead null
            recorder).  Recording observes only — reports are
            bit-identical with and without it.  The caller closes the
            recorder.
        telemetry: a sim-clock
            :class:`~repro.telemetry.metrics.MetricsRegistry` (None:
            the zero-overhead null sink).  When attached, the run
            samples a per-tick time series, the frontend observes
            request latencies, the whole cluster publishes its counters
            at the end, and the report gains a ``"telemetry"``
            snapshot.  Deterministic: both engines produce identical
            snapshots; with None the report is byte-identical to a
            pre-telemetry run.
        profiler: a wall-clock
            :class:`~repro.telemetry.profiler.PhaseProfiler` (None: the
            no-op profiler).  Phase instrumentation lives in the vector
            engine's batched tick stages; the scalar reference loop
            accepts the argument for signature parity but does not
            profile.  Never affects the report.
        spans: a sim-clock
            :class:`~repro.telemetry.spans.SpanRecorder` (None: the
            zero-overhead null recorder).  When attached, every storm
            query and client re-check records a request-scoped span
            tree through the frontend and every mic registration an
            invalidation/fan-out tree, and the report gains a
            ``"spans"`` table.  Deterministic: both engines emit
            byte-identical span sets; with None the report is
            byte-identical to a spans-free run.
    """
    if num_clients < 0:
        raise SimulationError(
            f"querystorm needs >= 0 clients, got {num_clients!r}"
        )
    if duration_us <= 0:
        raise SimulationError(
            f"querystorm duration must be > 0, got {duration_us!r}"
        )
    if offered_qps < 0:
        raise SimulationError(
            f"offered_qps must be >= 0, got {offered_qps!r}"
        )
    if speed_mps <= 0:
        raise SimulationError(f"speed must be > 0, got {speed_mps!r}")
    if tick_us <= 0:
        raise SimulationError(f"tick must be > 0, got {tick_us!r}")
    if recheck_m is None:
        recheck_m = router.cache_resolution_m
    if recheck_m <= 0:
        raise SimulationError(f"recheck_m must be > 0, got {recheck_m!r}")
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "vector":
        # Imported lazily: the scalar path must not require numpy.
        from repro.wsdb.vector import simulate_querystorm_vector

        return simulate_querystorm_vector(
            router,
            num_aps=num_aps,
            num_clients=num_clients,
            duration_us=duration_us,
            seed=seed,
            offered_qps=offered_qps,
            push=push,
            speed_mps=speed_mps,
            recheck_m=recheck_m,
            mic_events=mic_events,
            tick_us=tick_us,
            rate_limit_qps=rate_limit_qps,
            burst_size=burst_size,
            policy=policy,
            interference_radius_m=interference_radius_m,
            storm_source=storm_source,
            recorder=recorder,
            telemetry=telemetry,
            profiler=profiler,
            spans=spans,
        )

    if recorder is None:
        recorder = NULL_RECORDER
    recording = recorder.enabled
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    tel_on = tel.enabled
    sp = NULL_SPANS if spans is None else spans
    sp_on = sp.enabled
    registry = PushRegistry(router.cache_resolution_m) if push else None
    frontend = BatchFrontend(
        router,
        rate_limit_qps=rate_limit_qps,
        burst_size=burst_size,
        policy=policy,
        push=registry,
        telemetry=tel,
        spans=sp,
    )

    extent_m = router.metro.extent_m
    aps = boot_aps(
        router, num_aps, seed, "querystorm-aps", interference_radius_m
    )

    clients = spawn_clients(num_clients, seed, "querystorm-client", extent_m)

    events = generate_mic_events(
        mic_events,
        duration_us,
        extent_m,
        router.metro.num_channels,
        stream_seed(seed, "querystorm-mics"),
    )
    next_event = 0
    displaced = backup_recoveries = full_reassignments = outages = 0

    requeries = [0] * num_clients
    handoffs = [0] * num_clients
    vacations = [0] * num_clients
    connected = [0] * num_clients
    violations = [0] * num_clients
    disconnected_ticks = 0
    deferred_requeries = 0
    push_refreshes = 0
    storm_queries = 0
    total_handoffs = 0
    # First-attempt time of a deferred re-check, per client: when a shed
    # re-check finally lands, the latency histogram observes the wait
    # from the *first* attempt, not the successful retry.
    pending_since: list[float | None] = [None] * num_clients

    def register_event(event: MicEvent, index: int) -> tuple[int, ...]:
        nonlocal displaced, backup_recoveries, full_reassignments, outages
        registration = event.registration()
        notified = frontend.register_mic(
            registration,
            span_ref=(index, event.t_us) if sp_on else None,
        )
        if recording:
            mic_cell = quantize_cell(
                event.x_m, event.y_m, router.cache_resolution_m
            )
            recorder.emit(
                "mic",
                event.t_us,
                subject=index,
                cell=mic_cell,
                channels=(event.uhf_index,),
                x=event.x_m,
                y=event.y_m,
                aux=event.uhf_index,
            )
            for device in notified:
                recorder.emit(
                    "push",
                    event.t_us,
                    subject=device,
                    cell=mic_cell,
                    channels=(event.uhf_index,),
                    aux=index,
                )
        d, b, r, o = displace_covered_aps(
            router, aps, event, registration, interference_radius_m
        )
        displaced += d
        backup_recoveries += b
        full_reassignments += r
        outages += o
        return notified

    live_aps, spans_by_id = snapshot_assigned_aps(aps)

    step_m = speed_mps * tick_us / 1e6
    ticks = int(duration_us // tick_us)
    if storm_source is None:
        storm_source = synthetic_storm(
            offered_qps,
            tick_us,
            ticks,
            extent_m,
            random.Random(stream_seed(seed, "querystorm-load")),
        )
    feed = StormFeed(storm_source)
    storm_seq = 0
    viol_open = [False] * num_clients
    # Undelivered push notifications: a notified client leaves this set
    # only once its refresh query is actually admitted, so admission
    # control can delay — but never silently drop — a notification.
    pushed: set[int] = set()
    for k in range(ticks + 1):
        t_us = k * tick_us
        tick_violating = 0
        # Mic registrations whose session starts by this tick go live:
        # cached and stale responses inside the zone are invalidated,
        # covered APs walk their backups, and — under push — subscribed
        # clients in the zone are notified for same-tick refresh.
        fired = False
        while next_event < len(events) and events[next_event].t_us <= t_us:
            pushed.update(register_event(events[next_event], next_event))
            next_event += 1
            fired = True
        if fired:
            live_aps, spans_by_id = snapshot_assigned_aps(aps)

        # The storm burst goes first: background load contends for
        # admission tokens ahead of the clients' re-checks, which is
        # the starvation scenario shed policies exist for.
        points = feed.burst(t_us)
        if points:
            span_refs = (
                [("storm", storm_queries + j) for j in range(len(points))]
                if sp_on
                else None
            )
            storm_queries += len(points)
            responses = frontend.query_batch(
                points,
                t_us,
                enqueue_t_us=feed.last_times,
                span_refs=span_refs,
            )
            if recording:
                for (x_m, y_m), response, (qcell, admitted) in zip(
                    points, responses, frontend.last_plan
                ):
                    recorder.emit(
                        "query",
                        t_us,
                        subject=storm_seq,
                        cell=qcell,
                        channels=response,
                        x=x_m,
                        y=y_m,
                        aux=int(admitted),
                    )
                    storm_seq += 1

        for client in clients:
            if k > 0:
                advance_client(client, step_m, extent_m)
            if registry is not None:
                registry.subscribe(
                    client.client_id,
                    *router.cell_of(client.x_m, client.y_m),
                )
            # The re-check rule, plus the push escape hatch: a client
            # notified this tick refreshes immediately instead of
            # riding its stale response to the next crossing/expiry.
            cell = quantize_cell(client.x_m, client.y_m, recheck_m)
            bucket = ttl_bucket(t_us, router.ttl_us)
            was_pushed = client.client_id in pushed
            if (
                cell != client.last_cell
                or bucket != client.last_bucket
                or was_pushed
            ):
                since = pending_since[client.client_id]
                response = frontend.query(
                    client.x_m,
                    client.y_m,
                    t_us,
                    enqueue_t_us=t_us if since is None else since,
                    span_ref=(
                        ("recheck", client.client_id) if sp_on else None
                    ),
                )
                if recording:
                    qcell, admitted = frontend.last_plan[0]
                    recorder.emit(
                        "recheck",
                        t_us,
                        subject=client.client_id,
                        cell=qcell,
                        channels=response,
                        x=client.x_m,
                        y=client.y_m,
                        aux=int(admitted),
                    )
                if response is None:
                    # Shed without a stale fallback: keep the old
                    # response and retry next tick (the deferral the
                    # reject policy produces under storm starvation).
                    deferred_requeries += 1
                    if since is None:
                        pending_since[client.client_id] = t_us
                else:
                    client.known_free = frozenset(response)
                    client.last_cell = cell
                    client.last_bucket = bucket
                    requeries[client.client_id] += 1
                    pending_since[client.client_id] = None
                    if was_pushed:
                        push_refreshes += 1
                        pushed.discard(client.client_id)

            prev = client.ap
            prev_spans = (
                spans_by_id.get(prev.ap_id) if prev is not None else None
            )
            if prev_spans is not None and not prev_spans <= client.known_free:
                vacations[client.client_id] += 1
            client.ap = associate_nearest(
                client.x_m, client.y_m, client.known_free, live_aps
            )
            if client.ap is None:
                disconnected_ticks += 1
                if recording and viol_open[client.client_id]:
                    recorder.emit(
                        "violation_close",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        x=client.x_m,
                        y=client.y_m,
                        aux=0,
                    )
                    viol_open[client.client_id] = False
                continue
            if prev is not None and client.ap.ap_id != prev.ap_id:
                handoffs[client.client_id] += 1
                total_handoffs += 1
                if recording:
                    recorder.emit(
                        "handoff",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        channels=tuple(
                            sorted(client.ap.channel.spanned_indices)
                        ),
                        x=client.x_m,
                        y=client.y_m,
                        aux=client.ap.ap_id,
                    )
            connected[client.client_id] += 1
            # Ground-truth compliance (reference linear scan off the
            # base metro — never a shard query, so measuring does not
            # perturb cluster stats).
            violating = in_violation(
                router.metro,
                client.x_m,
                client.y_m,
                t_us,
                client.ap.channel.spanned_indices,
            )
            if violating:
                violations[client.client_id] += 1
                tick_violating += 1
            if recording:
                if violating and not viol_open[client.client_id]:
                    recorder.emit(
                        "violation_open",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        channels=tuple(
                            sorted(client.ap.channel.spanned_indices)
                        ),
                        x=client.x_m,
                        y=client.y_m,
                    )
                    viol_open[client.client_id] = True
                elif not violating and viol_open[client.client_id]:
                    recorder.emit(
                        "violation_close",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        x=client.x_m,
                        y=client.y_m,
                        aux=0,
                    )
                    viol_open[client.client_id] = False

        if tel_on:
            agg = router.aggregate_stats()
            tel.sample_tick(
                t_us,
                queries=agg.queries,
                cache_hits=agg.cache_hits,
                requests=frontend.stats.requests,
                shed=frontend.stats.shed,
                pushes=(
                    registry.stats.notifications
                    if registry is not None
                    else 0
                ),
                handoffs=total_handoffs,
                violating=tick_violating,
            )

    if recording:
        # Still-open violation windows close at the end of the run,
        # marked aux=1 so analyses can tell truncation from recovery.
        end_us = ticks * tick_us
        for client in clients:
            if viol_open[client.client_id]:
                recorder.emit(
                    "violation_close",
                    end_us,
                    subject=client.client_id,
                    cell=quantize_cell(client.x_m, client.y_m, recheck_m),
                    x=client.x_m,
                    y=client.y_m,
                    aux=1,
                )

    # Events past the last evaluated tick register anyway, mirroring
    # the citywide/roaming process-every-event semantics.
    while next_event < len(events):
        register_event(events[next_event], next_event)
        next_event += 1

    connected_ticks = sum(connected)
    violation_ticks = sum(violations)
    client_ticks = num_clients * (ticks + 1)
    if tel_on:
        frontend.publish_metrics(tel)
        tel.counter("storm_queries").inc(storm_queries)
        tel.counter("requeries").inc(sum(requeries))
        tel.counter("deferred_requeries").inc(deferred_requeries)
        tel.counter("push_refreshes").inc(push_refreshes)
        tel.counter("handoffs").inc(total_handoffs)
        tel.counter("vacations").inc(sum(vacations))
        tel.counter("violation_ticks").inc(violation_ticks)
        tel.counter("connected_ticks").inc(connected_ticks)
        tel.counter("disconnected_ticks").inc(disconnected_ticks)
    report = {
        "num_aps": num_aps,
        "num_clients": num_clients,
        "num_shards": router.num_shards,
        "shard_grid": router.grid,
        "duration_us": duration_us,
        "tick_us": tick_us,
        "speed_mps": speed_mps,
        "recheck_m": recheck_m,
        "extent_m": extent_m,
        "offered_qps": offered_qps,
        "push": push,
        "rate_limit_qps": rate_limit_qps,
        "shed_policy": policy,
        "storm_queries": storm_queries,
        "assigned_aps": sum(1 for ap in aps if ap.channel is not None),
        "requeries": sum(requeries),
        "deferred_requeries": deferred_requeries,
        "push_refreshes": push_refreshes,
        "handoffs": sum(handoffs),
        "vacations": sum(vacations),
        "connected_ticks": connected_ticks,
        "disconnected_ticks": disconnected_ticks,
        "connected_fraction": (
            connected_ticks / client_ticks if client_ticks else 0.0
        ),
        "violation_ticks": violation_ticks,
        "violation_us": violation_ticks * tick_us,
        "violation_free_fraction": (
            1.0 - violation_ticks / connected_ticks if connected_ticks else 1.0
        ),
        "mic_events": len(events),
        "displaced_aps": displaced,
        "backup_recoveries": backup_recoveries,
        "full_reassignments": full_reassignments,
        "outages": outages,
        "per_client": tuple(
            (i, requeries[i], handoffs[i], vacations[i], connected[i])
            for i in range(num_clients)
        ),
        "final_cells": tuple(
            quantize_cell(c.x_m, c.y_m, recheck_m) for c in clients
        ),
        "frontend": frontend.stats.as_dict(),
        "push_stats": (
            registry.stats.as_dict() if registry is not None else None
        ),
        "db": router.stats_dict(),
        "per_shard": router.per_shard_stats(),
    }
    if tel_on:
        report["telemetry"] = tel.snapshot()
    if sp_on:
        report["spans"] = sp.snapshot()
    return report
