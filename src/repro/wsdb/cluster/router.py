"""Sharding the metro plane: K databases behind one deterministic router.

One :class:`~repro.wsdb.service.WhiteSpaceDatabase` indexes every
incumbent of the metro; every query scans the candidates its single
:class:`~repro.wsdb.index.GridIndex` buckets together.  A multi-metro
service tier shards instead: :class:`ShardRouter` partitions the plane
into K **cell-aligned** territories (shard boundaries fall on
quantization-cell edges, so one response cell never straddles shards),
builds each shard its own database over only the incumbents whose
protected contour can reach that territory, and routes every query to
exactly one shard by pure coordinate arithmetic.

Why this helps: a shard's spatial index holds the territory's incumbent
*subset*, and — holding the per-shard bucket budget constant — can
afford an index ``sqrt(K)`` times finer per axis than the monolith's,
so the candidates a query scans shrink as K grows — the aggregate
``candidates_scanned / queries`` ratio is the sharding win
``bench_wsdb_cluster`` measures.  Correctness is unchanged: a query
cell lies inside its shard's territory, the shard indexes every contour
intersecting that territory (border territories extend off-plane, so
clamped routing and off-plane contours stay exact), and
``GridIndex.covering_rect`` is conservative over the cell — therefore a
shard's cell response equals the unsharded database's, bit for bit.

Mic registrations fan out: a new protection zone is routed to every
shard whose territory it touches (each invalidates its own cached
responses), and to the base metro so ground-truth compliance scoring
sees it.  The router mirrors the database's query surface
(``channels_at`` / ``channels_in_cell`` / ``channels_at_many`` /
``spectrum_map_at`` / ``zone_affects`` / ``register_mic``), so the
citywide helpers (``boot_aps``, ``displace_covered_aps``) run against a
router unchanged.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap
from repro.wsdb.index import circle_intersects_rect
from repro.wsdb.model import Metro, MicRegistration
from repro.wsdb.service import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_CACHE_RESOLUTION_M,
    DEFAULT_TTL_US,
    WhiteSpaceDatabase,
    WsdbStats,
    default_cell_m,
    quantize_cell,
)

__all__ = ["ShardRouter", "ShardTerritory", "cells_per_side", "shard_grid"]


def cells_per_side(extent_m: float, resolution_m: float) -> int:
    """Response cells per axis of an ``extent_m`` plane.

    The one home of the cell-count convention: the router partitions
    this many cells into shard columns/rows, and the querystorm kind's
    eager feasibility check must agree with it exactly — a spec that
    validates must never fail shard construction mid-run.
    """
    return max(1, math.ceil(extent_m / resolution_m))


def shard_grid(num_shards: int) -> tuple[int, int]:
    """The (columns, rows) layout for *num_shards* shards.

    Columns x rows equals *num_shards* exactly: columns is the largest
    divisor not exceeding the square root, so square counts tile as
    squares (4 -> 2x2, 16 -> 4x4) and awkward counts degrade to the
    most balanced rectangle available (6 -> 2x3, prime K -> 1xK
    stripes).  Deterministic, so routing is a pure function of the
    shard count.
    """
    if num_shards < 1:
        raise SpectrumMapError(f"num_shards must be >= 1, got {num_shards!r}")
    cols = int(math.isqrt(num_shards))
    while num_shards % cols:
        cols -= 1
    return cols, num_shards // cols


class ShardTerritory:
    """One shard's slice of the plane, in quantization-cell units.

    Attributes:
        shard_id: index into the router's shard list.
        cell_x0 / cell_x1, cell_y0 / cell_y1: half-open cell ranges
            ``[cell_x0, cell_x1)`` along each axis.
        x0_m / x1_m, y0_m / y1_m: the territory rectangle in meters —
            border territories extend to infinity outward, so clamped
            routing of off-plane coordinates stays consistent with the
            incumbent subset indexed here.
    """

    def __init__(
        self,
        shard_id: int,
        cell_range_x: tuple[int, int],
        cell_range_y: tuple[int, int],
        resolution_m: float,
        border_west: bool,
        border_east: bool,
        border_south: bool,
        border_north: bool,
    ):
        self.shard_id = shard_id
        self.cell_x0, self.cell_x1 = cell_range_x
        self.cell_y0, self.cell_y1 = cell_range_y
        self.x0_m = -math.inf if border_west else self.cell_x0 * resolution_m
        self.x1_m = math.inf if border_east else self.cell_x1 * resolution_m
        self.y0_m = -math.inf if border_south else self.cell_y0 * resolution_m
        self.y1_m = math.inf if border_north else self.cell_y1 * resolution_m

    def touches_zone(self, x_m: float, y_m: float, radius_m: float) -> bool:
        """True when a circular zone intersects this territory."""
        return circle_intersects_rect(
            x_m, y_m, radius_m, self.x0_m, self.y0_m, self.x1_m, self.y1_m
        )


class ShardRouter:
    """K cell-aligned shards, each a :class:`WhiteSpaceDatabase`.

    Args:
        metro: the full-metro ground truth.  Kept as ``self.metro`` for
            compliance scoring; each shard wraps its own sub-``Metro``
            of the incumbents whose contour intersects its territory.
        num_shards: shard count (laid out via :func:`shard_grid`).
        ttl_us / cache_resolution_m / cache_capacity: per-shard
            database parameters (every shard gets the full
            ``cache_capacity`` — capacity scales out with K, which is
            the point of a service tier).
        cell_m: per-shard spatial-index cell edge.  None picks the
            service's own default (the subset's mean contour radius)
            scaled down by ``sqrt(K)``: a shard holds ~1/K of the
            incumbents, so at the monolith's bucket budget its index
            is ``sqrt(K)`` finer per axis and prunes harder — this is
            where the per-query ``candidates_scanned`` win comes from.
            A 1-shard router therefore defaults to exactly the plain
            database's granularity.
    """

    def __init__(
        self,
        metro: Metro,
        num_shards: int,
        ttl_us: float = DEFAULT_TTL_US,
        cache_resolution_m: float = DEFAULT_CACHE_RESOLUTION_M,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        cell_m: float | None = None,
    ):
        if cache_resolution_m <= 0:
            raise SpectrumMapError(
                f"cache_resolution_m must be > 0, got {cache_resolution_m!r}"
            )
        cols, rows = shard_grid(num_shards)
        cells = cells_per_side(metro.extent_m, cache_resolution_m)
        if cols > cells or rows > cells:
            raise SpectrumMapError(
                f"cannot split {cells} cells per axis into a "
                f"{cols}x{rows} shard grid; lower num_shards or shrink "
                "cache_resolution_m"
            )
        self.metro = metro
        self.num_shards = num_shards
        self.grid = (cols, rows)
        self.ttl_us = ttl_us
        self.cache_resolution_m = cache_resolution_m
        self.cells_per_side = cells
        # Balanced cell-aligned partition: axis boundaries at
        # floor(i * cells / groups), so group sizes differ by at most
        # one cell and every boundary is a cell edge.
        self._x_bounds = [cells * i // cols for i in range(cols + 1)]
        self._y_bounds = [cells * j // rows for j in range(rows + 1)]
        self.territories: tuple[ShardTerritory, ...] = tuple(
            ShardTerritory(
                shard_id=j * cols + i,
                cell_range_x=(self._x_bounds[i], self._x_bounds[i + 1]),
                cell_range_y=(self._y_bounds[j], self._y_bounds[j + 1]),
                resolution_m=cache_resolution_m,
                border_west=i == 0,
                border_east=i == cols - 1,
                border_south=j == 0,
                border_north=j == rows - 1,
            )
            for j in range(rows)
            for i in range(cols)
        )
        shards: list[WhiteSpaceDatabase] = []
        scale = math.sqrt(num_shards)
        for territory in self.territories:
            sub_metro = Metro(
                extent_m=metro.extent_m,
                num_channels=metro.num_channels,
                sites=tuple(
                    site
                    for site in metro.sites
                    if territory.touches_zone(site.x_m, site.y_m, site.radius_m)
                ),
                registrations=[
                    reg
                    for reg in metro.registrations
                    if territory.touches_zone(reg.x_m, reg.y_m, reg.radius_m)
                ],
            )
            if cell_m is not None:
                shard_cell_m = cell_m
            else:
                # The service's own default heuristic on the subset,
                # scaled down by sqrt(K): equal bucket budget, finer
                # pruning.
                shard_cell_m = default_cell_m(sub_metro) / scale
            shards.append(
                WhiteSpaceDatabase(
                    sub_metro,
                    cell_m=shard_cell_m,
                    ttl_us=ttl_us,
                    cache_resolution_m=cache_resolution_m,
                    cache_capacity=cache_capacity,
                )
            )
        self.shards: tuple[WhiteSpaceDatabase, ...] = tuple(shards)
        #: Registrations accepted at the router (each may fan out to
        #: several shards; the per-shard ``mic_registrations`` counters
        #: sum to the fan-out, not to this).
        self.mic_registrations = 0

    # -- routing -------------------------------------------------------------

    def cell_of(self, x_m: float, y_m: float) -> tuple[int, int]:
        """The quantization cell containing (x, y) — the service's own
        floor-division convention (negative cells for off-plane
        coordinates), shared by every shard."""
        return quantize_cell(x_m, y_m, self.cache_resolution_m)

    def _axis_group(self, cell: int, bounds: list[int]) -> int:
        # Clamp off-plane cells to the border groups; the border
        # territories extend to infinity on those sides, so the clamped
        # shard indexes every contour such a cell's response can see.
        clamped = min(self.cells_per_side - 1, max(0, cell))
        return bisect_right(bounds, clamped) - 1

    def shard_of_cell(self, qx: int, qy: int) -> int:
        """The shard serving quantization cell (qx, qy)."""
        cols, _ = self.grid
        return (
            self._axis_group(qy, self._y_bounds) * cols
            + self._axis_group(qx, self._x_bounds)
        )

    def shard_of(self, x_m: float, y_m: float) -> int:
        """The shard serving coordinate (x, y)."""
        return self.shard_of_cell(*self.cell_of(x_m, y_m))

    # -- the database query surface ------------------------------------------

    def channels_in_cell(
        self, qx: int, qy: int, t_us: float = 0.0
    ) -> tuple[int, ...]:
        """The cell-granular response, served by the owning shard."""
        return self.shards[self.shard_of_cell(qx, qy)].channels_in_cell(
            qx, qy, t_us
        )

    def channels_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> tuple[int, ...]:
        """Available channels at (x, y), served by the owning shard."""
        return self.channels_in_cell(*self.cell_of(x_m, y_m), t_us)

    def channels_in_cells(
        self,
        cells: Sequence[tuple[int, int]],
        t_us: float = 0.0,
    ) -> list[tuple[int, ...]]:
        """Batch cell-granular responses: one per cell, in cell order.

        Protocol parity with
        :meth:`WhiteSpaceDatabase.channels_in_cells`: runs of
        consecutive cells owned by one shard forward to that shard's
        own batch path (one stats pass per run), so answers, cache
        mutations, and counter totals are exactly those of a
        :meth:`channels_in_cell` loop over the same sequence.
        """
        responses: list[tuple[int, ...]] = []
        run: list[tuple[int, int]] = []
        run_shard = -1
        for cell in cells:
            shard_id = self.shard_of_cell(*cell)
            if shard_id != run_shard and run:
                responses.extend(
                    self.shards[run_shard].channels_in_cells(run, t_us)
                )
                run = []
            run_shard = shard_id
            run.append(cell)
        if run:
            responses.extend(
                self.shards[run_shard].channels_in_cells(run, t_us)
            )
        return responses

    def channels_at_many(
        self,
        points: Sequence[tuple[float, float]],
        t_us: float = 0.0,
    ) -> list[tuple[int, ...]]:
        """Batch availability: one response per point, in point order.

        Rides the :meth:`channels_in_cells` batch path.
        """
        cell_of = self.cell_of
        return self.channels_in_cells(
            [cell_of(x, y) for x, y in points], t_us
        )

    def spectrum_map_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> SpectrumMap:
        """The availability response as an occupancy bit-vector."""
        return SpectrumMap.from_free(
            self.channels_at(x_m, y_m, t_us), self.metro.num_channels
        )

    def zone_affects(
        self, registration: MicRegistration, x_m: float, y_m: float
    ) -> bool:
        """True when *registration* can change the response served at (x, y)."""
        return self.shards[self.shard_of(x_m, y_m)].zone_affects(
            registration, x_m, y_m
        )

    # -- updates -------------------------------------------------------------

    def shards_touching_zone(
        self, x_m: float, y_m: float, radius_m: float
    ) -> tuple[int, ...]:
        """Shard ids whose territory a circular zone intersects, ascending."""
        return tuple(
            territory.shard_id
            for territory in self.territories
            if territory.touches_zone(x_m, y_m, radius_m)
        )

    def register_mic(self, registration: MicRegistration) -> int:
        """Fan a registration out to every shard its zone touches.

        The base metro records it too (ground-truth compliance scoring
        reads ``self.metro``, never a shard).  Returns the total cached
        responses invalidated across shards.
        """
        self.metro.add_registration(registration)
        self.mic_registrations += 1
        invalidated = 0
        for shard_id in self.shards_touching_zone(
            registration.x_m, registration.y_m, registration.radius_m
        ):
            invalidated += self.shards[shard_id].register_mic(registration)
        return invalidated

    # -- stats ---------------------------------------------------------------

    def aggregate_stats(self) -> WsdbStats:
        """Shard counters summed into one :class:`WsdbStats`.

        Note ``mic_registrations`` here is the *fan-out* (one zone
        touching three shards counts three); the router-level
        acceptance count is :attr:`mic_registrations`.
        """
        total = WsdbStats()
        for shard in self.shards:
            for key, value in vars(shard.stats).items():
                setattr(total, key, getattr(total, key) + value)
        return total

    def candidates_per_query(self, stats: WsdbStats | None = None) -> float:
        """Mean incumbents scanned per query across the cluster — the
        sharding headline (0 when nothing was asked).

        Pass an already-aggregated *stats* to reuse a snapshot; the
        default takes a fresh one.
        """
        if stats is None:
            stats = self.aggregate_stats()
        return (
            stats.candidates_scanned / stats.queries if stats.queries else 0.0
        )

    def stats_dict(self) -> dict[str, float | int]:
        """Aggregate snapshot plus router-level fields (for probes)."""
        stats = self.aggregate_stats()
        snapshot = stats.as_dict()
        snapshot["registration_fanout"] = snapshot["mic_registrations"]
        snapshot["mic_registrations"] = self.mic_registrations
        snapshot["candidates_per_query"] = self.candidates_per_query(stats)
        return snapshot

    def per_shard_stats(self) -> tuple[dict[str, float | int], ...]:
        """One :meth:`WsdbStats.as_dict` snapshot per shard, in shard order."""
        return tuple(shard.stats.as_dict() for shard in self.shards)

    def publish_metrics(self, telemetry) -> None:
        """Publish the cluster counters into a sim-clock registry.

        The aggregate snapshot lands under ``wsdb_*`` (same names as a
        monolithic database, so scalar-vs-cluster dashboards line up);
        per-shard query/hit/scan counters ride along as labeled series
        (``wsdb_queries{shard="k"}``).
        """
        if not telemetry.enabled:
            return
        telemetry.record_stats("wsdb", self.stats_dict())
        for shard_id, stats in enumerate(self.per_shard_stats()):
            for field in ("queries", "cache_hits", "candidates_scanned"):
                telemetry.counter(f"wsdb_{field}", shard=shard_id).inc(
                    int(stats[field])
                )
