"""A uniform-grid spatial index over protected contours.

The naive way to answer "which channels are denied at (x, y)?" scans
every incumbent — O(stations) per query, O(stations x queries) for the
batch workloads a city-scale database serves (hundreds of APs, periodic
re-queries, coverage surveys).  The grid index buckets each contour into
the cells its bounding box overlaps; a point query then inspects only
the incumbents bucketed in the *one* cell containing the point, and an
exact distance check filters bounding-box false positives.

The index keeps two counters — ``queries`` and ``candidates_scanned`` —
so tests (and benchmarks) can prove the pruning actually happened: for a
spread-out metro, ``candidates_scanned`` stays far below
``queries * len(entries)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Protocol, Sequence

from repro.errors import SpectrumMapError

__all__ = [
    "GridIndex",
    "SpatialEntry",
    "circle_intersects_cell",
    "circle_intersects_rect",
]


def circle_intersects_rect(
    cx_m: float,
    cy_m: float,
    radius_m: float,
    x0_m: float,
    y0_m: float,
    x1_m: float,
    y1_m: float,
) -> bool:
    """True when a circle intersects an axis-aligned rectangle.

    Standard clamped-nearest-point test, boundary-inclusive.  This is
    the one geometry predicate behind the cell-granular protocol: the
    index uses it to *compute* area responses and the service uses it
    to *invalidate* them, so both sides agree exactly at contour edges.
    """
    nearest_x = min(max(cx_m, x0_m), x1_m)
    nearest_y = min(max(cy_m, y0_m), y1_m)
    return math.hypot(cx_m - nearest_x, cy_m - nearest_y) <= radius_m


def circle_intersects_cell(
    cx_m: float,
    cy_m: float,
    radius_m: float,
    qx: int,
    qy: int,
    resolution_m: float,
) -> bool:
    """True when a circle intersects quantization cell (qx, qy).

    The one place the cell-(qx, qy) -> rectangle conversion lives.
    Response invalidation (service), stale-store purging (cluster
    frontend), and push notification (cluster registry) must agree
    exactly on which cells a protection zone touches — a device is
    notified iff its cached response was invalidated — so all three
    ride this helper instead of rebuilding the rectangle themselves.
    """
    return circle_intersects_rect(
        cx_m,
        cy_m,
        radius_m,
        qx * resolution_m,
        qy * resolution_m,
        (qx + 1) * resolution_m,
        (qy + 1) * resolution_m,
    )


class SpatialEntry(Protocol):
    """Anything with a position, a radius, a channel, and a schedule.

    Both :class:`~repro.wsdb.model.TvTransmitterSite` (whose
    ``active_at`` is constant True) and
    :class:`~repro.wsdb.model.MicRegistration` satisfy this.
    """

    x_m: float
    y_m: float
    uhf_index: int

    @property
    def radius_m(self) -> float: ...

    def active_at(self, t_us: float) -> bool: ...

    def covers(self, x_m: float, y_m: float) -> bool: ...


class GridIndex:
    """Uniform grid of square cells bucketing circular contours.

    Args:
        extent_m: plane edge length (cells tile ``[0, extent_m]^2``;
            out-of-range coordinates clamp to the border cells, so
            contours centered off-plane still index correctly).
        cell_m: cell edge length.  Smaller cells prune harder but cost
            more buckets per inserted contour; ~the typical contour
            radius is a good default.
    """

    def __init__(self, extent_m: float, cell_m: float = 1_000.0):
        if extent_m <= 0 or cell_m <= 0:
            raise SpectrumMapError(
                f"extent ({extent_m!r}) and cell size ({cell_m!r}) "
                "must be > 0"
            )
        self.extent_m = extent_m
        self.cell_m = cell_m
        self.cells_per_side = max(1, math.ceil(extent_m / cell_m))
        self._buckets: dict[tuple[int, int], list[SpatialEntry]] = {}
        self._num_entries = 0
        #: Point queries answered since construction.
        self.queries = 0
        #: Candidate entries inspected across all queries (the number a
        #: full-scan implementation would put at queries * entries).
        self.candidates_scanned = 0

    def __len__(self) -> int:
        return self._num_entries

    def _axis_cell(self, coord_m: float) -> int:
        return min(self.cells_per_side - 1, max(0, int(coord_m // self.cell_m)))

    def cell_of(self, x_m: float, y_m: float) -> tuple[int, int]:
        """The (column, row) cell containing — or clamped to — (x, y)."""
        return (self._axis_cell(x_m), self._axis_cell(y_m))

    def cells_overlapping(
        self, x_m: float, y_m: float, radius_m: float
    ) -> Iterator[tuple[int, int]]:
        """Cells whose area intersects the circle's bounding box."""
        lo_cx, lo_cy = self.cell_of(x_m - radius_m, y_m - radius_m)
        hi_cx, hi_cy = self.cell_of(x_m + radius_m, y_m + radius_m)
        for cx in range(lo_cx, hi_cx + 1):
            for cy in range(lo_cy, hi_cy + 1):
                yield (cx, cy)

    def insert(self, entry: SpatialEntry) -> None:
        """Bucket *entry* into every cell its contour's bbox overlaps."""
        for cell in self.cells_overlapping(
            entry.x_m, entry.y_m, entry.radius_m
        ):
            self._buckets.setdefault(cell, []).append(entry)
        self._num_entries += 1

    def extend(self, entries: Iterable[SpatialEntry]) -> None:
        """Insert many entries."""
        for entry in entries:
            self.insert(entry)

    def candidates(self, x_m: float, y_m: float) -> Sequence[SpatialEntry]:
        """Entries whose contour *might* cover (x, y) — one cell's bucket.

        Returned as a tuple: the buckets are live internal state, and a
        caller mutating the returned sequence must not be able to
        corrupt them (the query paths read the buckets directly and
        skip this defensive copy).
        """
        return tuple(self._buckets.get(self.cell_of(x_m, y_m), ()))

    def covering(self, x_m: float, y_m: float) -> Iterator[SpatialEntry]:
        """Entries whose contour exactly covers (x, y); counts the scan."""
        bucket = self._buckets.get(self.cell_of(x_m, y_m), ())
        self.queries += 1
        self.candidates_scanned += len(bucket)
        for entry in bucket:
            if entry.covers(x_m, y_m):
                yield entry

    def covering_rect(
        self, x0_m: float, y0_m: float, x1_m: float, y1_m: float
    ) -> Iterator[SpatialEntry]:
        """Entries whose contour intersects the rectangle; counts the scan.

        The area-query twin of :meth:`covering`, used for cell-granular
        database responses: an entry qualifies when any point of
        ``[x0, x1] x [y0, y1]`` lies inside its contour (exact test via
        the clamped nearest point).  A contour bucketed into several of
        the rectangle's cells is scanned — and yielded — once.
        """
        lo_cx, lo_cy = self.cell_of(x0_m, y0_m)
        hi_cx, hi_cy = self.cell_of(x1_m, y1_m)
        candidates: list[SpatialEntry] = []
        seen: set[int] = set()
        for cx in range(lo_cx, hi_cx + 1):
            for cy in range(lo_cy, hi_cy + 1):
                for entry in self._buckets.get((cx, cy), ()):
                    if id(entry) not in seen:
                        seen.add(id(entry))
                        candidates.append(entry)
        self.queries += 1
        self.candidates_scanned += len(candidates)
        for entry in candidates:
            if circle_intersects_rect(
                entry.x_m, entry.y_m, entry.radius_m, x0_m, y0_m, x1_m, y1_m
            ):
                yield entry
