"""Mobile white-space clients roaming a metro: the 100 m re-check rule.

The FCC regime the wsdb models is built around *portable* devices: a
white space device that moves must re-query the database after
traveling ~100 m (and periodically even when parked).  This driver
models that workload — the one a per-coordinate response cache serves
worst and the cell-granular protocol
(:meth:`~repro.wsdb.service.WhiteSpaceDatabase.channels_in_cell`) was
built for:

* ``M`` mobile clients follow seeded waypoint paths across the metro
  plane at a fixed speed, each re-querying the database **only** when
  it crosses a quantization-square boundary (``recheck_m``) or its
  response's TTL bucket expires — the pull-based compliance rule, not
  continuous polling.
* Between re-queries a client acts on its last response (valid for its
  whole cell), associating with the nearest assigned
  :class:`~repro.wsdb.citywide.CityAp` whose channel the response
  permits at the client's location; association changes are counted as
  handoffs.
* Mid-session microphone registrations invalidate cached responses and
  displace covered APs (the citywide backup-channel walk).  A client
  whose path — or whose fresh response — runs into a protection zone
  on its AP's channel **vacates** the channel and hands off or
  disconnects.
* Compliance is scored against ground truth: a connected client whose
  channel is actually protected at its true position (it moved into a
  zone, or a mic session started, before its next re-check) is in
  violation for that tick.  The ``violation_free_fraction`` is the
  quality of the re-check rule itself — the staleness the pull model
  admits.

Everything derives from the master seed through labelled
:func:`~repro.sim.rng.stream_seed` streams, so a run is byte-identical
in any process — the contract the ``roaming`` run kind and
``ParallelRunner`` rely on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.sim.rng import stream_seed
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.telemetry.spans import NULL_SPANS, lookup_steps
from repro.traces.record import NULL_RECORDER
from repro.wsdb.citywide import (
    DEFAULT_INTERFERENCE_RADIUS_M,
    CityAp,
    MicEvent,
    boot_aps,
    displace_covered_aps,
    generate_mic_events,
    snapshot_assigned_aps,
)
from repro.wsdb.service import WhiteSpaceDatabase, quantize_cell, ttl_bucket

__all__ = [
    "RoamingClient",
    "advance_client",
    "advance_position",
    "associate_nearest",
    "in_violation",
    "simulate_roaming",
    "spawn_clients",
]

#: The mobile-engine implementations the roaming and querystorm
#: drivers dispatch between.  "scalar" is the reference per-client
#: loop below; "vector" is the columnar numpy engine
#: (:mod:`repro.wsdb.vector`), bit-identical to it by construction.
ENGINES = ("scalar", "vector")

#: Default client speed (meters/second): ~50 km/h, a metro vehicle.
DEFAULT_SPEED_MPS = 14.0

#: Default simulation tick (microseconds).  At the default speed a
#: client moves 14 m per tick — fine-grained against the 100 m rule.
DEFAULT_TICK_US = 1_000_000.0


@dataclass
class RoamingClient:
    """One mobile client: a position, a path, and a cached response."""

    client_id: int
    x_m: float
    y_m: float
    waypoint: tuple[float, float]
    # Required, not defaulted: an implicit `random.Random()` fallback
    # would seed from OS entropy and break run reproducibility.
    rng: random.Random = field(repr=False)
    known_free: frozenset[int] = frozenset()
    last_cell: tuple[int, int] | None = None
    last_bucket: int = -1
    ap: CityAp | None = None


def associate_nearest(
    x_m: float,
    y_m: float,
    known_free: frozenset[int],
    live_aps: list[tuple[CityAp, frozenset[int]]],
) -> CityAp | None:
    """The AP a client at (x, y) with response *known_free* associates to.

    Nearest assigned AP whose channel the response permits; equidistant
    APs resolve deterministically by ascending ``ap_id`` — the explicit
    tie-break the byte-identical parallel/sequential contract needs
    (``min`` alone would silently depend on list order).  Returns None
    when no AP's channel is permitted (the client disconnects).
    """
    eligible = [ap for ap, spans in live_aps if spans <= known_free]

    # Squared distance, not math.hypot: *, +, and the comparison are
    # correctly-rounded IEEE-754 operations, so the vectorized engine's
    # running-min association reproduces this ordering bit-for-bit
    # (hypot's extra guard arithmetic carries no such guarantee).
    def _key(ap: CityAp) -> tuple[float, int]:
        dx = ap.x_m - x_m
        dy = ap.y_m - y_m
        return (dx * dx + dy * dy, ap.ap_id)

    return min(eligible, key=_key, default=None)


def advance_position(
    x_m: float,
    y_m: float,
    wx: float,
    wy: float,
    rng: random.Random,
    distance_m: float,
    extent_m: float,
) -> tuple[float, float, float, float]:
    """Advance one waypoint walker by *distance_m*; returns (x, y, wx, wy).

    The pure kinematics core of :func:`advance_client`, shared verbatim
    with the vectorized engine's waypoint-crossing fallback so both
    engines draw the same waypoints from the same per-client streams
    and land on bit-identical coordinates.  Leg lengths use
    ``sqrt(dx*dx + dy*dy)`` — correctly-rounded IEEE-754 throughout —
    so numpy's elementwise fast path for non-crossing walkers computes
    the exact same floats.
    """
    remaining = distance_m
    while remaining > 0.0:
        dx, dy = wx - x_m, wy - y_m
        leg = math.sqrt(dx * dx + dy * dy)
        if leg <= remaining:
            x_m, y_m = wx, wy
            remaining -= leg
            new_wx = rng.uniform(0.0, extent_m)
            new_wy = rng.uniform(0.0, extent_m)
            if leg == 0.0 and (new_wx, new_wy) == (wx, wy):
                # Degenerate double-draw of the same point; give up the
                # remainder of this tick rather than spin.
                return x_m, y_m, new_wx, new_wy
            wx, wy = new_wx, new_wy
        else:
            x_m += dx / leg * remaining
            y_m += dy / leg * remaining
            remaining = 0.0
    return x_m, y_m, wx, wy


def advance_client(
    client: RoamingClient, distance_m: float, extent_m: float
) -> None:
    """Move *client* along its waypoint path by *distance_m* meters.

    Public driver plumbing: the roaming and querystorm drivers both
    step their fleets through this, so path kinematics stay identical
    across kinds by construction.
    """
    wx, wy = client.waypoint
    client.x_m, client.y_m, wx, wy = advance_position(
        client.x_m, client.y_m, wx, wy, client.rng, distance_m, extent_m
    )
    client.waypoint = (wx, wy)


def spawn_clients(
    num_clients: int, seed: int, stream: str, extent_m: float
) -> list[RoamingClient]:
    """The seeded mobile fleet both engines start from.

    Each client draws its start position and first waypoint from its
    own labelled child stream, so fleet construction is byte-identical
    across engines, processes, and client counts (client *i*'s path
    never depends on how many peers exist).
    """
    clients: list[RoamingClient] = []
    for i in range(num_clients):
        rng = random.Random(stream_seed(seed, f"{stream}-{i}"))
        clients.append(
            RoamingClient(
                client_id=i,
                x_m=rng.uniform(0.0, extent_m),
                y_m=rng.uniform(0.0, extent_m),
                waypoint=(rng.uniform(0.0, extent_m), rng.uniform(0.0, extent_m)),
                rng=rng,
            )
        )
    return clients


def in_violation(
    metro, x_m: float, y_m: float, t_us: float, spanned: tuple[int, ...]
) -> bool:
    """Ground-truth compliance scorer shared by both engines.

    True when any UHF index the client's channel spans is actually
    protected at its true position — the reference linear scan, never a
    database query (measuring must not perturb cache stats).  The
    vectorized engine evaluates the same predicate as per-incumbent
    coverage masks built on :func:`~repro.wsdb.model.point_in_circle`'s
    squared-form algebra, so its verdicts are bit-identical.
    """
    truth = metro.occupied_at(x_m, y_m, t_us)
    return any(i in truth for i in spanned)


def simulate_roaming(
    db: WhiteSpaceDatabase,
    num_aps: int,
    num_clients: int,
    duration_us: float,
    seed: int,
    speed_mps: float = DEFAULT_SPEED_MPS,
    recheck_m: float | None = None,
    mic_events: int = 0,
    tick_us: float = DEFAULT_TICK_US,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
    engine: str = "scalar",
    recorder: Any = None,
    telemetry: Any = None,
    profiler: Any = None,
    spans: Any = None,
) -> dict[str, Any]:
    """Run one roaming session; returns a plain-data report.

    The report is JSON-plain throughout (the ``roaming`` run kind's
    probe routes it into an ``ExperimentResult`` unchanged).

    Args:
        db: the metro database (APs and clients share it).
        num_aps: fixed APs booted across the plane (citywide-style).
        num_clients: mobile clients following waypoint paths.
        duration_us: session length; the tick loop covers [0, duration].
        seed: master seed; placement, paths, and mic events derive
            from labelled streams of it.
        speed_mps: client speed along its path.
        recheck_m: movement granularity of the re-check rule (None:
            the database's own ``cache_resolution_m``, the aligned —
            and intended — configuration).
        mic_events: mid-session microphone registrations.
        tick_us: simulation step; movement, re-checks, association,
            and compliance are evaluated per tick.
        interference_radius_m: AP mutual-interference radius.
        engine: "scalar" (the reference per-client loop here) or
            "vector" (the columnar numpy engine,
            :mod:`repro.wsdb.vector`).  Both produce bit-identical
            reports; "vector" is the one that scales to millions of
            clients.
        recorder: a :class:`~repro.traces.record.TraceRecorder` to
            stream dense run events into (None: the zero-overhead null
            recorder).  Recording observes only — reports are
            bit-identical with and without it.  The caller closes the
            recorder.
        telemetry: a sim-clock
            :class:`~repro.telemetry.metrics.MetricsRegistry` (None:
            the zero-overhead null sink).  When attached, the run
            samples a per-tick time series, publishes the database and
            driver counters at the end, and the report gains a
            ``"telemetry"`` snapshot.  Deterministic: both engines
            produce identical snapshots; with None the report is
            byte-identical to a pre-telemetry run.
        profiler: a wall-clock
            :class:`~repro.telemetry.profiler.PhaseProfiler` (None: the
            no-op profiler).  Phase instrumentation lives in the vector
            engine's batched tick stages; the scalar reference loop
            accepts the argument for signature parity but does not
            profile.  Never affects the report.
        spans: a sim-clock
            :class:`~repro.telemetry.spans.SpanRecorder` (None: the
            zero-overhead null recorder).  When attached, every client
            re-check records a cache-lookup span tree and every mic
            registration an invalidation tree, and the report gains a
            ``"spans"`` table.  Deterministic: both engines emit
            byte-identical span sets; with None the report is
            byte-identical to a spans-free run.
    """
    if num_clients < 1:
        raise SimulationError(
            f"roaming needs >= 1 client, got {num_clients!r}"
        )
    if duration_us <= 0:
        raise SimulationError(
            f"roaming duration must be > 0, got {duration_us!r}"
        )
    if speed_mps <= 0:
        raise SimulationError(f"speed must be > 0, got {speed_mps!r}")
    if tick_us <= 0:
        raise SimulationError(f"tick must be > 0, got {tick_us!r}")
    if recheck_m is None:
        recheck_m = db.cache_resolution_m
    if recheck_m <= 0:
        raise SimulationError(f"recheck_m must be > 0, got {recheck_m!r}")
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "vector":
        # Imported lazily: the scalar path must not require numpy.
        from repro.wsdb.vector import simulate_roaming_vector

        return simulate_roaming_vector(
            db,
            num_aps=num_aps,
            num_clients=num_clients,
            duration_us=duration_us,
            seed=seed,
            speed_mps=speed_mps,
            recheck_m=recheck_m,
            mic_events=mic_events,
            tick_us=tick_us,
            interference_radius_m=interference_radius_m,
            recorder=recorder,
            telemetry=telemetry,
            profiler=profiler,
            spans=spans,
        )

    if recorder is None:
        recorder = NULL_RECORDER
    recording = recorder.enabled
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    tel_on = tel.enabled
    sp = NULL_SPANS if spans is None else spans
    sp_on = sp.enabled
    extent_m = db.metro.extent_m
    aps = boot_aps(db, num_aps, seed, "roaming-aps", interference_radius_m)
    clients = spawn_clients(num_clients, seed, "roaming-client", extent_m)

    events = generate_mic_events(
        mic_events,
        duration_us,
        extent_m,
        db.metro.num_channels,
        stream_seed(seed, "roaming-mics"),
    )
    next_event = 0
    displaced = backup_recoveries = full_reassignments = outages = 0

    requeries = [0] * num_clients
    handoffs = [0] * num_clients
    vacations = [0] * num_clients
    connected = [0] * num_clients
    violations = [0] * num_clients
    disconnected_ticks = 0
    total_requeries = 0
    total_handoffs = 0

    def register_event(event: MicEvent, index: int) -> None:
        nonlocal displaced, backup_recoveries, full_reassignments, outages
        registration = event.registration()
        invalidated = db.register_mic(registration)
        if sp_on:
            sp.record_tree(
                "mic_register",
                "mic",
                index,
                event.t_us,
                "db",
                [("invalidate", "db", {"entries": int(invalidated)}, ())],
            )
        if recording:
            recorder.emit(
                "mic",
                event.t_us,
                subject=index,
                cell=quantize_cell(
                    event.x_m, event.y_m, db.cache_resolution_m
                ),
                channels=(event.uhf_index,),
                x=event.x_m,
                y=event.y_m,
                aux=event.uhf_index,
            )
        d, b, r, o = displace_covered_aps(
            db, aps, event, registration, interference_radius_m
        )
        displaced += d
        backup_recoveries += b
        full_reassignments += r
        outages += o

    live_aps, spans_by_id = snapshot_assigned_aps(aps)

    step_m = speed_mps * tick_us / 1e6
    ticks = int(duration_us // tick_us)
    viol_open = [False] * num_clients
    for k in range(ticks + 1):
        t_us = k * tick_us
        tick_violating = 0
        # Registrations whose session starts by this tick go live:
        # cached responses inside the zone are invalidated and covered
        # APs walk their backups, exactly as in the citywide driver.
        fired = False
        while next_event < len(events) and events[next_event].t_us <= t_us:
            register_event(events[next_event], next_event)
            next_event += 1
            fired = True
        if fired:
            live_aps, spans_by_id = snapshot_assigned_aps(aps)

        for client in clients:
            if k > 0:
                advance_client(client, step_m, extent_m)
            # The re-check rule: query only on crossing a
            # quantization-square boundary or on TTL expiry — never
            # merely because time passed within a valid response.
            cell = quantize_cell(client.x_m, client.y_m, recheck_m)
            bucket = ttl_bucket(t_us, db.ttl_us)
            if cell != client.last_cell or bucket != client.last_bucket:
                response = db.channels_at(client.x_m, client.y_m, t_us)
                if sp_on:
                    hit, scanned = db.last_outcomes[0]
                    sp.record_tree(
                        "request",
                        "roam",
                        client.client_id,
                        t_us,
                        "db",
                        [lookup_steps(hit, scanned, "db")],
                    )
                client.known_free = frozenset(response)
                client.last_cell = cell
                client.last_bucket = bucket
                requeries[client.client_id] += 1
                total_requeries += 1
                if recording:
                    recorder.emit(
                        "recheck",
                        t_us,
                        subject=client.client_id,
                        cell=quantize_cell(
                            client.x_m, client.y_m, db.cache_resolution_m
                        ),
                        channels=response,
                        x=client.x_m,
                        y=client.y_m,
                        aux=1,
                    )

            # Association: nearest assigned AP whose channel the
            # client's response permits here.  A previously-associated
            # AP whose channel the response now denies forces a
            # channel vacation (the path entered a protection zone).
            prev = client.ap
            prev_spans = (
                spans_by_id.get(prev.ap_id) if prev is not None else None
            )
            if prev_spans is not None and not prev_spans <= client.known_free:
                vacations[client.client_id] += 1
            client.ap = associate_nearest(
                client.x_m, client.y_m, client.known_free, live_aps
            )
            if client.ap is None:
                disconnected_ticks += 1
                if recording and viol_open[client.client_id]:
                    recorder.emit(
                        "violation_close",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        x=client.x_m,
                        y=client.y_m,
                        aux=0,
                    )
                    viol_open[client.client_id] = False
                continue
            if prev is not None and client.ap.ap_id != prev.ap_id:
                handoffs[client.client_id] += 1
                total_handoffs += 1
                if recording:
                    recorder.emit(
                        "handoff",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        channels=tuple(
                            sorted(client.ap.channel.spanned_indices)
                        ),
                        x=client.x_m,
                        y=client.y_m,
                        aux=client.ap.ap_id,
                    )
            connected[client.client_id] += 1
            # A violation means the client transmitted on a protected
            # channel between re-checks.
            violating = in_violation(
                db.metro,
                client.x_m,
                client.y_m,
                t_us,
                client.ap.channel.spanned_indices,
            )
            if violating:
                violations[client.client_id] += 1
                tick_violating += 1
            if recording:
                if violating and not viol_open[client.client_id]:
                    recorder.emit(
                        "violation_open",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        channels=tuple(
                            sorted(client.ap.channel.spanned_indices)
                        ),
                        x=client.x_m,
                        y=client.y_m,
                    )
                    viol_open[client.client_id] = True
                elif not violating and viol_open[client.client_id]:
                    recorder.emit(
                        "violation_close",
                        t_us,
                        subject=client.client_id,
                        cell=cell,
                        x=client.x_m,
                        y=client.y_m,
                        aux=0,
                    )
                    viol_open[client.client_id] = False

        if tel_on:
            tel.sample_tick(
                t_us,
                queries=db.stats.queries,
                cache_hits=db.stats.cache_hits,
                requeries=total_requeries,
                handoffs=total_handoffs,
                violating=tick_violating,
            )

    if recording:
        # Still-open violation windows close at the end of the run,
        # marked aux=1 so analyses can tell truncation from recovery.
        end_us = ticks * tick_us
        for client in clients:
            if viol_open[client.client_id]:
                recorder.emit(
                    "violation_close",
                    end_us,
                    subject=client.client_id,
                    cell=quantize_cell(client.x_m, client.y_m, recheck_m),
                    x=client.x_m,
                    y=client.y_m,
                    aux=1,
                )

    # When duration_us is not a tick multiple, events can start after
    # the last evaluated tick; register them anyway so the database,
    # the displacement accounting, and the reported event count agree
    # with simulate_citywide's process-every-event semantics.
    while next_event < len(events):
        register_event(events[next_event], next_event)
        next_event += 1

    connected_ticks = sum(connected)
    violation_ticks = sum(violations)
    client_ticks = num_clients * (ticks + 1)
    if tel_on:
        db.publish_metrics(tel)
        tel.counter("requeries").inc(total_requeries)
        tel.counter("handoffs").inc(total_handoffs)
        tel.counter("vacations").inc(sum(vacations))
        tel.counter("violation_ticks").inc(violation_ticks)
        tel.counter("connected_ticks").inc(connected_ticks)
        tel.counter("disconnected_ticks").inc(disconnected_ticks)
    report = {
        "num_aps": num_aps,
        "num_clients": num_clients,
        "duration_us": duration_us,
        "tick_us": tick_us,
        "speed_mps": speed_mps,
        "recheck_m": recheck_m,
        "extent_m": extent_m,
        "assigned_aps": sum(1 for ap in aps if ap.channel is not None),
        "requeries": sum(requeries),
        "requeries_per_client": sum(requeries) / num_clients,
        "handoffs": sum(handoffs),
        "vacations": sum(vacations),
        "connected_ticks": connected_ticks,
        "disconnected_ticks": disconnected_ticks,
        "connected_fraction": connected_ticks / client_ticks,
        "violation_ticks": violation_ticks,
        "violation_free_fraction": (
            1.0 - violation_ticks / connected_ticks if connected_ticks else 1.0
        ),
        "mic_events": len(events),
        "displaced_aps": displaced,
        "backup_recoveries": backup_recoveries,
        "full_reassignments": full_reassignments,
        "outages": outages,
        "per_client": tuple(
            (i, requeries[i], handoffs[i], vacations[i], connected[i])
            for i in range(num_clients)
        ),
        "final_cells": tuple(
            quantize_cell(c.x_m, c.y_m, recheck_m) for c in clients
        ),
        "db": db.stats.as_dict(),
    }
    if tel_on:
        report["telemetry"] = tel.snapshot()
    if sp_on:
        report["spans"] = sp.snapshot()
    return report
