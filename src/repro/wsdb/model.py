"""The wsdb spatial model: incumbents with protected contours on a plane.

WhiteFi (2009) builds spectrum maps from *local sensing*; the regime the
FCC standardized shortly afterwards replaces sensing with a **geolocation
database**: fixed incumbents are registered at coordinates, each with a
protected contour derived from its transmit power, and a white space
device queries the database for the channels usable at its own
coordinate.  This module is the generative ground truth behind such a
database — a 2-D metro plane populated with

* **TV transmitter sites** — :class:`~repro.spectrum.incumbents.TvStation`
  records placed at a position; their ``power_dbm`` is interpreted as the
  site's EIRP and turned into a protected-contour radius via a
  log-distance path-loss model (the contour is where the signal decays to
  the scanner detection threshold).
* **Wireless-microphone registrations** — a
  :class:`~repro.spectrum.incumbents.WirelessMicrophone` (channel plus
  on/off schedule) pinned at a position with a fixed protection zone,
  modeled on the FCC Part 74 venue registrations (~1 km).

:class:`Metro` composes both into a point-queryable occupancy model.
Its :meth:`Metro.occupied_at` is the *reference* implementation — a
linear scan over every incumbent — used by tests to validate the spatial
index in :mod:`repro.wsdb.index`; the service façade never calls it on
the hot path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro import constants
from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import MicSession, TvStation, WirelessMicrophone
from repro.spectrum.spectrum_map import SpectrumMap

__all__ = [
    "Metro",
    "MicRegistration",
    "TvTransmitterSite",
    "generate_metro",
    "generate_metro_for_setting",
    "point_in_circle",
    "protected_radius_m",
]

#: Path-loss exponent of the contour model.  3.5 sits between free space
#: (2) and dense urban clutter (4-5) — UHF propagates well, which is the
#: whole appeal of the band (Section 1 of the paper).
PATH_LOSS_EXPONENT = 3.5

#: Reference distance (meters) at which the EIRP is measured.
REFERENCE_DISTANCE_M = 1.0

#: Default protection radius for a registered wireless microphone
#: (meters).  Part 74 venue registrations carve out ~1 km around the
#: coordinates regardless of the mic's actual (tiny) EIRP.
MIC_PROTECTED_RADIUS_M = 1_000.0

#: Default EIRP range (dBm) for generated TV sites.  Through the contour
#: model these give protected radii of roughly 6-14 km — metro-scale
#: contours that cover large parts of a default plane without blanketing
#: it, so availability genuinely varies across the city.
DEFAULT_TV_EIRP_DBM = (20.0, 32.0)

#: Default metro plane edge length (meters).
DEFAULT_EXTENT_M = 20_000.0


def point_in_circle(
    x_m: float, y_m: float, cx_m: float, cy_m: float, radius_m: float
) -> bool:
    """True when (x, y) lies inside the circle (boundary-inclusive).

    The one point-containment predicate behind every protected-contour
    check — incumbent ``covers`` and the roaming engines' ground-truth
    compliance scoring all ride it.  Written in squared form on purpose:
    +, *, and <= are correctly-rounded IEEE-754 operations, so the
    vectorized engine (:mod:`repro.wsdb.vector`) reproduces this
    predicate bit-for-bit with numpy array arithmetic in the same
    operation order — ``math.hypot`` offers no such guarantee.
    """
    dx = x_m - cx_m
    dy = y_m - cy_m
    return dx * dx + dy * dy <= radius_m * radius_m


def protected_radius_m(
    eirp_dbm: float,
    threshold_dbm: float = constants.TV_DETECTION_THRESHOLD_DBM,
    path_loss_exponent: float = PATH_LOSS_EXPONENT,
) -> float:
    """Contour radius where *eirp_dbm* decays to *threshold_dbm*.

    Log-distance model: ``P(d) = EIRP - 10 n log10(d / d0)``; solving
    ``P(d) = threshold`` for ``d`` gives the protected radius.  Inside
    the contour the incumbent is detectable and the channel is denied.
    """
    if path_loss_exponent <= 0:
        raise SpectrumMapError(
            f"path-loss exponent must be > 0, got {path_loss_exponent!r}"
        )
    return REFERENCE_DISTANCE_M * 10.0 ** (
        (eirp_dbm - threshold_dbm) / (10.0 * path_loss_exponent)
    )


@dataclass(frozen=True)
class TvTransmitterSite:
    """A TV station pinned at a coordinate with a protected contour.

    Attributes:
        station: the spectral identity (channel + EIRP) — the same
            record the sensing-era :class:`IncumbentField` uses, with
            ``power_dbm`` read as the site EIRP.
        x_m / y_m: site coordinates on the metro plane.
    """

    station: TvStation
    x_m: float
    y_m: float

    @property
    def uhf_index(self) -> int:
        """The UHF channel this site occupies."""
        return self.station.uhf_index

    @property
    def radius_m(self) -> float:
        """Protected-contour radius derived from the site EIRP."""
        return protected_radius_m(self.station.power_dbm)

    def active_at(self, t_us: float) -> bool:
        """TV broadcasts are always on (static incumbents)."""
        return True

    def covers(self, x_m: float, y_m: float) -> bool:
        """True when (x, y) lies inside the protected contour."""
        return point_in_circle(x_m, y_m, self.x_m, self.y_m, self.radius_m)


@dataclass(frozen=True)
class MicRegistration:
    """A registered wireless microphone with a fixed protection zone.

    Attributes:
        microphone: channel plus on/off schedule (the registration only
            protects the mic while a session is active).
        x_m / y_m: registered venue coordinates.
        radius_m: protection-zone radius (FCC-style fixed carve-out).
    """

    microphone: WirelessMicrophone
    x_m: float
    y_m: float
    radius_m: float = MIC_PROTECTED_RADIUS_M

    @property
    def uhf_index(self) -> int:
        """The UHF channel the registration protects."""
        return self.microphone.uhf_index

    def active_at(self, t_us: float) -> bool:
        """True while a registered session covers *t_us*."""
        return self.microphone.active_at(t_us)

    def covers(self, x_m: float, y_m: float) -> bool:
        """True when (x, y) lies inside the protection zone."""
        return point_in_circle(x_m, y_m, self.x_m, self.y_m, self.radius_m)

    @classmethod
    def single_session(
        cls,
        uhf_index: int,
        x_m: float,
        y_m: float,
        start_us: float,
        end_us: float,
        radius_m: float = MIC_PROTECTED_RADIUS_M,
    ) -> "MicRegistration":
        """A registration protecting one contiguous activity interval."""
        return cls(
            WirelessMicrophone(uhf_index, [MicSession(start_us, end_us)]),
            x_m,
            y_m,
            radius_m,
        )


@dataclass
class Metro:
    """A metro plane of protected incumbents — the wsdb ground truth.

    Attributes:
        extent_m: plane edge length; coordinates live in
            ``[0, extent_m] x [0, extent_m]``.
        num_channels: UHF index space size.
        sites: static TV transmitter sites.
        registrations: wireless-microphone registrations (mutable, but
            see :meth:`add_registration` for the mutation contract once
            a service wraps this metro).
    """

    extent_m: float = DEFAULT_EXTENT_M
    num_channels: int = constants.NUM_UHF_CHANNELS
    sites: tuple[TvTransmitterSite, ...] = ()
    registrations: list[MicRegistration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.extent_m <= 0:
            raise SpectrumMapError(
                f"metro extent must be > 0, got {self.extent_m!r}"
            )
        self.sites = tuple(self.sites)
        self.registrations = list(self.registrations)
        for incumbent in (*self.sites, *self.registrations):
            self._check_index(incumbent.uhf_index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_channels:
            raise SpectrumMapError(
                f"incumbent on UHF index {index}, "
                f"outside 0..{self.num_channels - 1}"
            )

    def add_registration(self, registration: MicRegistration) -> None:
        """Register a wireless microphone venue.

        Once a :class:`~repro.wsdb.service.WhiteSpaceDatabase` wraps
        this metro, register through
        :meth:`~repro.wsdb.service.WhiteSpaceDatabase.register_mic`
        instead (which calls back here): mutating the metro directly
        bypasses the service's spatial index and cache invalidation,
        leaving stale availability in circulation.
        """
        self._check_index(registration.uhf_index)
        self.registrations.append(registration)

    def dial(self) -> tuple[int, ...]:
        """UHF channels occupied by any TV site, ascending (the metro dial)."""
        return tuple(sorted({site.uhf_index for site in self.sites}))

    def occupied_at(self, x_m: float, y_m: float, t_us: float = 0.0) -> set[int]:
        """Channels denied at (x, y) at *t_us* — reference linear scan.

        A channel protected by both a TV contour and an active mic zone
        is denied exactly once (set semantics — occupancy never double
        counts, mirroring :meth:`IncumbentField.occupied_indices`).
        Detectability needs no separate check here: an EIRP below the
        detection threshold yields a sub-reference-distance contour, so
        the radius model already excludes undetectable sites.
        """
        occupied = {
            site.uhf_index
            for site in self.sites
            if site.covers(x_m, y_m)
        }
        occupied.update(
            reg.uhf_index
            for reg in self.registrations
            if reg.active_at(t_us) and reg.covers(x_m, y_m)
        )
        return occupied

    def spectrum_map_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> SpectrumMap:
        """Occupancy bit-vector at (x, y) at *t_us* (reference path)."""
        return SpectrumMap.from_occupied(
            self.occupied_at(x_m, y_m, t_us), self.num_channels
        )


def generate_metro(
    occupied_indices: Iterable[int],
    extent_m: float = DEFAULT_EXTENT_M,
    seed: int = 0,
    num_channels: int = constants.NUM_UHF_CHANNELS,
    sites_per_channel: tuple[int, int] = (1, 2),
    eirp_range_dbm: tuple[float, float] = DEFAULT_TV_EIRP_DBM,
) -> Metro:
    """Place TV sites for a known dial of occupied channels.

    Every channel in *occupied_indices* gets 1-2 transmitter sites (the
    bounds are configurable) dropped uniformly on the plane with EIRP
    drawn from *eirp_range_dbm*; between their contours the channel is
    locally free, which is what makes the database spatially
    interesting.  Deterministic in *seed*.
    """
    lo, hi = sites_per_channel
    if not 1 <= lo <= hi:
        raise SpectrumMapError(
            f"sites_per_channel bounds must satisfy 1 <= lo <= hi, "
            f"got {sites_per_channel!r}"
        )
    rng = random.Random(seed)
    sites: list[TvTransmitterSite] = []
    for index in sorted(set(occupied_indices)):
        for _ in range(rng.randint(lo, hi)):
            sites.append(
                TvTransmitterSite(
                    TvStation(index, power_dbm=rng.uniform(*eirp_range_dbm)),
                    x_m=rng.uniform(0.0, extent_m),
                    y_m=rng.uniform(0.0, extent_m),
                )
            )
    return Metro(extent_m=extent_m, num_channels=num_channels, sites=sites)


def generate_metro_for_setting(
    setting: str,
    seed: int = 2009,
    extent_m: float = DEFAULT_EXTENT_M,
    num_channels: int = constants.NUM_UHF_CHANNELS,
) -> Metro:
    """A metro whose dial follows one of the paper's locale settings.

    Draws the occupied-channel set from the Figure 2 generative model
    (:func:`repro.spectrum.geodata.generate_locale`) — urban metros get
    dense, clustered dials; rural ones sparse dials — then places sites
    with :func:`generate_metro`.
    """
    from repro.sim.rng import stream_seed
    from repro.spectrum.geodata import generate_locale

    locale = generate_locale(
        setting, random.Random(seed), num_channels=num_channels
    )
    return generate_metro(
        locale.spectrum_map.occupied_indices(),
        extent_m=extent_m,
        # A labelled child stream, not the raw seed: the dial draws and
        # the site placements must not replay the same value sequence.
        seed=stream_seed(seed, "metro-sites"),
        num_channels=num_channels,
    )
