"""The geolocation database service façade: cell-granular cached queries.

:class:`WhiteSpaceDatabase` is what a city of APs — and a street of
roaming clients — talks to.  It answers availability queries off the
:class:`GridIndex` (never a full incumbent scan), memoizes responses in
a TTL + LRU cache, accepts live microphone registrations that
surgically invalidate the cached responses inside the new protection
zone, and counts queries/hits/misses/expirations/invalidations so
benchmarks can report cache behavior alongside throughput.

**Cell-granular response protocol.**  Real WSDB providers serve *area*
responses: the FCC requires a device to re-query after moving ~100 m,
so a response is computed for — and valid anywhere inside — a whole
quantization square of ``cache_resolution_m`` on a side.
:meth:`channels_in_cell` is that protocol's primitive: it computes the
channels free throughout one square (a channel is denied when any
active incumbent's protected contour intersects the square — the
conservative area semantics a protection regime requires) and caches
the response under the (cell, TTL bucket) key.  :meth:`channels_at` and
:meth:`channels_at_many` are point-shaped conveniences that quantize
the coordinate and ride the cell path, which is why dense or mobile
deployments hit the cache instead of recomputing per coordinate.

Because the computation itself is per-cell (not per first-querying
coordinate), a response is a pure function of (metro state, cell,
query time): cached and cache-disabled (``cache_capacity=0``) services
return **identical answers** for the same query sequence.  The one
remaining cache-visible effect is the TTL staleness contract: within a
TTL bucket a cached response may lag a mic *session* edge of an
already-registered incumbent by up to the TTL, while a cache-disabled
service re-evaluates the schedule at every query.  An explicit
:meth:`register_mic` invalidates the affected cells immediately, so
newly registered incumbents are never served stale.

Invalidation is cell-exact and time-aware: a registration drops exactly
the cached responses whose quantization square intersects the new
protection zone *and* whose TTL bucket overlaps one of the mic's
sessions — a response whose bucket ends before the session starts (or
begins after it ends) is still valid for every query it can legally
serve.  Expired buckets are purged as simulation time advances, so the
LRU holds live responses only.

Determinism: for a fixed query sequence the service is a pure function
of (metro state, sequence) — the property the citywide and roaming run
kinds' byte-identical parallel/sequential contract leans on.  Shrinking
``cache_resolution_m`` toward zero degenerates the protocol to
per-coordinate responses (every query point its own cell) — the
baseline the roaming benchmark compares against.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap
from repro.wsdb.index import GridIndex, circle_intersects_cell
from repro.wsdb.model import Metro, MicRegistration

__all__ = [
    "AvailabilityService",
    "WhiteSpaceDatabase",
    "WsdbStats",
    "default_cell_m",
    "quantize_cell",
    "ttl_bucket",
]

#: Default cache TTL (simulation microseconds): 60 s of validity before a
#: device must re-query, a compressed stand-in for the FCC's daily
#: re-check requirement.
DEFAULT_TTL_US = 60_000_000.0

#: Default response-cell edge (meters).  The FCC requires devices to
#: re-query after moving 100 m; one response covers — and is valid
#: throughout — a 100 m quantization square.
DEFAULT_CACHE_RESOLUTION_M = 100.0

#: Default LRU capacity (responses).
DEFAULT_CACHE_CAPACITY = 8_192


def quantize_cell(
    x_m: float, y_m: float, resolution_m: float
) -> tuple[int, int]:
    """The quantization cell containing (x, y) at *resolution_m*.

    Floor division, so negative coordinates land in negative cells.
    The one home of the cell convention: the service's cache keys, the
    cluster router's routing, the mobility re-check rule, and the push
    registry's subscriptions must all quantize identically or cached
    responses, notifications, and re-queries stop lining up.
    """
    return (
        int(math.floor(x_m / resolution_m)),
        int(math.floor(y_m / resolution_m)),
    )


def ttl_bucket(t_us: float, ttl_us: float) -> int:
    """The TTL validity bucket containing *t_us*.

    The one home of the bucket convention: the service's cache keys,
    the frontend's stale-store validity check, and the clients'
    TTL-expiry re-check trigger must agree on where a response's
    validity window ends.
    """
    return int(t_us // ttl_us)


class AvailabilityService(Protocol):
    """The query surface a white-space device (or AP driver) talks to.

    Both :class:`WhiteSpaceDatabase` and the cluster's
    :class:`~repro.wsdb.cluster.router.ShardRouter` satisfy this; the
    citywide helpers (``assign_ap`` / ``boot_aps`` /
    ``displace_covered_aps``) are written against it, which is what
    lets one deployment driver run on either service tier.
    """

    metro: Metro

    def channels_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> tuple[int, ...]: ...

    def spectrum_map_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> SpectrumMap: ...

    def zone_affects(
        self, registration: MicRegistration, x_m: float, y_m: float
    ) -> bool: ...


def default_cell_m(metro: Metro) -> float:
    """The default spatial-index cell edge for *metro*'s incumbents.

    ~The mean TV contour radius — a reasonable pruning granularity —
    falling back to a sixteenth of the plane when the dial is empty.
    The one home of this heuristic: the service uses it directly and
    the cluster's :class:`~repro.wsdb.cluster.router.ShardRouter`
    scales it down by ``sqrt(K)`` per shard, so the two stay in
    lock-step if it is ever re-tuned.
    """
    radii = [site.radius_m for site in metro.sites]
    return (sum(radii) / len(radii)) if radii else metro.extent_m / 16


@dataclass
class WsdbStats:
    """Service counters for benchmarking the query path.

    Attributes:
        queries: availability queries answered (point or cell).
        cache_hits / cache_misses: response-cache outcomes.
        evictions: LRU capacity evictions (live responses displaced).
        expirations: responses purged because their TTL bucket ended
            (dead responses dropped as simulation time advances).
        invalidations: live cached responses dropped by mic
            registrations.
        mic_registrations: registrations accepted.
        candidates_scanned: incumbents inspected by the spatial index
            on the service's own query path (the full-scan equivalent
            is ``queries * incumbents``); direct ``db.index`` use is
            not counted here.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    mic_registrations: int = 0
    candidates_scanned: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits over all queries (0 when nothing was asked)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Plain-data snapshot (for probes and benchmark JSON)."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "mic_registrations": self.mic_registrations,
            "candidates_scanned": self.candidates_scanned,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class _CacheKey:
    """One response-cache slot: a quantization cell + TTL bucket."""

    qx: int
    qy: int
    bucket: int


class WhiteSpaceDatabase:
    """A queryable, cacheable geolocation white-space database.

    Args:
        metro: the incumbent ground truth (sites + registrations).
        cell_m: spatial-index cell edge (None: ~the mean TV contour
            radius, a reasonable pruning granularity).
        ttl_us: response validity window in simulation time.
        cache_resolution_m: response-cell edge — one response covers a
            whole ``cache_resolution_m`` quantization square.
        cache_capacity: LRU capacity; 0 disables response caching (the
            spatial index still serves every query, and answers are
            identical to a caching service's).
    """

    def __init__(
        self,
        metro: Metro,
        cell_m: float | None = None,
        ttl_us: float = DEFAULT_TTL_US,
        cache_resolution_m: float = DEFAULT_CACHE_RESOLUTION_M,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ):
        if ttl_us <= 0:
            raise SpectrumMapError(f"ttl_us must be > 0, got {ttl_us!r}")
        if cache_resolution_m <= 0:
            raise SpectrumMapError(
                f"cache_resolution_m must be > 0, got {cache_resolution_m!r}"
            )
        if cache_capacity < 0:
            raise SpectrumMapError(
                f"cache_capacity must be >= 0, got {cache_capacity!r}"
            )
        self.metro = metro
        if cell_m is None:
            cell_m = default_cell_m(metro)
        self.index = GridIndex(metro.extent_m, cell_m)
        self.index.extend(metro.sites)
        self.index.extend(metro.registrations)
        self.ttl_us = ttl_us
        self.cache_resolution_m = cache_resolution_m
        self.cache_capacity = cache_capacity
        self._cache: OrderedDict[_CacheKey, tuple[int, ...]] = OrderedDict()
        self._latest_bucket = 0
        self.stats = WsdbStats()
        # The last query call's per-cell outcomes, one (cache_hit,
        # candidates_scanned) entry per requested cell in request
        # order.  The running stats totals can't tell a caller (e.g. a
        # span recorder) what *this* lookup did — the outcomes can.
        self.last_outcomes: tuple[tuple[bool, int], ...] = ()

    # -- cache plumbing ------------------------------------------------------

    def cell_of(self, x_m: float, y_m: float) -> tuple[int, int]:
        """The quantization cell containing (x, y).

        Floor division, so negative coordinates land in negative cells
        (cell (-1, -1) spans ``[-resolution, 0)`` on each axis) rather
        than sharing cell (0, 0) with the origin's square.
        """
        return quantize_cell(x_m, y_m, self.cache_resolution_m)

    def _bucket_of(self, t_us: float) -> int:
        return ttl_bucket(t_us, self.ttl_us)

    def _lookup(self, key: _CacheKey) -> tuple[int, ...] | None:
        channels = self._cache.get(key)
        if channels is not None:
            self._cache.move_to_end(key)
        return channels

    def _store(self, key: _CacheKey, channels: tuple[int, ...]) -> None:
        if self.cache_capacity == 0:
            return
        self._cache[key] = channels
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def _purge_expired(self, bucket: int) -> None:
        """Drop responses from TTL buckets wholly before *bucket*.

        Expired responses can never be served again (their bucket is
        part of the cache key), but left in place they occupy LRU
        capacity — evicting live responses — and are scanned by every
        ``register_mic`` invalidation pass.  Purged on the query path
        whenever the observed TTL bucket advances; queries are the
        service's only clock, so ``register_mic`` relies on this
        rather than purging itself.
        """
        if bucket <= self._latest_bucket:
            return
        self._latest_bucket = bucket
        stale = [key for key in self._cache if key.bucket < bucket]
        for key in stale:
            del self._cache[key]
        self.stats.expirations += len(stale)

    # -- queries -------------------------------------------------------------

    def _compute_cell(self, qx: int, qy: int, t_us: float) -> tuple[int, ...]:
        """Channels free throughout cell (qx, qy) at *t_us*.

        Conservative area semantics: a channel is denied when any
        active incumbent's contour intersects the cell square, so the
        response is safe to act on from any coordinate inside the cell.
        """
        res = self.cache_resolution_m
        x0, y0 = qx * res, qy * res
        scanned_before = self.index.candidates_scanned
        occupied = set()
        for entry in self.index.covering_rect(x0, y0, x0 + res, y0 + res):
            if entry.active_at(t_us):
                occupied.add(entry.uhf_index)
        # Accumulate the delta (not the index's running total): the
        # index is a public attribute, and direct use of it must not
        # leak into the service's own counters.
        self.stats.candidates_scanned += (
            self.index.candidates_scanned - scanned_before
        )
        return tuple(
            i for i in range(self.metro.num_channels) if i not in occupied
        )

    def channels_in_cell(
        self, qx: int, qy: int, t_us: float = 0.0
    ) -> tuple[int, ...]:
        """The cell-granular response: channels free throughout a cell.

        This is the protocol primitive every query path rides.  The
        response is valid anywhere inside quantization cell (qx, qy)
        for the remainder of the TTL bucket containing *t_us*; it is
        cached under that (cell, bucket) key.
        """
        self.stats.queries += 1
        bucket = self._bucket_of(t_us)
        self._purge_expired(bucket)
        key = _CacheKey(qx=qx, qy=qy, bucket=bucket)
        cached = self._lookup(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self.last_outcomes = ((True, 0),)
            return cached
        self.stats.cache_misses += 1
        scanned_before = self.stats.candidates_scanned
        channels = self._compute_cell(qx, qy, t_us)
        self._store(key, channels)
        self.last_outcomes = (
            (False, self.stats.candidates_scanned - scanned_before),
        )
        return channels

    def channels_in_cells(
        self,
        cells: Sequence[tuple[int, int]],
        t_us: float = 0.0,
    ) -> list[tuple[int, ...]]:
        """Batch cell-granular responses: one per cell, in cell order.

        Semantically exactly a :meth:`channels_in_cell` loop — same
        answers, same cache mutations, same counter totals for the same
        cell sequence (duplicates included; each counts as one query) —
        but with the per-call overhead paid once: the TTL purge runs
        once (every cell in a batch shares *t_us*'s bucket), the stats
        counters are accumulated locally and flushed in one pass, and
        the attribute lookups are hoisted out of the loop.  This is the
        vectorized roaming engine's entry point: a tick's worth of
        re-checks arrives as one batch in client order, and N clients
        re-checking in one cell cost one :meth:`_compute_cell`.
        """
        self.stats.queries += len(cells)
        bucket = self._bucket_of(t_us)
        self._purge_expired(bucket)
        cache = self._cache
        hits = misses = 0
        responses: list[tuple[int, ...]] = []
        outcomes: list[tuple[bool, int]] = []
        for qx, qy in cells:
            key = _CacheKey(qx=qx, qy=qy, bucket=bucket)
            channels = cache.get(key)
            if channels is not None:
                cache.move_to_end(key)
                hits += 1
                outcomes.append((True, 0))
            else:
                misses += 1
                scanned_before = self.stats.candidates_scanned
                channels = self._compute_cell(qx, qy, t_us)
                self._store(key, channels)
                outcomes.append(
                    (False, self.stats.candidates_scanned - scanned_before)
                )
            responses.append(channels)
        self.stats.cache_hits += hits
        self.stats.cache_misses += misses
        self.last_outcomes = tuple(outcomes)
        return responses

    def channels_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> tuple[int, ...]:
        """Available (incumbent-free) UHF channels at (x, y) at *t_us*.

        Served from the cell-granular path: the answer is the response
        for the whole quantization square containing (x, y).
        """
        return self.channels_in_cell(*self.cell_of(x_m, y_m), t_us)

    def channels_at_many(
        self,
        points: Sequence[tuple[float, float]],
        t_us: float = 0.0,
    ) -> list[tuple[int, ...]]:
        """Batch availability: one response per point, in point order.

        Each point counts as one query; points sharing a quantization
        cell share its cached cell response.  Rides the
        :meth:`channels_in_cells` batch path (one stats pass).
        """
        cell_of = self.cell_of
        return self.channels_in_cells(
            [cell_of(x, y) for x, y in points], t_us
        )

    def spectrum_map_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> SpectrumMap:
        """The availability response as an occupancy bit-vector."""
        return SpectrumMap.from_free(
            self.channels_at(x_m, y_m, t_us), self.metro.num_channels
        )

    # -- updates -------------------------------------------------------------

    def _zone_touches_cell(
        self, registration: MicRegistration, qx: int, qy: int
    ) -> bool:
        """True when the protection zone intersects quantization cell (qx, qy).

        Uses the same geometry predicate as :meth:`_compute_cell` (via
        ``GridIndex.covering_rect``), so invalidation drops exactly the
        cells whose responses the new zone can change.
        """
        return circle_intersects_cell(
            registration.x_m,
            registration.y_m,
            registration.radius_m,
            qx,
            qy,
            self.cache_resolution_m,
        )

    def zone_affects(
        self, registration: MicRegistration, x_m: float, y_m: float
    ) -> bool:
        """True when *registration* can change the response served at (x, y).

        Cell-granular responses deny a channel anywhere in a cell the
        zone touches, so protocol-level coverage checks (is this AP's
        response invalidated by the new mic?) must use this, not point
        containment — a device just outside the zone whose cell touches
        it still receives the denying response.
        """
        qx, qy = self.cell_of(x_m, y_m)
        return self._zone_touches_cell(registration, qx, qy)

    def _zone_touches_key_cell(
        self, registration: MicRegistration, key: _CacheKey
    ) -> bool:
        """True when *registration* can change the response cached at *key*.

        Cell-exact in space and time-aware in the TTL dimension: a
        cached response is only ever served for query times inside its
        own bucket, so a bucket that does not overlap any of the mic's
        sessions — wholly before the session starts, or wholly after it
        ends — holds a response the registration cannot change, and
        invalidating it would only force a recompute to the same
        answer (and misreport ``stats.invalidations``).
        """
        bucket_start = key.bucket * self.ttl_us
        bucket_end = bucket_start + self.ttl_us
        # Both intervals are half-open ([start, end) sessions against
        # [bucket_start, bucket_end) buckets), so both edges test
        # strictly: a session ending exactly at the bucket boundary is
        # never active inside the bucket.
        if not any(
            session.start_us < bucket_end and session.end_us > bucket_start
            for session in registration.microphone.sessions
        ):
            return False
        return self._zone_touches_cell(registration, key.qx, key.qy)

    def register_mic(self, registration: MicRegistration) -> int:
        """Accept a mic registration; invalidate the affected responses.

        Every cached response whose quantization square intersects the
        new protection zone — in a TTL bucket overlapping one of the
        mic's sessions — is dropped (any query in such a cell and
        bucket may now get a different answer).  Returns the number of
        invalidated responses.
        """
        self.metro.add_registration(registration)
        self.index.insert(registration)
        self.stats.mic_registrations += 1
        # Queries purge buckets behind the observed clock as they
        # advance it, so the scan below visits at most the entries at
        # or after the last observed bucket (out-of-order query times
        # can park older entries here, but the time-aware check still
        # judges them correctly).
        stale = [
            key
            for key in self._cache
            if self._zone_touches_key_cell(registration, key)
        ]
        for key in stale:
            del self._cache[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def publish_metrics(self, telemetry) -> None:
        """Publish the service counters into a sim-clock registry.

        Integer counters land as ``wsdb_*`` counters, ratio properties
        as gauges (see ``MetricsRegistry.record_stats``).  Cache
        occupancy rides along as an instantaneous gauge.
        """
        if not telemetry.enabled:
            return
        telemetry.record_stats("wsdb", self.stats.as_dict())
        telemetry.gauge("wsdb_cached_responses").set(float(len(self._cache)))
