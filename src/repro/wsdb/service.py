"""The geolocation database service façade: cached availability queries.

:class:`WhiteSpaceDatabase` is what a city of APs talks to.  It answers
point and batch availability queries off the :class:`GridIndex` (never a
full incumbent scan), memoizes responses in a TTL + LRU cache, accepts
live microphone registrations that surgically invalidate the cached
responses inside the new protection zone, and counts
queries/hits/misses/invalidations so benchmarks can report cache
behavior alongside throughput.

Caching semantics mirror the real FCC regime, transplanted to simulation
time: a response is keyed by the query coordinate (quantized to
``cache_resolution_m`` — devices must re-query after moving, so nearby
points sharing a key is the modeled behavior, not an accident) plus a
TTL bucket of simulation time (devices must re-query periodically).
Within one bucket a cached response may lag a mic *session* edge by up
to the TTL — the staleness bound the TTL contract allows — but an
explicit :meth:`register_mic` invalidates the affected area immediately,
so newly registered incumbents are never served stale.

Determinism: for a fixed query sequence the service is a pure function
of (metro state, sequence) — the property the citywide run kind's
byte-identical parallel/sequential contract leans on.  Note the cache
*does* shape individual answers: a cached response is shared across its
whole quantization square and TTL bucket, so a query near a contour
edge may receive the square's memoized answer where an uncached service
(``cache_capacity=0``) would recompute exactly.  That coordinate
sharing is the modeled FCC behavior (devices re-query per ~100 m
square), not an implementation accident — but it means cached and
cache-disabled runs are *not* interchangeable.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap
from repro.wsdb.index import GridIndex
from repro.wsdb.model import Metro, MicRegistration

__all__ = ["WhiteSpaceDatabase", "WsdbStats"]

#: Default cache TTL (simulation microseconds): 60 s of validity before a
#: device must re-query, a compressed stand-in for the FCC's daily
#: re-check requirement.
DEFAULT_TTL_US = 60_000_000.0

#: Default coordinate quantization for cache keys (meters).  The FCC
#: requires devices to re-query after moving 100 m; responses within one
#: 100 m square are shared.
DEFAULT_CACHE_RESOLUTION_M = 100.0

#: Default LRU capacity (responses).
DEFAULT_CACHE_CAPACITY = 8_192


@dataclass
class WsdbStats:
    """Service counters for benchmarking the query path.

    Attributes:
        queries: availability queries answered (point or batch cell).
        cache_hits / cache_misses: response-cache outcomes.
        evictions: LRU evictions.
        invalidations: cached responses dropped by mic registrations.
        mic_registrations: registrations accepted.
        candidates_scanned: incumbents inspected by the spatial index
            on the service's own query path (the full-scan equivalent
            is ``queries * incumbents``); direct ``db.index`` use is
            not counted here.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    mic_registrations: int = 0
    candidates_scanned: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits over all queries (0 when nothing was asked)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Plain-data snapshot (for probes and benchmark JSON)."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "mic_registrations": self.mic_registrations,
            "candidates_scanned": self.candidates_scanned,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class _CacheKey:
    """One response-cache slot: a quantized coordinate + TTL bucket."""

    qx: int
    qy: int
    bucket: int


class WhiteSpaceDatabase:
    """A queryable, cacheable geolocation white-space database.

    Args:
        metro: the incumbent ground truth (sites + registrations).
        cell_m: spatial-index cell edge (None: ~the mean TV contour
            radius, a reasonable pruning granularity).
        ttl_us: response validity window in simulation time.
        cache_resolution_m: coordinate quantization of cache keys.
        cache_capacity: LRU capacity; 0 disables response caching
            (the spatial index still serves every query).
    """

    def __init__(
        self,
        metro: Metro,
        cell_m: float | None = None,
        ttl_us: float = DEFAULT_TTL_US,
        cache_resolution_m: float = DEFAULT_CACHE_RESOLUTION_M,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ):
        if ttl_us <= 0:
            raise SpectrumMapError(f"ttl_us must be > 0, got {ttl_us!r}")
        if cache_resolution_m <= 0:
            raise SpectrumMapError(
                f"cache_resolution_m must be > 0, got {cache_resolution_m!r}"
            )
        if cache_capacity < 0:
            raise SpectrumMapError(
                f"cache_capacity must be >= 0, got {cache_capacity!r}"
            )
        self.metro = metro
        if cell_m is None:
            radii = [site.radius_m for site in metro.sites]
            cell_m = (sum(radii) / len(radii)) if radii else metro.extent_m / 16
        self.index = GridIndex(metro.extent_m, cell_m)
        self.index.extend(metro.sites)
        self.index.extend(metro.registrations)
        self.ttl_us = ttl_us
        self.cache_resolution_m = cache_resolution_m
        self.cache_capacity = cache_capacity
        self._cache: OrderedDict[_CacheKey, tuple[int, ...]] = OrderedDict()
        self.stats = WsdbStats()

    # -- cache plumbing ------------------------------------------------------

    def _key(self, x_m: float, y_m: float, t_us: float) -> _CacheKey:
        return _CacheKey(
            qx=int(x_m // self.cache_resolution_m),
            qy=int(y_m // self.cache_resolution_m),
            bucket=int(t_us // self.ttl_us),
        )

    def _lookup(self, key: _CacheKey) -> tuple[int, ...] | None:
        channels = self._cache.get(key)
        if channels is not None:
            self._cache.move_to_end(key)
        return channels

    def _store(self, key: _CacheKey, channels: tuple[int, ...]) -> None:
        if self.cache_capacity == 0:
            return
        self._cache[key] = channels
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    # -- queries -------------------------------------------------------------

    def _compute(self, x_m: float, y_m: float, t_us: float) -> tuple[int, ...]:
        scanned_before = self.index.candidates_scanned
        occupied = set()
        for entry in self.index.covering(x_m, y_m):
            if entry.active_at(t_us):
                occupied.add(entry.uhf_index)
        # Accumulate the delta (not the index's running total): the
        # index is a public attribute, and direct use of it must not
        # leak into the service's own counters.
        self.stats.candidates_scanned += (
            self.index.candidates_scanned - scanned_before
        )
        return tuple(
            i for i in range(self.metro.num_channels) if i not in occupied
        )

    def channels_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> tuple[int, ...]:
        """Available (incumbent-free) UHF channels at (x, y) at *t_us*."""
        self.stats.queries += 1
        key = self._key(x_m, y_m, t_us)
        cached = self._lookup(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        channels = self._compute(x_m, y_m, t_us)
        self._store(key, channels)
        return channels

    def channels_at_many(
        self,
        points: Sequence[tuple[float, float]],
        t_us: float = 0.0,
    ) -> list[tuple[int, ...]]:
        """Batch availability: one response per point, in point order."""
        return [self.channels_at(x, y, t_us) for x, y in points]

    def spectrum_map_at(
        self, x_m: float, y_m: float, t_us: float = 0.0
    ) -> SpectrumMap:
        """The availability response as an occupancy bit-vector."""
        return SpectrumMap.from_free(
            self.channels_at(x_m, y_m, t_us), self.metro.num_channels
        )

    # -- updates -------------------------------------------------------------

    def _zone_touches_key_cell(
        self, registration: MicRegistration, key: _CacheKey
    ) -> bool:
        """True when the protection zone intersects a cache key's square.

        Cached responses are shared across a whole quantization square,
        so invalidation must be cell-granular too: an entry produced
        *outside* the zone can still be served to a query point
        *inside* it if their coordinates share a square.  Standard
        circle/axis-aligned-rectangle intersection via the clamped
        nearest point.
        """
        res = self.cache_resolution_m
        nearest_x = min(max(registration.x_m, key.qx * res), (key.qx + 1) * res)
        nearest_y = min(max(registration.y_m, key.qy * res), (key.qy + 1) * res)
        return (
            math.hypot(registration.x_m - nearest_x, registration.y_m - nearest_y)
            <= registration.radius_m
        )

    def register_mic(self, registration: MicRegistration) -> int:
        """Accept a mic registration; invalidate the affected responses.

        Every cached response whose quantization square intersects the
        new protection zone is dropped (any query point in such a
        square may now get a different answer).  Returns the number of
        invalidated responses.
        """
        self.metro.add_registration(registration)
        self.index.insert(registration)
        self.stats.mic_registrations += 1
        stale = [
            key
            for key in self._cache
            if self._zone_touches_key_cell(registration, key)
        ]
        for key in stale:
            del self._cache[key]
        self.stats.invalidations += len(stale)
        return len(stale)
